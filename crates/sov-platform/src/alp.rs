//! Accelerator-level parallelism (ALP) exploration (Sec. VII).
//!
//! "Meaningful gains at the system level are possible only if we expand
//! beyond optimizing individual accelerators to exploiting the interactions
//! across accelerators, a.k.a. accelerator-level parallelism. ... ALP in
//! autonomous vehicles usually exists across multiple chips. ... Soon
//! on-vehicle processing tasks might be offloaded to edge servers or even
//! the cloud."
//!
//! This module models the Fig. 5 task graph as a DAG, schedules it onto an
//! arbitrary assignment of tasks → execution sites (the four on-vehicle
//! platforms plus an **edge server** reachable over a network hop), and
//! computes the resulting end-to-end latency and energy. A brute-force
//! sweep over assignments yields the Pareto frontier the paper's "holistic
//! SoV optimization" argument is about.

use crate::processor::{Platform, Task};
use std::collections::BTreeMap;

/// An execution site: an on-vehicle platform or the edge server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Site {
    /// One of the on-vehicle platforms.
    OnVehicle(Platform),
    /// An edge server across a network hop: faster than the on-vehicle GPU
    /// but every input/output crossing the vehicle boundary pays `rtt_ms`.
    Edge,
}

impl Site {
    /// Candidate sites for the DSE sweep.
    #[must_use]
    pub fn candidates() -> Vec<Site> {
        let mut v: Vec<Site> = Platform::ALL.iter().map(|&p| Site::OnVehicle(p)).collect();
        v.push(Site::Edge);
        v
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Site::OnVehicle(p) => p.name(),
            Site::Edge => "EDGE",
        }
    }
}

/// Edge-server characteristics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeConfig {
    /// One-way network latency per boundary crossing (ms).
    pub rtt_ms: f64,
    /// Speedup of the edge server relative to the on-vehicle GPU.
    pub speedup_vs_gpu: f64,
    /// Power attributed to the vehicle for using the edge (radio), W.
    pub radio_power_w: f64,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        Self {
            rtt_ms: 15.0,
            speedup_vs_gpu: 2.0,
            radio_power_w: 4.0,
        }
    }
}

/// A node of the Fig. 5 perception/planning DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DagNode {
    /// Sensor capture + transfer (fixed on the FPGA sensor hub).
    Sensing,
    /// Stereo depth estimation.
    Depth,
    /// DNN object detection.
    Detection,
    /// Object tracking (after detection).
    Tracking,
    /// VIO localization.
    Localization,
    /// MPC planning (after everything).
    Planning,
}

impl DagNode {
    /// All nodes in topological order.
    pub const TOPO: [DagNode; 6] = [
        DagNode::Sensing,
        DagNode::Depth,
        DagNode::Detection,
        DagNode::Tracking,
        DagNode::Localization,
        DagNode::Planning,
    ];

    /// The movable compute nodes (sensing stays on the sensor hub).
    pub const MOVABLE: [DagNode; 5] = [
        DagNode::Depth,
        DagNode::Detection,
        DagNode::Tracking,
        DagNode::Localization,
        DagNode::Planning,
    ];

    /// Immediate predecessors (Fig. 5 dataflow).
    #[must_use]
    pub fn predecessors(&self) -> &'static [DagNode] {
        match self {
            DagNode::Sensing => &[],
            DagNode::Depth | DagNode::Detection | DagNode::Localization => &[DagNode::Sensing],
            DagNode::Tracking => &[DagNode::Detection],
            DagNode::Planning => &[DagNode::Depth, DagNode::Tracking, DagNode::Localization],
        }
    }

    fn task(&self) -> Option<Task> {
        match self {
            DagNode::Sensing => None,
            DagNode::Depth => Some(Task::DepthEstimation),
            DagNode::Detection => Some(Task::ObjectDetection),
            DagNode::Tracking => Some(Task::SpatialSync),
            DagNode::Localization => Some(Task::LocalizationKeyframe),
            DagNode::Planning => Some(Task::MpcPlanning),
        }
    }
}

/// A complete assignment of movable nodes to sites.
pub type Assignment = BTreeMap<DagNode, Site>;

/// Result of scheduling one assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// The assignment evaluated.
    pub assignment: Assignment,
    /// Completion time of each node (ms from frame start).
    pub finish_ms: BTreeMap<DagNode, f64>,
    /// End-to-end latency (ms): planning's completion.
    pub latency_ms: f64,
    /// Energy per frame (J), including radio energy for edge crossings.
    pub energy_j: f64,
}

/// Mean sensing latency charged before the compute DAG (ms).
pub const SENSING_MS: f64 = 83.0;

/// Mean execution time of `node` at `site` (ms).
fn exec_ms(node: DagNode, site: Site, edge: &EdgeConfig) -> f64 {
    let Some(task) = node.task() else {
        return 0.0;
    };
    match site {
        Site::OnVehicle(p) => task.profile(p).mean_latency_ms(),
        Site::Edge => task.profile(Platform::Gtx1060Gpu).mean_latency_ms() / edge.speedup_vs_gpu,
    }
}

/// Energy of `node` at `site` (J), charged to the vehicle.
fn exec_energy_j(node: DagNode, site: Site, edge: &EdgeConfig, runtime_ms: f64) -> f64 {
    match site {
        Site::OnVehicle(p) => {
            let _ = node;
            p.active_power_w() * runtime_ms / 1000.0
        }
        // The vehicle pays only the radio, not the edge server's compute.
        Site::Edge => edge.radio_power_w * runtime_ms / 1000.0,
    }
}

/// Schedules the DAG under an assignment: list scheduling in topological
/// order, serializing nodes that share a site, and charging `rtt_ms` for
/// every edge whose endpoints sit on different machines (vehicle ↔ edge).
#[must_use]
pub fn schedule(assignment: &Assignment, edge: &EdgeConfig) -> Schedule {
    let mut finish: BTreeMap<DagNode, f64> = BTreeMap::new();
    let mut site_free: BTreeMap<Site, f64> = BTreeMap::new();
    let mut energy = 0.0;
    for node in DagNode::TOPO {
        let site = if node == DagNode::Sensing {
            Site::OnVehicle(Platform::ZynqFpga)
        } else {
            *assignment
                .get(&node)
                .expect("assignment covers all movable nodes")
        };
        // Ready when all predecessors have finished (+ network hop if the
        // data crosses the vehicle/edge boundary).
        let mut ready = 0.0f64;
        for &pred in node.predecessors() {
            let pred_site = if pred == DagNode::Sensing {
                Site::OnVehicle(Platform::ZynqFpga)
            } else {
                assignment[&pred]
            };
            let crossing = matches!(pred_site, Site::Edge) != matches!(site, Site::Edge);
            let hop = if crossing { edge.rtt_ms } else { 0.0 };
            ready = ready.max(finish[&pred] + hop);
        }
        let free = site_free.get(&site).copied().unwrap_or(0.0);
        let start = ready.max(free);
        let runtime = if node == DagNode::Sensing {
            SENSING_MS
        } else {
            exec_ms(node, site, edge)
        };
        let end = start + runtime;
        energy += exec_energy_j(node, site, edge, runtime);
        site_free.insert(site, end);
        finish.insert(node, end);
    }
    let latency_ms = finish[&DagNode::Planning];
    Schedule {
        assignment: assignment.clone(),
        finish_ms: finish,
        latency_ms,
        energy_j: energy,
    }
}

/// The paper's deployed assignment: scene understanding on the GPU,
/// localization on the FPGA, planning on the CPU.
#[must_use]
pub fn deployed_assignment() -> Assignment {
    BTreeMap::from([
        (DagNode::Depth, Site::OnVehicle(Platform::Gtx1060Gpu)),
        (DagNode::Detection, Site::OnVehicle(Platform::Gtx1060Gpu)),
        (DagNode::Tracking, Site::OnVehicle(Platform::CoffeeLakeCpu)),
        (DagNode::Localization, Site::OnVehicle(Platform::ZynqFpga)),
        (DagNode::Planning, Site::OnVehicle(Platform::CoffeeLakeCpu)),
    ])
}

/// Exhaustively sweeps all assignments (5 sites ^ 5 nodes = 3125) and
/// returns the latency/energy Pareto frontier, sorted by latency.
#[must_use]
pub fn pareto_frontier(edge: &EdgeConfig) -> Vec<Schedule> {
    let sites = Site::candidates();
    let mut all = Vec::with_capacity(sites.len().pow(5));
    let n = sites.len();
    for code in 0..n.pow(5) {
        let mut c = code;
        let mut assignment = Assignment::new();
        for &node in &DagNode::MOVABLE {
            assignment.insert(node, sites[c % n]);
            c /= n;
        }
        all.push(schedule(&assignment, edge));
    }
    // Pareto filter: keep schedules not dominated in (latency, energy).
    let mut frontier: Vec<Schedule> = Vec::new();
    all.sort_by(|a, b| {
        a.latency_ms
            .partial_cmp(&b.latency_ms)
            .expect("finite")
            .then(a.energy_j.partial_cmp(&b.energy_j).expect("finite"))
    });
    let mut best_energy = f64::INFINITY;
    for s in all {
        if s.energy_j < best_energy - 1e-12 {
            best_energy = s.energy_j;
            frontier.push(s);
        }
    }
    frontier
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployed_assignment_matches_characterization() {
        let s = schedule(&deployed_assignment(), &EdgeConfig::default());
        // Sensing 83 + SU (26+48) + tracking + planning ≈ 164 ms.
        assert!(
            (150.0..180.0).contains(&s.latency_ms),
            "latency {}",
            s.latency_ms
        );
        // Localization on the FPGA overlaps scene understanding entirely.
        assert!(s.finish_ms[&DagNode::Localization] < s.finish_ms[&DagNode::Tracking]);
    }

    #[test]
    fn shared_site_serializes() {
        let mut all_gpu = deployed_assignment();
        for node in DagNode::MOVABLE {
            all_gpu.insert(node, Site::OnVehicle(Platform::Gtx1060Gpu));
        }
        let serial = schedule(&all_gpu, &EdgeConfig::default());
        let parallel = schedule(&deployed_assignment(), &EdgeConfig::default());
        assert!(
            serial.latency_ms > parallel.latency_ms,
            "sharing one engine must cost latency"
        );
    }

    #[test]
    fn edge_offload_pays_network_hops() {
        let mut offload = deployed_assignment();
        offload.insert(DagNode::Detection, Site::Edge);
        let cfg = EdgeConfig {
            rtt_ms: 15.0,
            speedup_vs_gpu: 2.0,
            radio_power_w: 4.0,
        };
        let s = schedule(&offload, &cfg);
        // Detection: 15 ms up + 24 ms compute, then 15 ms back to tracking.
        let detection_finish = s.finish_ms[&DagNode::Detection] - SENSING_MS;
        assert!(
            (detection_finish - 39.0).abs() < 1.0,
            "detection at {detection_finish}"
        );
        let tracking_start_gap = s.finish_ms[&DagNode::Tracking] - s.finish_ms[&DagNode::Detection];
        assert!(tracking_start_gap >= 15.0, "return hop must be paid");
    }

    #[test]
    fn fast_network_makes_edge_attractive_slow_network_does_not() {
        let mut offload = deployed_assignment();
        offload.insert(DagNode::Detection, Site::Edge);
        offload.insert(DagNode::Depth, Site::Edge);
        let fast = schedule(
            &offload,
            &EdgeConfig {
                rtt_ms: 2.0,
                ..EdgeConfig::default()
            },
        );
        let slow = schedule(
            &offload,
            &EdgeConfig {
                rtt_ms: 60.0,
                ..EdgeConfig::default()
            },
        );
        let local = schedule(&deployed_assignment(), &EdgeConfig::default());
        assert!(
            fast.latency_ms < local.latency_ms,
            "fast edge should win: {} vs {}",
            fast.latency_ms,
            local.latency_ms
        );
        assert!(slow.latency_ms > local.latency_ms, "slow edge should lose");
    }

    #[test]
    fn pareto_frontier_is_sorted_and_nondominated() {
        let frontier = pareto_frontier(&EdgeConfig::default());
        assert!(
            frontier.len() >= 3,
            "expect a real frontier, got {}",
            frontier.len()
        );
        for w in frontier.windows(2) {
            assert!(w[0].latency_ms <= w[1].latency_ms);
            assert!(
                w[0].energy_j > w[1].energy_j,
                "energy must strictly improve along the frontier"
            );
        }
    }

    #[test]
    fn deployed_design_is_near_the_frontier() {
        let frontier = pareto_frontier(&EdgeConfig::default());
        let deployed = schedule(&deployed_assignment(), &EdgeConfig::default());
        // The paper's design should be within 15% latency of the best
        // equal-or-cheaper frontier point.
        let best_latency = frontier
            .iter()
            .map(|s| s.latency_ms)
            .fold(f64::INFINITY, f64::min);
        assert!(
            deployed.latency_ms < best_latency * 1.5,
            "deployed {} vs frontier best {}",
            deployed.latency_ms,
            best_latency
        );
    }
}
