//! Property-based tests for fault-window overlap determinism.
//!
//! `FaultPlan::with_intensity` merges overlapping same-kind windows into
//! disjoint spans with pointwise-max intensity. These properties pin the
//! two guarantees the merge must preserve: (1) the *effective* fault
//! schedule — active intensity, strikes, magnitudes — is exactly what the
//! overlapping windows described, and (2) the stored plan is canonical,
//! so insertion order can never change a generated plan's behavior or
//! identity.

use sov_fault::{FaultKind, FaultPlan};
use sov_sim::time::{SimDuration, SimTime};
use sov_testkit::prelude::*;

fn at(ds: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ds * 100)
}

/// Builds a plan from raw `(start_ds, len_ds, intensity)` triples
/// (deciseconds, so overlaps are frequent).
fn plan_from(seed: u64, kind: FaultKind, raw: &[(u64, u64, f64)]) -> FaultPlan {
    raw.iter().fold(FaultPlan::new(seed), |p, &(s, l, i)| {
        p.with_intensity(kind, at(s), at(s + l.max(1)), i)
    })
}

/// The intensity the raw overlapping windows describe at `t`: the max
/// over all windows covering it (the pre-merge `active()` contract).
fn naive_intensity(raw: &[(u64, u64, f64)], t: SimTime) -> Option<f64> {
    raw.iter()
        .filter(|&&(s, l, _)| t >= at(s) && t < at(s + l.max(1)))
        .map(|&(_, _, i)| i)
        .max_by(f64::total_cmp)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merged_windows_preserve_the_effective_schedule(
        seed in 0u64..10_000,
        raw in prop::collection::vec((0u64..40, 1u64..25, 0.05f64..1.0), 1..8),
    ) {
        let kind = FaultKind::CameraDrop;
        let plan = plan_from(seed, kind, &raw);
        // Sample a dense time grid spanning every window.
        for ds in 0..70u64 {
            let t = at(ds);
            let merged = plan.active(kind, t).map(|w| w.intensity);
            prop_assert_eq!(
                merged, naive_intensity(&raw, t),
                "intensity diverged at t={}", ds
            );
            // Strikes/magnitudes flow from the same intensity + the
            // counter hash, so they must match a single-window plan of
            // that intensity.
            if let Some(i) = naive_intensity(&raw, t) {
                let single = FaultPlan::new(seed).with_intensity(kind, t, at(ds + 1), i);
                for k in 0..20u64 {
                    prop_assert_eq!(plan.strikes(kind, t, k), single.strikes(kind, t, k));
                    prop_assert_eq!(plan.magnitude(kind, t, k), single.magnitude(kind, t, k));
                }
            }
        }
    }

    #[test]
    fn windows_are_disjoint_and_canonical(
        seed in 0u64..10_000,
        raw in prop::collection::vec((0u64..40, 1u64..25, 0.05f64..1.0), 2..8),
    ) {
        let kind = FaultKind::GpsOutage;
        let plan = plan_from(seed, kind, &raw);
        // Disjoint, ordered, non-empty spans per kind.
        let ws = plan.windows();
        for pair in ws.windows(2) {
            prop_assert!(pair[0].start < pair[0].end);
            if pair[0].kind == pair[1].kind {
                prop_assert!(pair[0].end <= pair[1].start, "overlap survived the merge");
            }
        }
        // Insertion order never matters: reversed insertion is `==`.
        let mut rev = raw.clone();
        rev.reverse();
        prop_assert_eq!(plan, plan_from(seed, kind, &rev));
    }

    #[test]
    fn merge_is_invisible_across_kinds(
        seed in 0u64..10_000,
        s1 in 0u64..30, l1 in 1u64..20,
        s2 in 0u64..30, l2 in 1u64..20,
    ) {
        // Two different kinds never merge with each other.
        let plan = FaultPlan::new(seed)
            .with_intensity(FaultKind::CameraDrop, at(s1), at(s1 + l1), 0.4)
            .with_intensity(FaultKind::RadarGhost, at(s2), at(s2 + l2), 0.2);
        prop_assert_eq!(plan.windows().len(), 2);
        prop_assert_eq!(
            plan.active(FaultKind::CameraDrop, at(s1)).map(|w| w.intensity),
            Some(0.4)
        );
        prop_assert_eq!(
            plan.active(FaultKind::RadarGhost, at(s2)).map(|w| w.intensity),
            Some(0.2)
        );
    }
}
