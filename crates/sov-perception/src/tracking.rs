//! Object tracking: KCF and radar-based tracking with spatial
//! synchronization (Table III, Sec. VI-B).
//!
//! The paper's baseline visual tracker is the **Kernelized Correlation
//! Filter** (Henriques et al.), used "when Radar signals are unstable". The
//! production path instead offloads tracking to radar, which directly
//! measures radial velocity; the remaining work is **spatial
//! synchronization** — projecting radar returns into the camera frame and
//! matching them with detections — which runs in ~1 ms on a CPU, about 100×
//! cheaper than KCF (Sec. VI-B).
//!
//! [`KcfTracker`] is a from-scratch KCF: Gaussian-kernel ridge regression
//! trained and evaluated in the Fourier domain via [`crate::signal`].
//! [`RadarTracker`] maintains radar tracks; [`spatial_synchronize`] performs
//! the radar→camera association.

use crate::detection::Detection;
use crate::image::GrayImage;
use crate::signal::{Complex, Spectrum2d};
use sov_sensors::camera::Intrinsics;
use sov_sensors::radar::RadarScan;
use sov_sim::time::SimTime;
use sov_world::landmark::LandmarkId;
use sov_world::obstacle::ObstacleClass;

/// KCF configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KcfConfig {
    /// Square patch size (must be a power of two).
    pub patch_size: usize,
    /// Gaussian kernel bandwidth.
    pub kernel_sigma: f64,
    /// Ridge regularization.
    pub lambda: f64,
    /// Width of the Gaussian regression target relative to patch size.
    pub output_sigma_factor: f64,
    /// Model interpolation (learning) rate per frame.
    pub interp_factor: f64,
}

impl Default for KcfConfig {
    fn default() -> Self {
        Self {
            patch_size: 32,
            kernel_sigma: 0.6,
            lambda: 1e-4,
            output_sigma_factor: 0.1,
            interp_factor: 0.075,
        }
    }
}

/// A Kernelized Correlation Filter tracker for one target.
#[derive(Debug, Clone)]
pub struct KcfTracker {
    config: KcfConfig,
    /// Current target center in image coordinates.
    position: (f64, f64),
    /// Fourier transform of the learned template patch.
    template_f: Spectrum2d,
    /// Fourier-domain dual coefficients.
    alpha_f: Spectrum2d,
    /// Fourier transform of the regression target.
    label_f: Spectrum2d,
}

impl KcfTracker {
    /// Initializes a tracker on the patch centered at `(cx, cy)`.
    ///
    /// # Panics
    ///
    /// Panics if `config.patch_size` is not a power of two.
    #[must_use]
    pub fn init(image: &GrayImage, cx: f64, cy: f64, config: KcfConfig) -> Self {
        assert!(
            config.patch_size.is_power_of_two(),
            "KCF patch size must be a power of two"
        );
        let n = config.patch_size;
        // Gaussian regression target centered at (0,0) with wrap-around.
        let sigma = config.output_sigma_factor * n as f64;
        let mut label = Spectrum2d::new(n, n);
        for y in 0..n {
            for x in 0..n {
                let dx = shift_dist(x, n);
                let dy = shift_dist(y, n);
                let v = (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
                *label.get_mut(x, y) = Complex::new(v, 0.0);
            }
        }
        label.fft2();
        let mut tracker = Self {
            config,
            position: (cx, cy),
            template_f: Spectrum2d::new(n, n),
            alpha_f: Spectrum2d::new(n, n),
            label_f: label,
        };
        let patch = extract_patch(image, cx, cy, n);
        let (tf, af) = tracker.train(&patch);
        tracker.template_f = tf;
        tracker.alpha_f = af;
        tracker
    }

    /// Current estimated target center.
    #[must_use]
    pub fn position(&self) -> (f64, f64) {
        self.position
    }

    /// Processes a new frame: localizes the target near the previous
    /// position and updates the model. Returns the new center estimate.
    pub fn update(&mut self, image: &GrayImage) -> (f64, f64) {
        let n = self.config.patch_size;
        let patch = extract_patch(image, self.position.0, self.position.1, n);
        // Detection: response = ifft( k^xz_f ⊙ alpha_f ).
        let z_f = patch.clone();
        let k_f = self.gaussian_correlation(&z_f, &self.template_f.clone());
        let mut response = k_f.hadamard(&self.alpha_f);
        response.ifft2();
        let (px, py) = response.argmax_re();
        // Convert wrap-around peak index to a signed shift.
        let dx = shift_dist(px, n);
        let dy = shift_dist(py, n);
        self.position.0 += dx;
        self.position.1 += dy;
        // Model update at the new position.
        let new_patch = extract_patch(image, self.position.0, self.position.1, n);
        let (tf, af) = self.train(&new_patch);
        let rate = self.config.interp_factor;
        blend(&mut self.template_f, &tf, rate);
        blend(&mut self.alpha_f, &af, rate);
        self.position
    }

    /// Trains template and alpha spectra on a patch.
    fn train(&self, patch_f: &Spectrum2d) -> (Spectrum2d, Spectrum2d) {
        let k_f = self.gaussian_correlation(patch_f, patch_f);
        let n = self.config.patch_size;
        let mut alpha = Spectrum2d::new(n, n);
        for y in 0..n {
            for x in 0..n {
                let denom = k_f.get(x, y) + Complex::new(self.config.lambda, 0.0);
                *alpha.get_mut(x, y) = self.label_f.get(x, y).div(denom);
            }
        }
        (patch_f.clone(), alpha)
    }

    /// Fourier transform of the Gaussian kernel correlation of two patches
    /// already given in the Fourier domain.
    fn gaussian_correlation(&self, a_f: &Spectrum2d, b_f: &Spectrum2d) -> Spectrum2d {
        let n = self.config.patch_size;
        let count = (n * n) as f64;
        // ||a||^2 and ||b||^2 via Parseval.
        let norm_a: f64 = spectrum_energy(a_f) / count;
        let norm_b: f64 = spectrum_energy(b_f) / count;
        // Cross-correlation a ⋆ b via F⁻¹(A ⊙ B*).
        let mut cross = a_f.hadamard_conj(b_f);
        cross.ifft2();
        let sigma_sq = self.config.kernel_sigma * self.config.kernel_sigma;
        let mut k = Spectrum2d::new(n, n);
        for y in 0..n {
            for x in 0..n {
                let c = cross.get(x, y).re;
                let d = ((norm_a + norm_b - 2.0 * c) / count).max(0.0);
                *k.get_mut(x, y) = Complex::new((-d / sigma_sq).exp(), 0.0);
            }
        }
        k.fft2();
        k
    }
}

fn spectrum_energy(s: &Spectrum2d) -> f64 {
    let mut e = 0.0;
    for y in 0..s.height() {
        for x in 0..s.width() {
            e += s.get(x, y).norm_sq();
        }
    }
    e
}

fn blend(dst: &mut Spectrum2d, src: &Spectrum2d, rate: f64) {
    for y in 0..dst.height() {
        for x in 0..dst.width() {
            let d = dst.get(x, y);
            let s = src.get(x, y);
            *dst.get_mut(x, y) = d * (1.0 - rate) + s * rate;
        }
    }
}

/// Signed wrap-around distance for an FFT index.
fn shift_dist(idx: usize, n: usize) -> f64 {
    if idx > n / 2 {
        idx as f64 - n as f64
    } else {
        idx as f64
    }
}

/// Extracts a mean-subtracted, Hann-windowed patch in the Fourier domain.
fn extract_patch(image: &GrayImage, cx: f64, cy: f64, n: usize) -> Spectrum2d {
    let patch = image.patch(cx.round() as isize, cy.round() as isize, n);
    let mean = patch.mean();
    let mut spec = Spectrum2d::new(n, n);
    for y in 0..n {
        for x in 0..n {
            let hann_x = 0.5 - 0.5 * (std::f64::consts::TAU * x as f64 / n as f64).cos();
            let hann_y = 0.5 - 0.5 * (std::f64::consts::TAU * y as f64 / n as f64).cos();
            let v = f64::from(patch.get(x as isize, y as isize) - mean) * hann_x * hann_y;
            *spec.get_mut(x, y) = Complex::new(v, 0.0);
        }
    }
    spec.fft2();
    spec
}

/// Identifier of a radar track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub u32);

/// One maintained radar track.
///
/// Range and radial velocity are the outputs of a per-track
/// constant-velocity Kalman filter over `[range, range-rate]` — "combining
/// consecutive observations of the same target into a trajectory"
/// (Sec. VI-B) — so they are smoother than any single radar return.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadarTrack {
    /// Track identifier.
    pub id: TrackId,
    /// Filtered range (m).
    pub range_m: f64,
    /// Smoothed azimuth (rad).
    pub azimuth_rad: f64,
    /// Filtered radial velocity (m/s).
    pub radial_velocity_mps: f64,
    /// Class from the last associated camera detection, if any.
    pub class: Option<ObstacleClass>,
    /// Last update time.
    pub last_update: SimTime,
    /// Consecutive updates received (track confidence).
    pub hits: u32,
    /// Kalman covariance over `[range, range-rate]`.
    kf_cov: sov_math::matrix::Matrix<2, 2>,
}

/// Radar-based multi-target tracker (Sec. VI-B): combines consecutive radar
/// observations of the same target into a trajectory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RadarTracker {
    tracks: Vec<RadarTrack>,
    next_id: u32,
    /// Association gate: max range difference (m).
    gate_range_m: f64,
    /// Association gate: max azimuth difference (rad).
    gate_azimuth_rad: f64,
    /// Drop tracks not updated for this long (s).
    timeout_s: f64,
    /// Assumed radar range noise sigma (m) for the per-track filter.
    range_sigma_m: f64,
    /// Assumed radial-velocity noise sigma (m/s) for the per-track filter.
    velocity_sigma_mps: f64,
}

impl RadarTracker {
    /// Creates a tracker with default gates (1.5 m, 0.1 rad, 0.5 s).
    #[must_use]
    pub fn new() -> Self {
        Self {
            tracks: Vec::new(),
            next_id: 0,
            gate_range_m: 1.5,
            gate_azimuth_rad: 0.1,
            timeout_s: 0.5,
            range_sigma_m: 0.15,
            velocity_sigma_mps: 0.1,
        }
    }

    /// Current tracks.
    #[must_use]
    pub fn tracks(&self) -> &[RadarTrack] {
        &self.tracks
    }

    /// Ingests one radar scan. Unstable scans are ignored (the pipeline
    /// falls back to KCF for those frames, Table III).
    pub fn update(&mut self, scan: &RadarScan) {
        use sov_math::matrix::{Matrix, Vector};
        if !scan.stable {
            self.prune(scan.timestamp);
            return;
        }
        let mut claimed = vec![false; self.tracks.len()];
        for target in &scan.targets {
            // Nearest unclaimed track within the gate (against the track's
            // constant-velocity prediction).
            let mut best: Option<(usize, f64)> = None;
            for (i, track) in self.tracks.iter().enumerate() {
                if claimed[i] {
                    continue;
                }
                let dt = scan.timestamp.since(track.last_update).as_secs_f64();
                let predicted_range = track.range_m + track.radial_velocity_mps * dt;
                let dr = (target.range_m - predicted_range).abs();
                let da = (target.azimuth_rad - track.azimuth_rad).abs();
                if dr <= self.gate_range_m && da <= self.gate_azimuth_rad {
                    let cost = dr + 10.0 * da;
                    if best.is_none_or(|(_, c)| cost < c) {
                        best = Some((i, cost));
                    }
                }
            }
            match best {
                Some((i, _)) => {
                    claimed[i] = true;
                    let track = &mut self.tracks[i];
                    let dt = scan.timestamp.since(track.last_update).as_secs_f64();
                    // Kalman predict over [range, range-rate].
                    let f = Matrix::from_rows([[1.0, dt], [0.0, 1.0]]);
                    let mut x = Vector::from_array([track.range_m, track.radial_velocity_mps]);
                    x = f * x;
                    let q = Matrix::from_diagonal([0.02 * dt, 0.3 * dt]);
                    let mut p = f * track.kf_cov * f.transpose() + q;
                    // Kalman update with the measured range and radial
                    // velocity (H = I).
                    let r = Matrix::from_diagonal([
                        self.range_sigma_m * self.range_sigma_m,
                        self.velocity_sigma_mps * self.velocity_sigma_mps,
                    ]);
                    if let Ok(s_inv) = (p + r).inverse() {
                        let gain = p * s_inv;
                        let z = Vector::from_array([target.range_m, target.radial_velocity_mps]);
                        x += gain * (z - x);
                        p = (Matrix::<2, 2>::identity() - gain) * p;
                        p.symmetrize();
                    }
                    track.range_m = x[0];
                    track.radial_velocity_mps = x[1];
                    track.kf_cov = p;
                    // Azimuth: exponential smoothing.
                    track.azimuth_rad = 0.5 * track.azimuth_rad + 0.5 * target.azimuth_rad;
                    track.last_update = scan.timestamp;
                    track.hits += 1;
                }
                None => {
                    claimed.push(true); // keep claimed in step with tracks
                    self.tracks.push(RadarTrack {
                        id: TrackId(self.next_id),
                        range_m: target.range_m,
                        azimuth_rad: target.azimuth_rad,
                        radial_velocity_mps: target.radial_velocity_mps,
                        class: None,
                        last_update: scan.timestamp,
                        hits: 1,
                        kf_cov: Matrix::from_diagonal([1.0, 4.0]),
                    });
                    self.next_id += 1;
                }
            }
        }
        self.prune(scan.timestamp);
    }

    fn prune(&mut self, now: SimTime) {
        let timeout = self.timeout_s;
        self.tracks
            .retain(|t| now.since(t.last_update).as_secs_f64() <= timeout);
    }
}

/// Spatial synchronization (Sec. VI-B): projects each radar track into the
/// camera image and associates it with the nearest detection, labeling the
/// track with the detection's class.
///
/// Returns `(track_id, detection_index)` pairs for tracks that matched
/// within `gate_px` pixels horizontally.
pub fn spatial_synchronize(
    tracker: &mut RadarTracker,
    detections: &[Detection],
    intrinsics: &Intrinsics,
    gate_px: f64,
) -> Vec<(TrackId, usize)> {
    let mut pairs = Vec::new();
    for track in &mut tracker.tracks {
        // Radar target in the vehicle frame: x = r·cos(az) forward,
        // y = r·sin(az) left. Camera: u = cx + fx·(x_c/z_c), x_c = −y.
        let zc = track.range_m * track.azimuth_rad.cos();
        if zc <= 0.1 {
            continue;
        }
        let xc = -(track.range_m * track.azimuth_rad.sin());
        let u = intrinsics.cx + intrinsics.fx * (xc / zc);
        let mut best: Option<(usize, f64)> = None;
        for (i, det) in detections.iter().enumerate() {
            let du = (det.pixel.0 - u).abs();
            // Depth consistency: detection depth should roughly match range.
            let depth_ok = (det.depth_m - zc).abs() < 0.3 * zc + 2.0;
            if du <= gate_px && depth_ok && best.is_none_or(|(_, d)| du < d) {
                best = Some((i, du));
            }
        }
        if let Some((i, _)) = best {
            track.class = Some(detections[i].class);
            pairs.push((track.id, i));
        }
    }
    pairs
}

/// The tracker-template table the visual front-end carries between frames:
/// the last-seen pixel position of every landmark feature, the KLT-style
/// association substrate at landmark granularity.
///
/// Entries are kept sorted by landmark id so association is a binary
/// search, and [`FeatureTrackList::rebuild`] reuses the backing storage —
/// steady-state frames allocate nothing once the table has grown to the
/// scene's feature count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureTrackList {
    entries: Vec<(LandmarkId, (f64, f64))>,
}

impl FeatureTrackList {
    /// An empty template table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of templates held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The template pixel position for `id`, if one was seen last frame.
    #[must_use]
    pub fn find(&self, id: LandmarkId) -> Option<(f64, f64)> {
        self.entries
            .binary_search_by_key(&id, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Replaces the table with this frame's features. Ids within one frame
    /// are unique (one observation per visible landmark), so the unstable
    /// sort is deterministic.
    pub fn rebuild(&mut self, features: impl IntoIterator<Item = (LandmarkId, (f64, f64))>) {
        self.entries.clear();
        self.entries.extend(features);
        self.entries.sort_unstable_by_key(|e| e.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::render_scene;
    use sov_math::SovRng;
    use sov_sensors::radar::RadarTarget;
    use sov_world::obstacle::ObstacleId;

    #[test]
    fn feature_track_list_associates_by_landmark_id() {
        let mut list = FeatureTrackList::new();
        assert!(list.is_empty());
        // Deliberately unsorted input: rebuild must sort for the search.
        list.rebuild([
            (LandmarkId(9), (90.0, 9.0)),
            (LandmarkId(2), (20.0, 2.0)),
            (LandmarkId(5), (50.0, 5.0)),
        ]);
        assert_eq!(list.len(), 3);
        assert_eq!(list.find(LandmarkId(5)), Some((50.0, 5.0)));
        assert_eq!(list.find(LandmarkId(3)), None);
        // Rebuild replaces, never accumulates.
        list.rebuild([(LandmarkId(1), (1.0, 1.0))]);
        assert_eq!(list.len(), 1);
        assert_eq!(list.find(LandmarkId(9)), None);
    }

    #[test]
    fn kcf_tracks_moving_blob() {
        let mut rng = SovRng::seed_from_u64(1);
        let mut blobs = vec![(40.0, 32.0, 3.0, 0.9), (90.0, 20.0, 2.0, 0.5)];
        let first = render_scene(128, 64, &blobs, 0.05, &mut rng);
        let mut tracker = KcfTracker::init(&first, 40.0, 32.0, KcfConfig::default());
        // Move the target 2 px right and 1 px down per frame for 10 frames.
        for _ in 0..10 {
            blobs[0].0 += 2.0;
            blobs[0].1 += 1.0;
            let mut frame_rng = SovRng::seed_from_u64(1);
            let frame = render_scene(128, 64, &blobs, 0.05, &mut frame_rng);
            tracker.update(&frame);
        }
        let (x, y) = tracker.position();
        assert!((x - 60.0).abs() < 3.0, "x drifted to {x}");
        assert!((y - 42.0).abs() < 3.0, "y drifted to {y}");
    }

    #[test]
    fn kcf_stationary_target_stays_put() {
        let mut rng = SovRng::seed_from_u64(2);
        let blobs = vec![(64.0, 32.0, 3.0, 0.9)];
        let frame = render_scene(128, 64, &blobs, 0.05, &mut rng);
        let mut tracker = KcfTracker::init(&frame, 64.0, 32.0, KcfConfig::default());
        for _ in 0..5 {
            tracker.update(&frame);
        }
        let (x, y) = tracker.position();
        assert!(
            (x - 64.0).abs() < 1.5 && (y - 32.0).abs() < 1.5,
            "({x},{y})"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn kcf_rejects_bad_patch_size() {
        let img = GrayImage::new(64, 64);
        let _ = KcfTracker::init(
            &img,
            32.0,
            32.0,
            KcfConfig {
                patch_size: 33,
                ..KcfConfig::default()
            },
        );
    }

    fn scan_with(range: f64, azimuth: f64, vel: f64, t_ms: u64, stable: bool) -> RadarScan {
        RadarScan {
            timestamp: SimTime::from_millis(t_ms),
            targets: vec![RadarTarget {
                truth: ObstacleId(0),
                range_m: range,
                azimuth_rad: azimuth,
                radial_velocity_mps: vel,
            }],
            stable,
        }
    }

    #[test]
    fn radar_tracker_maintains_one_track() {
        let mut tracker = RadarTracker::new();
        for i in 0..10u64 {
            // Target approaching at 5 m/s, scans every 50 ms.
            let range = 30.0 - 5.0 * (i as f64) * 0.05;
            tracker.update(&scan_with(range, 0.02, -5.0, i * 50, true));
        }
        assert_eq!(tracker.tracks().len(), 1, "should coalesce into one track");
        let track = &tracker.tracks()[0];
        assert_eq!(track.hits, 10);
        assert!((track.radial_velocity_mps + 5.0).abs() < 0.01);
    }

    #[test]
    fn unstable_scans_are_ignored() {
        let mut tracker = RadarTracker::new();
        tracker.update(&scan_with(20.0, 0.0, -3.0, 0, false));
        assert!(tracker.tracks().is_empty());
        tracker.update(&scan_with(20.0, 0.0, -3.0, 50, true));
        assert_eq!(tracker.tracks().len(), 1);
    }

    #[test]
    fn tracks_time_out() {
        let mut tracker = RadarTracker::new();
        tracker.update(&scan_with(20.0, 0.0, -3.0, 0, true));
        // A scan 1 s later with no targets prunes the stale track.
        tracker.update(&RadarScan {
            timestamp: SimTime::from_millis(1_000),
            targets: vec![],
            stable: true,
        });
        assert!(tracker.tracks().is_empty());
    }

    #[test]
    fn kalman_filter_beats_raw_measurements() {
        use sov_math::SovRng;
        let mut tracker = RadarTracker::new();
        let mut rng = SovRng::seed_from_u64(9);
        let true_vel = -5.0;
        let mut raw_err_sum = 0.0;
        let mut filt_err_sum = 0.0;
        let n = 40u64;
        for i in 0..n {
            let t = i as f64 * 0.05;
            let true_range = 50.0 + true_vel * t;
            let noisy_range = true_range + rng.normal(0.0, 0.3);
            let noisy_vel = true_vel + rng.normal(0.0, 0.5);
            tracker.update(&scan_with(
                noisy_range,
                0.0,
                noisy_vel,
                (t * 1000.0) as u64,
                true,
            ));
            if i >= 10 {
                raw_err_sum += (noisy_vel - true_vel).abs();
                filt_err_sum += (tracker.tracks()[0].radial_velocity_mps - true_vel).abs();
            }
        }
        assert!(
            filt_err_sum < raw_err_sum * 0.8,
            "filtered velocity error {filt_err_sum:.2} must beat raw {raw_err_sum:.2}"
        );
    }

    #[test]
    fn distinct_targets_get_distinct_tracks() {
        let mut tracker = RadarTracker::new();
        tracker.update(&RadarScan {
            timestamp: SimTime::ZERO,
            targets: vec![
                RadarTarget {
                    truth: ObstacleId(0),
                    range_m: 10.0,
                    azimuth_rad: 0.0,
                    radial_velocity_mps: 0.0,
                },
                RadarTarget {
                    truth: ObstacleId(1),
                    range_m: 30.0,
                    azimuth_rad: 0.3,
                    radial_velocity_mps: -2.0,
                },
            ],
            stable: true,
        });
        assert_eq!(tracker.tracks().len(), 2);
    }

    #[test]
    fn spatial_sync_matches_track_to_detection() {
        let intr = Intrinsics::hd1080();
        let mut tracker = RadarTracker::new();
        // Target 20 m ahead, slightly left (azimuth +0.05 rad).
        tracker.update(&scan_with(20.0, 0.05, -5.0, 0, true));
        // Matching detection: projected u = cx + fx·(−sin·r / cos·r).
        let zc = 20.0 * 0.05f64.cos();
        let u = intr.cx + intr.fx * (-(20.0 * 0.05f64.sin()) / zc);
        let detections = vec![
            Detection {
                truth: Some(ObstacleId(0)),
                class: ObstacleClass::Pedestrian,
                pixel: (u + 3.0, 500.0),
                radius_px: 30.0,
                depth_m: 19.5,
                confidence: 0.9,
            },
            Detection {
                truth: Some(ObstacleId(1)),
                class: ObstacleClass::Vehicle,
                pixel: (u + 400.0, 500.0),
                radius_px: 60.0,
                depth_m: 35.0,
                confidence: 0.9,
            },
        ];
        let pairs = spatial_synchronize(&mut tracker, &detections, &intr, 50.0);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].1, 0, "must match the nearer detection");
        assert_eq!(tracker.tracks()[0].class, Some(ObstacleClass::Pedestrian));
    }

    #[test]
    fn spatial_sync_respects_depth_gate() {
        let intr = Intrinsics::hd1080();
        let mut tracker = RadarTracker::new();
        tracker.update(&scan_with(20.0, 0.0, -5.0, 0, true));
        // Pixel-aligned detection but at a wildly different depth.
        let detections = vec![Detection {
            truth: None,
            class: ObstacleClass::Vehicle,
            pixel: (intr.cx, 500.0),
            radius_px: 30.0,
            depth_m: 60.0,
            confidence: 0.9,
        }];
        let pairs = spatial_synchronize(&mut tracker, &detections, &intr, 50.0);
        assert!(
            pairs.is_empty(),
            "depth-inconsistent match must be rejected"
        );
    }
}
