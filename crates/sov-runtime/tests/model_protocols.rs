//! Bounded-schedule model checking of the `sov-runtime` concurrency core
//! (DESIGN.md §13).
//!
//! Three protocols carry the workspace's determinism and liveness
//! argument, and each is re-expressed here as a `sov_testkit::model`
//! program and checked across every interleaving a bounded enumeration
//! reaches:
//!
//! 1. **`SpscRing` (`sov_runtime::queue`)** — the mutex/condvar hand-off:
//!    FIFO order, the capacity bound, orderly shutdown (drain then
//!    `None`), no lost wakeup (absence of deadlock), and tolerance of
//!    spurious wakeups (the `while`-loop re-check).
//! 2. **`WorkerPool`'s `Unit` (`sov_runtime::pool`)** — the atomic
//!    chunk-claim / completion-barrier: no double-claim, no skipped
//!    chunk, exactly-once completion signal, and the dispatching caller
//!    always wakes.
//! 3. **The pipeline drain argument (`sov_runtime::pipeline`,
//!    DESIGN.md §10)** — with done rings sized `2·depth + 4`, the lane
//!    graph absorbs every frame the dispatch gate can put in flight, so
//!    no schedule deadlocks and results drain in FIFO order.
//!
//! Each protocol also ships **deliberately broken variants** (a queue
//! whose push skips its wakeup, a recv that skips the wake-up re-check, a
//! pool whose chunk claim is a non-atomic read-then-write, an undersized
//! done ring) with tests asserting the checker *finds* each bug — the
//! guard that keeps this harness from rotting into always-green.
//!
//! Granularity: operations under a modeled lock collapse into the
//! acquiring step (sound — critical-section interiors are unobservable);
//! atomic RMWs and ring operations are single steps. See the
//! `sov_testkit::model` module docs.

use std::collections::VecDeque;

use sov_testkit::model::{Explorer, MCondvar, MLock, Model, Status, ThreadId, ViolationKind};

/// Schedules the ring + pool acceptance tests must jointly explore
/// violation-free (ISSUE 8 acceptance bar).
const REQUIRED_CLEAN_SCHEDULES: usize = 10_000;

// ---------------------------------------------------------------------------
// Protocol 1: the SpscRing mutex/condvar hand-off.
// ---------------------------------------------------------------------------

/// Seeded bugs for [`RingModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RingBug {
    /// `send` forgets `not_empty.notify_one()` after pushing: a consumer
    /// already parked never learns the ring is non-empty — lost wakeup.
    LostWakeup,
    /// `recv` pops without re-checking the predicate after waking (an
    /// `if` where the real code has a `while`): a spurious wakeup makes
    /// it observe an empty ring and give up early.
    NoRecheck,
}

/// Program counters for the two ring threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RingPc {
    /// About to acquire the lock for a send/recv attempt.
    Attempt,
    /// Parked in a condvar wait set.
    Parked,
    /// Woken (or spuriously woken): about to reacquire and re-check.
    Reacquire,
    /// Producer only: about to run the sender's `Drop`.
    DropSender,
    /// Program finished.
    Finished,
}

/// Faithful transcription of `sov_runtime::queue`: one producer sending
/// `0..n` then dropping its handle, one consumer receiving until `None`.
#[derive(Clone)]
struct RingModel {
    bug: Option<RingBug>,
    cap: usize,
    n: u32,
    lock: MLock,
    not_empty: MCondvar,
    not_full: MCondvar,
    ring: VecDeque<u32>,
    sender_alive: bool,
    pc: [RingPc; 2],
    next_send: u32,
    received: Vec<u32>,
    /// Set by the NoRecheck variant when it pops from an empty ring.
    early_exit: bool,
}

const PRODUCER: ThreadId = 0;
const CONSUMER: ThreadId = 1;

impl RingModel {
    fn new(cap: usize, n: u32, bug: Option<RingBug>) -> Self {
        Self {
            bug,
            cap,
            n,
            lock: MLock::default(),
            not_empty: MCondvar::default(),
            not_full: MCondvar::default(),
            ring: VecDeque::new(),
            sender_alive: true,
            pc: [RingPc::Attempt; 2],
            next_send: 0,
            received: Vec::new(),
            early_exit: false,
        }
    }

    /// The body of `RingSender::send` once the lock is held (push +
    /// notify + unlock, or wait-entry). Mirrors queue.rs line for line.
    fn producer_critical(&mut self) {
        self.lock.acquire(PRODUCER);
        if self.ring.len() < self.cap {
            self.ring.push_back(self.next_send);
            if self.bug != Some(RingBug::LostWakeup) {
                self.not_empty.notify_one();
            }
            self.lock.release(PRODUCER);
            self.next_send += 1;
            self.pc[PRODUCER] = if self.next_send == self.n {
                RingPc::DropSender
            } else {
                RingPc::Attempt
            };
        } else {
            self.not_full.wait(PRODUCER);
            self.lock.release(PRODUCER);
            self.pc[PRODUCER] = RingPc::Parked;
        }
    }

    /// The body of `RingReceiver::recv` once the lock is held.
    /// `after_wake` distinguishes the re-check pass (where the NoRecheck
    /// variant pops blindly).
    fn consumer_critical(&mut self, after_wake: bool) {
        self.lock.acquire(CONSUMER);
        if after_wake && self.bug == Some(RingBug::NoRecheck) {
            // Buggy `if`-based recv: assume the wakeup implies an item.
            match self.ring.pop_front() {
                Some(v) => {
                    self.received.push(v);
                    self.not_full.notify_one();
                    self.pc[CONSUMER] = RingPc::Attempt;
                }
                None => {
                    // Treats "woke to an empty ring" as end-of-stream.
                    self.early_exit = self.sender_alive;
                    self.pc[CONSUMER] = RingPc::Finished;
                }
            }
            self.lock.release(CONSUMER);
            return;
        }
        if let Some(v) = self.ring.pop_front() {
            self.received.push(v);
            self.not_full.notify_one();
            self.lock.release(CONSUMER);
            self.pc[CONSUMER] = RingPc::Attempt;
        } else if !self.sender_alive {
            self.lock.release(CONSUMER);
            self.pc[CONSUMER] = RingPc::Finished;
        } else {
            self.not_empty.wait(CONSUMER);
            self.lock.release(CONSUMER);
            self.pc[CONSUMER] = RingPc::Parked;
        }
    }
}

impl Model for RingModel {
    fn threads(&self) -> usize {
        2
    }

    fn status(&self, t: ThreadId) -> Status {
        let cv = if t == PRODUCER {
            &self.not_full
        } else {
            &self.not_empty
        };
        match self.pc[t] {
            RingPc::Finished => Status::Done,
            RingPc::Parked => Status::Waiting {
                woken: cv.waiting(t) == Some(true),
            },
            RingPc::Attempt | RingPc::Reacquire | RingPc::DropSender => {
                if self.lock.free() {
                    Status::Runnable
                } else {
                    Status::Blocked
                }
            }
        }
    }

    fn step(&mut self, t: ThreadId, _spurious: bool) {
        match (t, self.pc[t]) {
            (PRODUCER, RingPc::Attempt | RingPc::Reacquire) => self.producer_critical(),
            (PRODUCER, RingPc::Parked) => {
                self.not_full.unpark(PRODUCER);
                self.pc[PRODUCER] = RingPc::Reacquire;
            }
            (PRODUCER, RingPc::DropSender) => {
                // `Drop for RingSender`: flag under the lock, then wake
                // any parked consumer so it can observe the closure.
                self.lock.acquire(PRODUCER);
                self.sender_alive = false;
                self.lock.release(PRODUCER);
                self.not_empty.notify_all();
                self.pc[PRODUCER] = RingPc::Finished;
            }
            (CONSUMER, RingPc::Attempt) => self.consumer_critical(false),
            (CONSUMER, RingPc::Reacquire) => self.consumer_critical(true),
            (CONSUMER, RingPc::Parked) => {
                self.not_empty.unpark(CONSUMER);
                self.pc[CONSUMER] = RingPc::Reacquire;
            }
            (t, pc) => unreachable!("stepped thread {t} at {pc:?}"),
        }
    }

    fn invariant(&self) -> Result<(), String> {
        if self.ring.len() > self.cap {
            return Err(format!(
                "capacity bound violated: {} items in a ring of {}",
                self.ring.len(),
                self.cap
            ));
        }
        if self.early_exit {
            return Err("recv returned None while the sender was alive".into());
        }
        Ok(())
    }

    fn finished(&self) -> Result<(), String> {
        let expected: Vec<u32> = (0..self.n).collect();
        if self.received == expected {
            Ok(())
        } else {
            Err(format!(
                "FIFO broken: received {:?}, expected {expected:?}",
                self.received
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol 2: the WorkerPool Unit chunk-claim / completion-barrier.
// ---------------------------------------------------------------------------

/// Program counters for each claiming thread in [`PoolModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolPc {
    /// About to claim a chunk (`next.fetch_add(1)`).
    Claim,
    /// Double-claim variant only: has read `next`, not yet written back.
    ClaimWrite,
    /// Running claimed chunk (index stored per thread).
    Run,
    /// About to bump `finished` (`fetch_add(1, AcqRel)`).
    Finish,
    /// Last finisher: about to take the done lock and signal.
    Signal,
    /// Caller only: about to take the done lock and check the flag.
    WaitAcquire,
    /// Caller only: parked on the done condvar.
    WaitParked,
    /// Program finished.
    Exited,
}

/// Transcription of `Unit::participate` + `Unit::wait`: `workers`
/// spawned lanes plus the dispatching caller (which participates first,
/// then blocks on the completion barrier — exactly `run_unit`).
#[derive(Clone)]
struct PoolModel {
    double_claim_bug: bool,
    total: usize,
    next: usize,
    finished: usize,
    claims: Vec<u8>,
    done_flag: bool,
    signal_count: u8,
    done_lock: MLock,
    done_cv: MCondvar,
    pc: Vec<PoolPc>,
    /// Per-thread claimed chunk (Run state) or read of `next`
    /// (ClaimWrite state).
    scratch: Vec<usize>,
}

impl PoolModel {
    fn new(workers: usize, total: usize, double_claim_bug: bool) -> Self {
        Self {
            double_claim_bug,
            total,
            next: 0,
            finished: 0,
            claims: vec![0; total],
            done_flag: false,
            signal_count: 0,
            done_lock: MLock::default(),
            done_cv: MCondvar::default(),
            pc: vec![PoolPc::Claim; workers + 1],
            scratch: vec![0; workers + 1],
        }
    }

    /// The caller is the last thread; workers exit after the chunks run
    /// dry, the caller falls through to the barrier wait.
    fn caller(&self) -> ThreadId {
        self.pc.len() - 1
    }

    fn after_claim(&mut self, t: ThreadId, chunk: usize) {
        if chunk >= self.total {
            self.pc[t] = if t == self.caller() {
                PoolPc::WaitAcquire
            } else {
                PoolPc::Exited
            };
        } else {
            self.scratch[t] = chunk;
            self.pc[t] = PoolPc::Run;
        }
    }
}

impl Model for PoolModel {
    fn threads(&self) -> usize {
        self.pc.len()
    }

    fn status(&self, t: ThreadId) -> Status {
        match self.pc[t] {
            PoolPc::Exited => Status::Done,
            PoolPc::WaitParked => Status::Waiting {
                woken: self.done_cv.waiting(t) == Some(true),
            },
            PoolPc::Signal | PoolPc::WaitAcquire => {
                if self.done_lock.free() {
                    Status::Runnable
                } else {
                    Status::Blocked
                }
            }
            PoolPc::Claim | PoolPc::ClaimWrite | PoolPc::Run | PoolPc::Finish => Status::Runnable,
        }
    }

    fn step(&mut self, t: ThreadId, _spurious: bool) {
        match self.pc[t] {
            PoolPc::Claim if self.double_claim_bug => {
                // Broken variant: the fetch_add decomposed into a read
                // step and a write step — two lanes can read the same
                // `next` and both run the same chunk.
                self.scratch[t] = self.next;
                self.pc[t] = PoolPc::ClaimWrite;
            }
            PoolPc::Claim => {
                let chunk = self.next;
                self.next += 1;
                self.after_claim(t, chunk);
            }
            PoolPc::ClaimWrite => {
                let chunk = self.scratch[t];
                self.next = chunk + 1;
                self.after_claim(t, chunk);
            }
            PoolPc::Run => {
                self.claims[self.scratch[t]] += 1;
                self.pc[t] = PoolPc::Finish;
            }
            PoolPc::Finish => {
                self.finished += 1;
                self.pc[t] = if self.finished == self.total {
                    PoolPc::Signal
                } else {
                    PoolPc::Claim
                };
            }
            PoolPc::Signal => {
                self.done_lock.acquire(t);
                self.done_flag = true;
                self.signal_count += 1;
                self.done_cv.notify_all();
                self.done_lock.release(t);
                self.pc[t] = PoolPc::Claim;
            }
            PoolPc::WaitAcquire => {
                self.done_lock.acquire(t);
                if self.done_flag {
                    self.done_lock.release(t);
                    self.pc[t] = PoolPc::Exited;
                } else {
                    self.done_cv.wait(t);
                    self.done_lock.release(t);
                    self.pc[t] = PoolPc::WaitParked;
                }
            }
            PoolPc::WaitParked => {
                self.done_cv.unpark(t);
                self.pc[t] = PoolPc::WaitAcquire;
            }
            PoolPc::Exited => unreachable!("stepped an exited thread"),
        }
    }

    fn invariant(&self) -> Result<(), String> {
        if let Some(chunk) = self.claims.iter().position(|&c| c > 1) {
            return Err(format!(
                "chunk {chunk} claimed {} times",
                self.claims[chunk]
            ));
        }
        if self.signal_count > 1 {
            return Err(format!(
                "completion barrier signalled {} times",
                self.signal_count
            ));
        }
        if self.finished > self.total {
            return Err(format!(
                "finished count {} exceeds {} chunks",
                self.finished, self.total
            ));
        }
        Ok(())
    }

    fn finished(&self) -> Result<(), String> {
        if let Some(chunk) = self.claims.iter().position(|&c| c != 1) {
            return Err(format!(
                "chunk {chunk} ran {} times (want exactly once)",
                self.claims[chunk]
            ));
        }
        if self.signal_count != 1 {
            return Err(format!(
                "completion signalled {} times (want exactly once)",
                self.signal_count
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Protocol 3: pipeline drain / done-ring sizing (DESIGN.md §10).
// ---------------------------------------------------------------------------

/// A ring abstracted to the granularity RingModel already verified:
/// send/recv/close are single atomic transitions.
#[derive(Clone)]
struct MRing {
    cap: usize,
    buf: VecDeque<u32>,
    open: bool,
}

impl MRing {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            buf: VecDeque::new(),
            open: true,
        }
    }

    fn can_send(&self) -> bool {
        self.buf.len() < self.cap
    }

    /// Ready when an item is available or closure is observable.
    fn can_recv(&self) -> bool {
        !self.buf.is_empty() || !self.open
    }
}

/// Caller/lane program counters for [`PipelineModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PipePc {
    /// Caller: dispatching frames into the first work ring.
    Dispatch,
    /// Caller: closing the first work ring.
    CloseInput,
    /// Caller: draining the done ring until it closes.
    Drain,
    /// Lane: receiving from its input ring.
    Recv,
    /// Lane: forwarding the held frame to its output ring.
    Forward,
    /// Program finished.
    Exited,
}

/// The worst window between drains: the caller dispatches `n` frames
/// before collecting anything (the pattern between two block-drain
/// points in `Sov::drive_with_plan`), two lanes forward frames through
/// depth-`d` work rings into the done ring, and only then does the
/// caller drain. Every in-flight frame must find a resting place or the
/// lane graph wedges — the `2·depth + 4` sizing argument.
#[derive(Clone)]
struct PipelineModel {
    n: u32,
    rings: [MRing; 3], // work ring a, work ring b, done ring
    pc: [PipePc; 3],   // caller, lane 1, lane 2
    sent: u32,
    held: [u32; 2],
    results: Vec<u32>,
}

impl PipelineModel {
    fn new(depth: usize, n: u32, done_cap: usize) -> Self {
        Self {
            n,
            rings: [MRing::new(depth), MRing::new(depth), MRing::new(done_cap)],
            pc: [PipePc::Dispatch, PipePc::Recv, PipePc::Recv],
            sent: 0,
            held: [0; 2],
            results: Vec::new(),
        }
    }
}

impl Model for PipelineModel {
    fn threads(&self) -> usize {
        3
    }

    fn status(&self, t: ThreadId) -> Status {
        let ready = match (t, self.pc[t]) {
            (_, PipePc::Exited) => return Status::Done,
            (0, PipePc::Dispatch) => self.rings[0].can_send(),
            (0, PipePc::CloseInput) => true,
            (0, PipePc::Drain) => self.rings[2].can_recv(),
            (lane, PipePc::Recv) => self.rings[lane - 1].can_recv(),
            (lane, PipePc::Forward) => self.rings[lane].can_send(),
            (t, pc) => unreachable!("thread {t} at {pc:?}"),
        };
        if ready {
            Status::Runnable
        } else {
            Status::Blocked
        }
    }

    fn step(&mut self, t: ThreadId, _spurious: bool) {
        match (t, self.pc[t]) {
            (0, PipePc::Dispatch) => {
                self.rings[0].buf.push_back(self.sent);
                self.sent += 1;
                if self.sent == self.n {
                    self.pc[0] = PipePc::CloseInput;
                }
            }
            (0, PipePc::CloseInput) => {
                self.rings[0].open = false;
                self.pc[0] = PipePc::Drain;
            }
            (0, PipePc::Drain) => match self.rings[2].buf.pop_front() {
                Some(v) => self.results.push(v),
                None => self.pc[0] = PipePc::Exited,
            },
            (lane, PipePc::Recv) => match self.rings[lane - 1].buf.pop_front() {
                Some(v) => {
                    self.held[lane - 1] = v;
                    self.pc[lane] = PipePc::Forward;
                }
                None => {
                    self.rings[lane].open = false;
                    self.pc[lane] = PipePc::Exited;
                }
            },
            (lane, PipePc::Forward) => {
                self.rings[lane].buf.push_back(self.held[lane - 1]);
                self.pc[lane] = PipePc::Recv;
            }
            (t, pc) => unreachable!("stepped thread {t} at {pc:?}"),
        }
    }

    fn finished(&self) -> Result<(), String> {
        let expected: Vec<u32> = (0..self.n).collect();
        if self.results == expected {
            Ok(())
        } else {
            Err(format!(
                "pipeline reordered or dropped frames: {:?}",
                self.results
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// The checks.
// ---------------------------------------------------------------------------

fn ring_explorer() -> Explorer {
    Explorer {
        max_preemptions: 4,
        max_spurious: 1,
        ..Explorer::default()
    }
}

fn pool_explorer() -> Explorer {
    Explorer {
        max_preemptions: 3,
        max_spurious: 1,
        ..Explorer::default()
    }
}

#[test]
fn spsc_ring_protocol_is_clean_across_all_bounded_schedules() {
    let report = ring_explorer().explore(&RingModel::new(2, 4, None));
    report.assert_clean();
    assert!(report.exhausted, "bounded space fully enumerated");
    assert!(
        report.schedules > 1_000,
        "explored only {} schedules",
        report.schedules
    );
}

#[test]
fn pool_unit_protocol_is_clean_across_all_bounded_schedules() {
    let report = pool_explorer().explore(&PoolModel::new(2, 3, false));
    report.assert_clean();
    assert!(report.exhausted, "bounded space fully enumerated");
    assert!(
        report.schedules > 1_000,
        "explored only {} schedules",
        report.schedules
    );
}

/// The ISSUE 8 acceptance bar: ring + pool jointly explore ≥ 10k
/// distinct schedules with zero violations.
#[test]
fn ring_and_pool_jointly_clear_ten_thousand_clean_schedules() {
    let ring = ring_explorer().explore(&RingModel::new(2, 4, None));
    let pool = pool_explorer().explore(&PoolModel::new(2, 3, false));
    ring.assert_clean();
    pool.assert_clean();
    let total = ring.schedules + pool.schedules;
    eprintln!(
        "model schedules: ring {} + pool {} = {total} (max depth {} / {})",
        ring.schedules, pool.schedules, ring.max_depth, pool.max_depth
    );
    assert!(
        total >= REQUIRED_CLEAN_SCHEDULES,
        "ring {} + pool {} = {total} schedules < {REQUIRED_CLEAN_SCHEDULES}",
        ring.schedules,
        pool.schedules
    );
}

#[test]
fn pipeline_done_ring_sized_two_depth_plus_four_never_deadlocks() {
    // depth 2, 10 frames in the drain window: 2·2+4 = 8-slot done ring.
    let report = Explorer {
        max_preemptions: 2,
        ..Explorer::default()
    }
    .explore(&PipelineModel::new(2, 10, 2 * 2 + 4));
    report.assert_clean();
    assert!(report.schedules > 100, "schedules: {}", report.schedules);
}

#[test]
fn seeded_lost_wakeup_queue_is_flagged_as_deadlock() {
    let report = ring_explorer().explore(&RingModel::new(2, 4, Some(RingBug::LostWakeup)));
    let v = report.violation.expect("the lost wakeup must be found");
    assert_eq!(v.kind, ViolationKind::Deadlock, "{}", v.message);
    assert!(!v.trace.is_empty(), "violation carries a replayable trace");
}

#[test]
fn seeded_recv_without_recheck_is_flagged_under_spurious_wakeups() {
    let report = ring_explorer().explore(&RingModel::new(2, 4, Some(RingBug::NoRecheck)));
    let v = report
        .violation
        .expect("the missing re-check must be found");
    assert!(
        matches!(v.kind, ViolationKind::Invariant | ViolationKind::Final),
        "unexpected kind {:?}: {}",
        v.kind,
        v.message
    );
}

#[test]
fn seeded_double_claim_pool_is_flagged() {
    let report = pool_explorer().explore(&PoolModel::new(2, 3, true));
    let v = report.violation.expect("the double claim must be found");
    assert_eq!(v.kind, ViolationKind::Invariant, "{}", v.message);
    assert!(v.message.contains("claimed"), "{}", v.message);
}

#[test]
fn undersized_done_ring_deadlocks_the_drain_window() {
    // Same lane graph, done ring of 1 slot: 10 in-flight frames cannot
    // all rest (2 + 2 + 1 rings + 2 in-lane registers + 1 unsent = 8),
    // so the caller wedges against its own drain point.
    let report = Explorer {
        max_preemptions: 2,
        ..Explorer::default()
    }
    .explore(&PipelineModel::new(2, 10, 1));
    let v = report.violation.expect("the wedge must be found");
    assert_eq!(v.kind, ViolationKind::Deadlock, "{}", v.message);
}
