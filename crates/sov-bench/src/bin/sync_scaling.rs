//! Sec. VI-A3 — scaling the hardware synchronizer to more cameras.
//!
//! "Synchronizing more cameras simply requires expanding the number of
//! trigger signals; the rest of synchronization, including timestamp
//! adjustment, is all handled at the application layer."
//!
//! All four cameras share the GPS-disciplined trigger, so pairwise capture
//! offsets stay at zero regardless of camera count; under software-only
//! sync every added camera free-runs on its own timer and pairwise offsets
//! stay large.

use sov_math::SovRng;
use sov_sensors::sync::{CameraId, SyncConfig, SyncStrategy, Synchronizer};

fn main() {
    sov_bench::banner("Sync scaling", "Multi-camera synchronization (Sec. VI-A3)");
    let seed = sov_bench::seed_from_args();
    let mut rng = SovRng::seed_from_u64(seed);
    for (label, strategy) in [
        ("software-only", SyncStrategy::SoftwareOnly),
        ("hardware-assisted", SyncStrategy::HardwareAssisted),
    ] {
        sov_bench::section(label);
        let sync = Synchronizer::new(
            strategy,
            SyncConfig {
                seed,
                ..SyncConfig::default()
            },
        );
        println!(
            "{:>24} | {:>24} | {:>18}",
            "camera pair", "mean trigger offset (ms)", "max offset (ms)"
        );
        println!("{:->24}-+-{:->24}-+-{:->18}", "", "", "");
        let cams = CameraId::ALL;
        for i in 0..cams.len() {
            for j in (i + 1)..cams.len() {
                let mut sum = 0.0f64;
                let mut max = 0.0f64;
                for k in 0..200u64 {
                    let a = sync.camera_trigger(cams[i], k);
                    let b = sync.camera_trigger(cams[j], k);
                    let off = (a.as_millis_f64() - b.as_millis_f64()).abs();
                    sum += off;
                    max = max.max(off);
                }
                println!(
                    "{:>24} | {:>24.3} | {:>18.3}",
                    format!("{:?} vs {:?}", cams[i], cams[j]),
                    sum / 200.0,
                    max
                );
            }
        }
        // Per-camera timestamp error too.
        let mean_err: f64 = (1..100)
            .map(|k| sync.camera_sample(k, &mut rng).timestamp_error_ms().abs())
            .sum::<f64>()
            / 99.0;
        println!("mean per-frame timestamp error: {mean_err:.2} ms");
    }
    println!(
        "\nsynchronizer cost is independent of camera count up to trigger\n\
         fan-out: 1,443 LUTs, 1,587 registers, 5 mW (Sec. VI-A3)."
    );
}
