//! Stereo depth estimation (Table III: ELAS, hand-crafted features).
//!
//! Two estimators are provided:
//!
//! * [`feature_depth_map`] — sparse triangulation of matched features, the
//!   path used by the synchronization study (Fig. 11a): each landmark seen
//!   by both cameras yields a disparity and hence a depth.
//! * [`DenseStereoMatcher`] — an ELAS-style dense matcher: sparse
//!   high-confidence *support points* on a grid (SAD block matching with a
//!   uniqueness ratio test) followed by scanline interpolation, as in the
//!   original ELAS design of Geiger et al.
//!
//! The paper's vehicles tolerate ~0.2 m depth error because they maneuver at
//! lane granularity (Sec. III-D); the experiments here quantify how quickly
//! stereo desynchronization destroys that budget.

use crate::image::GrayImage;
use sov_math::{Pose2, SovRng};
use sov_runtime::arena::FrameArena;
use sov_runtime::pool::{for_chunks, map_reduce_chunks, WorkerPool};
use sov_sensors::camera::{CameraFrame, StereoRig};
use sov_sim::time::{SimDuration, SimTime};
use sov_world::landmark::LandmarkId;
use sov_world::scenario::World;

/// A sparse depth estimate for one matched feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthEstimate {
    /// The matched landmark.
    pub landmark: LandmarkId,
    /// Estimated depth (m).
    pub depth_m: f64,
    /// Ground-truth depth from the left camera (m).
    pub true_depth_m: f64,
}

impl DepthEstimate {
    /// Absolute error (m).
    #[must_use]
    pub fn abs_error_m(&self) -> f64 {
        (self.depth_m - self.true_depth_m).abs()
    }
}

/// The disparity (px) a rig with focal length `fx_px` and baseline
/// `baseline_m` would measure for a feature at `depth_m` — the inverse of
/// [`StereoRig::depth_from_disparity`], used by the visual front-end to
/// synthesize per-feature stereo measurements from the scene geometry.
/// Returns `None` for non-positive depths (behind or on the camera plane).
#[must_use]
pub fn disparity_for_depth(fx_px: f64, baseline_m: f64, depth_m: f64) -> Option<f64> {
    if depth_m <= 0.0 {
        return None;
    }
    Some(fx_px * baseline_m / depth_m)
}

/// Triangulates all features visible in both frames.
///
/// Features are matched by landmark identity, modeling a descriptor matcher
/// with no mismatches; disparity noise still enters through the per-camera
/// pixel noise.
#[must_use]
pub fn feature_depth_map(
    rig: &StereoRig,
    left: &CameraFrame,
    right: &CameraFrame,
) -> Vec<DepthEstimate> {
    let mut out = Vec::new();
    for lf in &left.features {
        if let Some(rf) = right.feature(lf.landmark) {
            let disparity = lf.pixel.0 - rf.pixel.0;
            if let Some(depth) = rig.depth_from_disparity(disparity) {
                out.push(DepthEstimate {
                    landmark: lf.landmark,
                    depth_m: depth,
                    true_depth_m: lf.true_depth,
                });
            }
        }
    }
    out
}

/// Mean absolute depth error of a set of estimates (m); 0.0 when empty.
#[must_use]
pub fn mean_abs_error_m(estimates: &[DepthEstimate]) -> f64 {
    if estimates.is_empty() {
        return 0.0;
    }
    estimates
        .iter()
        .map(DepthEstimate::abs_error_m)
        .sum::<f64>()
        / estimates.len() as f64
}

/// Runs the Fig. 11a experiment kernel once: captures a stereo pair where
/// the right camera fires `offset` later while the vehicle moves along
/// `pose_of`, then triangulates.
///
/// `pose_of` maps a time to the vehicle's ground-truth pose.
pub fn depth_with_sync_offset(
    rig: &StereoRig,
    world: &World,
    pose_of: impl Fn(SimTime) -> Pose2,
    t: SimTime,
    offset: SimDuration,
    rng: &mut SovRng,
) -> Vec<DepthEstimate> {
    let t_right = t + offset;
    let (left, right) =
        rig.capture_pair_unsynced(&pose_of(t), &pose_of(t_right), world, t, t_right, rng);
    feature_depth_map(rig, &left, &right)
}

/// A dense disparity map.
#[derive(Debug, Clone, PartialEq)]
pub struct DisparityMap {
    width: usize,
    height: usize,
    /// Disparity per pixel; `f32::NAN` where invalid.
    data: Vec<f32>,
}

impl DisparityMap {
    /// Width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Disparity at `(x, y)`; `None` where matching failed.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> Option<f32> {
        let v = *self.data.get(y * self.width + x)?;
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    /// Fraction of pixels with a valid disparity.
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|v| !v.is_nan()).count() as f64 / self.data.len() as f64
    }

    /// Consumes the map, returning its backing buffer so a caller that
    /// computes disparities every frame can [`FrameArena::recycle`] it.
    #[must_use]
    pub fn into_raw(self) -> Vec<f32> {
        self.data
    }
}

/// Grid rows per parallel chunk in dense-matcher phase 1 (fixed so chunk
/// boundaries never depend on worker count).
const GRID_ROWS_PER_CHUNK: usize = 2;

/// Image rows per parallel chunk in dense-matcher phase 2.
const ROWS_PER_CHUNK: usize = 8;

/// ELAS-style dense stereo matcher: support points + interpolation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DenseStereoMatcher {
    /// Half-size of the SAD matching block.
    pub block_radius: usize,
    /// Maximum disparity searched (px).
    pub max_disparity: usize,
    /// Grid step between support points (px).
    pub grid_step: usize,
    /// Uniqueness ratio: best SAD must be at most this fraction of the
    /// second best for a support point to be accepted.
    pub uniqueness: f32,
}

impl Default for DenseStereoMatcher {
    fn default() -> Self {
        Self {
            block_radius: 3,
            max_disparity: 48,
            grid_step: 4,
            uniqueness: 0.85,
        }
    }
}

impl DenseStereoMatcher {
    /// Computes a dense disparity map from a rectified pair (left, right).
    ///
    /// # Panics
    ///
    /// Panics if the images have different dimensions.
    #[must_use]
    pub fn compute(&self, left: &GrayImage, right: &GrayImage) -> DisparityMap {
        self.compute_with(left, right, None, None)
    }

    /// [`Self::compute`] with optional intra-frame parallelism and buffer
    /// reuse.
    ///
    /// Support-point grid rows (phase 1) and scanline interpolation rows
    /// (phase 2) are chunked with fixed boundaries and merged in ascending
    /// order; the vertical fill (phase 3) is a cheap single serial pass.
    /// The result is bit-identical to the serial matcher for any worker
    /// count. The disparity plane is borrowed from `arena` when supplied;
    /// recycle it after use via [`DisparityMap::into_raw`].
    ///
    /// # Panics
    ///
    /// Panics if the images have different dimensions.
    #[must_use]
    pub fn compute_with(
        &self,
        left: &GrayImage,
        right: &GrayImage,
        pool: Option<&WorkerPool>,
        arena: Option<&FrameArena>,
    ) -> DisparityMap {
        assert_eq!(
            (left.width(), left.height()),
            (right.width(), right.height()),
            "stereo pair must be rectified to equal sizes"
        );
        let (w, h) = (left.width(), left.height());
        let r = self.block_radius as isize;
        // Phase 1: support points on a sparse grid. Each chunk of grid rows
        // emits its candidates in (y, x) scan order; the ascending merge
        // reproduces the serial iteration exactly.
        let grid_ys: Vec<usize> = (1..)
            .map(|i| i * self.grid_step)
            .take_while(|y| y + self.grid_step < h)
            .collect();
        let support: Vec<(usize, usize, f32)> = map_reduce_chunks(
            pool,
            &grid_ys,
            GRID_ROWS_PER_CHUNK,
            |_, ys| {
                let mut rows = Vec::new();
                for &y in ys {
                    let mut x = self.grid_step;
                    while x + self.grid_step < w {
                        if let Some(d) = self.match_block(left, right, x as isize, y as isize, r) {
                            rows.push((x, y, d));
                        }
                        x += self.grid_step;
                    }
                }
                rows
            },
            Vec::new(),
            |mut acc, mut part| {
                acc.append(&mut part);
                acc
            },
        );
        // Phase 2: scanline interpolation between support points. Chunks
        // cover whole rows, so every write stays inside its own chunk.
        let mut data: Vec<f32> = match arena {
            Some(arena) => arena.take(),
            None => Vec::new(),
        };
        data.clear();
        data.resize(w * h, f32::NAN);
        for (x, y, d) in &support {
            data[y * w + x] = *d;
        }
        for_chunks(pool, &mut data, ROWS_PER_CHUNK * w, |_, rows| {
            for row_slice in rows.chunks_mut(w) {
                interpolate_row(row_slice);
            }
        });
        // Phase 3: vertical fill from the nearest valid row above.
        for x in 0..w {
            let mut last_valid: Option<f32> = None;
            for yy in 0..h {
                let v = data[yy * w + x];
                if v.is_nan() {
                    if let Some(lv) = last_valid {
                        data[yy * w + x] = lv;
                    }
                } else {
                    last_valid = Some(v);
                }
            }
        }
        DisparityMap {
            width: w,
            height: h,
            data,
        }
    }

    /// SAD block match of the left block at `(x, y)` against right-image
    /// candidates; returns the disparity if it passes the uniqueness test.
    fn match_block(
        &self,
        left: &GrayImage,
        right: &GrayImage,
        x: isize,
        y: isize,
        r: isize,
    ) -> Option<f32> {
        let (w, h) = (left.width() as isize, left.height() as isize);
        let interior = x - r >= 0 && x + r < w && y - r >= 0 && y + r < h;
        let side = (2 * r + 1) as usize;
        let mut best = (0usize, f32::INFINITY);
        let mut second = f32::INFINITY;
        let update = |d: usize, sad: f32, best: &mut (usize, f32), second: &mut f32| {
            if sad < best.1 {
                *second = best.1;
                *best = (d, sad);
            } else if sad < *second {
                *second = sad;
            }
        };
        let mut d = 0usize;
        if interior {
            // Batch candidate disparities four at a time: four independent
            // SAD accumulator lanes share each left-row load (the same
            // batching pattern as `GrayImage::correlate_run`). Each lane
            // accumulates its |l - r| terms in the exact (dy, dx) order of
            // the scalar loop, and the streaming best/second update still
            // consumes the lanes in ascending disparity order, so the
            // result is bit-identical to the unbatched matcher.
            while d + 3 <= self.max_disparity && (d + 3) as isize <= x - r {
                let mut sads = [0.0f32; 4];
                for dy in -r..=r {
                    let l0 = ((y + dy) * w + x - r) as usize;
                    let lrow = &left.data()[l0..l0 + side];
                    let rbase = l0 - d - 3;
                    let rrow = &right.data()[rbase..rbase + side + 3];
                    for (i, l) in lrow.iter().enumerate() {
                        for (lane, s) in sads.iter_mut().enumerate() {
                            *s += (l - rrow[i + 3 - lane]).abs();
                        }
                    }
                }
                for (lane, sad) in sads.into_iter().enumerate() {
                    update(d + lane, sad, &mut best, &mut second);
                }
                d += 4;
            }
        }
        // Scalar tail: the remaining disparities plus every border block.
        while d <= self.max_disparity {
            let mut sad = 0.0f32;
            if interior && d as isize <= x - r {
                // Both blocks are fully inside the pair: accumulate the
                // same (dy, dx) order straight from the backing slices.
                for dy in -r..=r {
                    let l0 = ((y + dy) * w + x - r) as usize;
                    let lrow = &left.data()[l0..l0 + side];
                    let rrow = &right.data()[l0 - d..l0 - d + side];
                    for (l, rr) in lrow.iter().zip(rrow) {
                        sad += (l - rr).abs();
                    }
                }
            } else {
                for dy in -r..=r {
                    for dx in -r..=r {
                        let l = left.get(x + dx, y + dy);
                        let rr = right.get(x + dx - d as isize, y + dy);
                        sad += (l - rr).abs();
                    }
                }
            }
            update(d, sad, &mut best, &mut second);
            d += 1;
        }
        // Strict inequality with a small margin rejects texture-free ties
        // (a flat block matches every disparity equally well).
        if best.1.is_finite() && best.1 + 1e-6 < self.uniqueness * second {
            Some(best.0 as f32)
        } else {
            None
        }
    }
}

fn interpolate_row(row: &mut [f32]) {
    let n = row.len();
    let mut i = 0;
    let mut prev: Option<(usize, f32)> = None;
    while i < n {
        if !row[i].is_nan() {
            if let Some((pi, pv)) = prev {
                // Fill the gap (pi, i) linearly.
                let span = (i - pi) as f32;
                for j in pi + 1..i {
                    let t = (j - pi) as f32 / span;
                    row[j] = pv + (row[i] - pv) * t;
                }
            }
            prev = Some((i, row[i]));
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::render_scene;
    use sov_world::scenario::Scenario;

    #[test]
    fn disparity_for_depth_inverts_rig_triangulation() {
        let rig = StereoRig::perceptin_default();
        let fx = 1662.0; // hd1080 focal length used by the default rig
        for depth in [1.0, 5.0, 12.0, 40.0] {
            let d = disparity_for_depth(fx, rig.baseline_m(), depth).unwrap();
            let back = rig.depth_from_disparity(d).unwrap();
            assert!((back - depth).abs() < 1e-9, "{depth} -> {d} -> {back}");
        }
        assert!(disparity_for_depth(fx, rig.baseline_m(), 0.0).is_none());
        assert!(disparity_for_depth(fx, rig.baseline_m(), -3.0).is_none());
    }

    #[test]
    fn feature_depths_accurate_when_synced() {
        let world = Scenario::fishers_indiana(1).world;
        let rig = StereoRig::perceptin_default();
        let mut rng = SovRng::seed_from_u64(1);
        let pose = world.route.pose_at(&world.map, 20.0).unwrap();
        let (l, r) = rig.capture_pair(&pose, &world, SimTime::ZERO, &mut rng);
        let depths = feature_depth_map(&rig, &l, &r);
        assert!(
            depths.len() > 5,
            "need matched features, got {}",
            depths.len()
        );
        // With sub-pixel noise on a 12 cm baseline, nearby features should
        // be well under 1 m of error on average.
        let close: Vec<DepthEstimate> = depths
            .into_iter()
            .filter(|d| d.true_depth_m < 15.0)
            .collect();
        assert!(!close.is_empty());
        let err = mean_abs_error_m(&close);
        assert!(err < 1.0, "mean close-range error {err} m");
    }

    #[test]
    fn sync_offset_inflates_depth_error() {
        let world = Scenario::fishers_indiana(1).world;
        let rig = StereoRig::perceptin_default();
        let mut rng = SovRng::seed_from_u64(2);
        // Vehicle turning: lateral motion between left and right captures.
        let pose_of =
            |t: SimTime| Pose2::new(10.0, 0.0, 0.0).step_unicycle(5.6, 0.35, t.as_secs_f64());
        let synced = depth_with_sync_offset(
            &rig,
            &world,
            pose_of,
            SimTime::ZERO,
            SimDuration::ZERO,
            &mut rng,
        );
        let unsynced = depth_with_sync_offset(
            &rig,
            &world,
            pose_of,
            SimTime::ZERO,
            SimDuration::from_millis(30),
            &mut rng,
        );
        let e_sync = mean_abs_error_m(&synced);
        let e_unsync = mean_abs_error_m(&unsynced);
        assert!(
            e_unsync > 3.0 * e_sync.max(0.05),
            "expected large degradation: {e_sync} vs {e_unsync}"
        );
    }

    #[test]
    fn dense_matcher_recovers_uniform_shift() {
        let mut rng = SovRng::seed_from_u64(3);
        // Textured scene of random blobs.
        let blobs: Vec<(f64, f64, f64, f64)> = (0..40)
            .map(|_| {
                (
                    rng.uniform(12.0, 116.0),
                    rng.uniform(8.0, 56.0),
                    rng.uniform(1.0, 2.5),
                    rng.uniform(0.4, 0.9),
                )
            })
            .collect();
        let mut bg_rng = SovRng::seed_from_u64(4);
        let left = render_scene(128, 64, &blobs, 0.02, &mut bg_rng);
        // Right image: every blob shifted left by 6 px (disparity 6).
        let shifted: Vec<(f64, f64, f64, f64)> = blobs
            .iter()
            .map(|&(x, y, r, i)| (x - 6.0, y, r, i))
            .collect();
        let mut bg_rng2 = SovRng::seed_from_u64(4);
        let right = render_scene(128, 64, &shifted, 0.02, &mut bg_rng2);
        let matcher = DenseStereoMatcher {
            max_disparity: 16,
            ..DenseStereoMatcher::default()
        };
        let disp = matcher.compute(&left, &right);
        assert!(disp.density() > 0.5, "density {}", disp.density());
        // Median disparity should be 6.
        let mut vals: Vec<f32> = Vec::new();
        for y in 0..disp.height() {
            for x in 0..disp.width() {
                if let Some(v) = disp.get(x, y) {
                    vals.push(v);
                }
            }
        }
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = vals[vals.len() / 2];
        assert!((median - 6.0).abs() <= 1.0, "median disparity {median}");
    }

    #[test]
    fn interpolate_row_linear_fill() {
        let mut row = vec![f32::NAN, 2.0, f32::NAN, f32::NAN, 8.0, f32::NAN];
        interpolate_row(&mut row);
        assert!((row[2] - 4.0).abs() < 1e-6);
        assert!((row[3] - 6.0).abs() < 1e-6);
        assert!(row[0].is_nan(), "no extrapolation before first support");
        assert!(row[5].is_nan(), "no extrapolation after last support");
    }

    #[test]
    fn pooled_dense_matcher_is_bit_identical() {
        let mut rng = SovRng::seed_from_u64(5);
        let blobs: Vec<(f64, f64, f64, f64)> = (0..30)
            .map(|_| {
                (
                    rng.uniform(10.0, 86.0),
                    rng.uniform(6.0, 42.0),
                    rng.uniform(1.0, 2.5),
                    rng.uniform(0.4, 0.9),
                )
            })
            .collect();
        let mut bg = SovRng::seed_from_u64(6);
        let left = render_scene(96, 48, &blobs, 0.02, &mut bg);
        let shifted: Vec<(f64, f64, f64, f64)> = blobs
            .iter()
            .map(|&(x, y, r, i)| (x - 4.0, y, r, i))
            .collect();
        let mut bg2 = SovRng::seed_from_u64(6);
        let right = render_scene(96, 48, &shifted, 0.02, &mut bg2);
        let matcher = DenseStereoMatcher {
            max_disparity: 12,
            ..DenseStereoMatcher::default()
        };
        let serial = matcher.compute(&left, &right);
        // NaN (invalid disparity) compares unequal to itself, so equality
        // must be checked on the raw bits.
        let bits = |m: &DisparityMap| -> Vec<u32> { m.data.iter().map(|v| v.to_bits()).collect() };
        let serial_bits = bits(&serial);
        let arena = FrameArena::new();
        for lanes in [1, 2, 4, 8] {
            let pool = WorkerPool::new(lanes);
            let pooled = matcher.compute_with(&left, &right, Some(&pool), Some(&arena));
            assert_eq!(bits(&pooled), serial_bits, "lanes = {lanes}");
            arena.recycle(pooled.into_raw());
        }
        // After the first iteration warmed the arena, the disparity plane
        // is reused rather than reallocated.
        arena.reset_stats();
        let again = matcher.compute_with(&left, &right, None, Some(&arena));
        assert_eq!(arena.stats().allocations, 0, "plane must be reused");
        arena.recycle(again.into_raw());
    }

    #[test]
    fn batched_interior_sad_matches_scalar_reference() {
        // A scalar re-statement of the original per-disparity SAD loop
        // (the border path generalizes it), evaluated for every candidate.
        fn reference(
            m: &DenseStereoMatcher,
            left: &GrayImage,
            right: &GrayImage,
            x: isize,
            y: isize,
            r: isize,
        ) -> Option<f32> {
            let mut best = (0usize, f32::INFINITY);
            let mut second = f32::INFINITY;
            for d in 0..=m.max_disparity {
                let mut sad = 0.0f32;
                for dy in -r..=r {
                    for dx in -r..=r {
                        let l = left.get(x + dx, y + dy);
                        let rr = right.get(x + dx - d as isize, y + dy);
                        sad += (l - rr).abs();
                    }
                }
                if sad < best.1 {
                    second = best.1;
                    best = (d, sad);
                } else if sad < second {
                    second = sad;
                }
            }
            if best.1.is_finite() && best.1 + 1e-6 < m.uniqueness * second {
                Some(best.0 as f32)
            } else {
                None
            }
        }
        let mut rng = SovRng::seed_from_u64(9);
        let blobs: Vec<(f64, f64, f64, f64)> = (0..40)
            .map(|_| {
                (
                    rng.uniform(6.0, 90.0),
                    rng.uniform(4.0, 44.0),
                    rng.uniform(1.0, 2.5),
                    rng.uniform(0.4, 0.9),
                )
            })
            .collect();
        let mut bg = SovRng::seed_from_u64(10);
        let left = render_scene(96, 48, &blobs, 0.02, &mut bg);
        let shifted: Vec<(f64, f64, f64, f64)> = blobs
            .iter()
            .map(|&(x, y, r, i)| (x - 5.0, y, r, i))
            .collect();
        let mut bg2 = SovRng::seed_from_u64(10);
        let right = render_scene(96, 48, &shifted, 0.02, &mut bg2);
        let matcher = DenseStereoMatcher {
            max_disparity: 21, // not a multiple of 4: exercises the tail
            ..DenseStereoMatcher::default()
        };
        let r = matcher.block_radius as isize;
        // Deep interior (all-batched), partially batched (x - r limits the
        // lanes), and border blocks must all match the scalar reference.
        for (x, y) in [(60, 24), (30, 10), (12, 20), (7, 5), (2, 2), (95, 47)] {
            assert_eq!(
                matcher.match_block(&left, &right, x, y, r),
                reference(&matcher, &left, &right, x, y, r),
                "block at ({x}, {y})"
            );
        }
    }

    #[test]
    fn disparity_map_accessors() {
        let matcher = DenseStereoMatcher::default();
        let img = GrayImage::new(32, 16);
        let disp = matcher.compute(&img, &img);
        assert_eq!(disp.width(), 32);
        assert_eq!(disp.height(), 16);
        // Flat images have no unique matches anywhere.
        assert!(disp.density() < 0.2);
    }

    #[test]
    fn empty_estimates_have_zero_error() {
        assert_eq!(mean_abs_error_m(&[]), 0.0);
    }
}
