//! Deterministic inter-frame software pipelining: overlap sensing,
//! perception, and planning across *successive frames*.
//!
//! The paper's Fig. 5 analysis serializes sensing → perception → planning
//! on each frame's critical path; [`FramePipeline`] keeps that per-frame
//! latency (Eq. 1) untouched while lifting *throughput* toward the
//! reciprocal of the slowest stage: while frame `N` is in planning, frame
//! `N + 1` is in perception and frame `N + 2` in sensing, each on a
//! dedicated lane of the [`WorkerPool`](crate::pool::WorkerPool) connected
//! by bounded SPSC rings ([`crate::queue`]).
//!
//! # Determinism
//!
//! Pipelining changes only *when* (in wall-clock time) each frame's stages
//! execute — never their inputs:
//!
//! * Every ring is FIFO, so each stage processes frames `0, 1, 2, …` in
//!   exactly serial order; stateful stage closures therefore observe the
//!   serial state sequence.
//! * `sense(k)` and `perceive(k)` depend only on the frame index `k` (plus
//!   capacity-only scratch, below); `plan(k)` additionally sees the
//!   *committed* output of frame `k − 1` — and the commit stage runs on
//!   the calling thread in frame order, so that feedback edge is the
//!   serial one by construction.
//!
//! The dataflow graph is thus identical for every pipeline depth and
//! worker count, and frame outputs are **byte-identical** to the serial
//! schedule (depth 1). The proptests in this module and the drive-level
//! tests in `sov-core` assert exactly that.
//!
//! # Allocation discipline
//!
//! Each lane owns a private [`FrameArena`] and every stage product
//! circulates back to its producer over a return ring: the
//! [`StageCtx::recycled`] value handed to `sense`/`perceive` is the
//! carcass of an earlier frame's product, to be overwritten in place. At
//! most `depth + 2` products per stage ever exist, so the steady state
//! allocates nothing. The contract mirrors [`FrameArena`]: recycled values
//! are **capacity-only scratch** — their contents must never influence a
//! stage's output (the depth-1 schedule hands back different carcasses
//! than depth 4, and outputs must still match bit for bit).
//!
//! # Back-pressure and drain
//!
//! Rings are bounded by the configured depth, so a slow stage stalls its
//! producer rather than queueing unboundedly. When the commit stage
//! returns [`FrameControl::Drain`] (e.g. the health monitor left
//! `Nominal`), the sensing lane stops admitting new frames, every frame
//! already in flight commits **in order**, and the remaining frames run
//! serially on the calling thread — degraded operation falls back to the
//! serial schedule instead of reordering frames.

use crate::arena::FrameArena;
use crate::ledger::FrameAttribution;
use crate::pool::WorkerPool;
use crate::queue::ring;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Per-frame scratch handed to a pipeline stage.
///
/// Both fields are capacity-only: the stage must produce the same output
/// whether `recycled` is `None` (warm-up, serial fallback) or holds any
/// earlier frame's carcass, and whatever the arena hands out.
pub struct StageCtx<'a, T> {
    /// The stage lane's private arena for auxiliary scratch buffers.
    pub arena: &'a FrameArena,
    /// An earlier frame's product from this same stage, returned for
    /// in-place reuse; `None` during warm-up and after a drain.
    pub recycled: Option<T>,
}

/// Verdict returned by the commit stage for each frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameControl {
    /// Keep the pipeline full.
    Continue,
    /// Stop admitting new frames, commit everything in flight in order,
    /// then run the remaining frames serially (degradation fallback).
    Drain,
}

/// Telemetry from one [`FramePipeline::run`].
#[derive(Debug)]
pub struct PipelineRun {
    /// Frames committed (always equals the requested frame count).
    pub frames: u64,
    /// Frames that flowed through the concurrent (pipelined) path; the
    /// rest ran on the serial fallback.
    pub pipelined_frames: u64,
    /// Whether the commit stage ever requested a drain.
    pub drained: bool,
    /// Wall-clock time for the whole run.
    pub wall: Duration,
    /// Per-frame sense-start → commit latency, in frame order. Pipelining
    /// trades this *up* for throughput — report p99, not just p50 (COLA's
    /// tail-latency caveat).
    pub latencies: Vec<Duration>,
    /// Accumulated compute time per stage (sense, perceive, plan+commit).
    /// Busy time only — ring waits are excluded — so `stage_busy[i] / wall`
    /// is stage `i`'s occupancy: the fraction of the run it actually
    /// worked. The bottleneck stage's occupancy should approach 1 once the
    /// pipeline is full (Fig. 5's throughput argument).
    pub stage_busy: [Duration; 3],
    /// Per-frame latency attribution, in frame order: per-stage compute
    /// plus ring-queue wait and commit-thread stall, summing exactly to
    /// each frame's measured sense-start → commit-end span (the COLA
    /// accounting — see [`FrameAttribution`]). Serial-path frames have
    /// zero queue and stall by construction.
    pub attribution: Vec<FrameAttribution>,
    /// `true` when a depth > 1 was requested but the run executed on the
    /// bit-identical serial fallback (no pool, or fewer than three
    /// lanes) — piped mode without workers must not pay ring overhead,
    /// and benches must not present fallback numbers as pipelined ones.
    pub serial_fallback: bool,
}

impl PipelineRun {
    /// Committed frames per wall-clock second.
    #[must_use]
    pub fn throughput_fps(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.frames as f64 / secs
    }

    /// Occupancy of `stage` (0 = sense, 1 = perceive, 2 = plan+commit):
    /// its busy time over the run's wall time, `0.0` for an empty run.
    #[must_use]
    pub fn occupancy(&self, stage: usize) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            return 0.0;
        }
        self.stage_busy[stage].as_secs_f64() / wall
    }

    /// The `p`-th percentile (0.0–1.0, nearest-rank) of per-frame latency.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let rank =
            ((p.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

/// A deterministic three-stage inter-frame pipeline executor.
///
/// Depth 1 *is* the serial schedule; any depth with fewer than three pool
/// lanes falls back to it. Both paths execute the identical closure
/// sequence per frame, so outputs match bit for bit (module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FramePipeline {
    depth: usize,
}

impl FramePipeline {
    /// Creates a pipeline executor with the given depth (ring capacity
    /// between adjacent stages).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0`.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "pipeline depth must be at least 1");
        Self { depth }
    }

    /// The configured depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Runs `frames` frames through sense → perceive → plan → commit.
    ///
    /// * `sense(k, ctx)` produces frame `k`'s sensor product from the
    ///   frame index alone (sensing lane).
    /// * `perceive(k, &s, ctx)` consumes it (perception lane).
    /// * `plan(k, &p, prev)` sees the perception product and the
    ///   *committed* output of frame `k − 1` (calling thread).
    /// * `commit(k, &o)` publishes the output and steers the pipeline
    ///   (calling thread — this is the sequencing stage).
    ///
    /// Requires `pool` with ≥ 3 lanes and depth > 1 to actually overlap;
    /// otherwise every frame runs on the bit-identical serial fallback.
    pub fn run<S, P, O, FS, FP, FL, FC>(
        &self,
        pool: Option<&WorkerPool>,
        frames: u64,
        mut sense: FS,
        mut perceive: FP,
        mut plan: FL,
        mut commit: FC,
    ) -> PipelineRun
    where
        S: Send,
        P: Send,
        FS: FnMut(u64, StageCtx<'_, S>) -> S + Send,
        FP: FnMut(u64, &S, StageCtx<'_, P>) -> P + Send,
        FL: FnMut(u64, &P, Option<&O>) -> O,
        FC: FnMut(u64, &O) -> FrameControl,
    {
        let started = Instant::now();
        let depth = self.depth;
        let pipelined = depth > 1 && frames > 0 && pool.is_some_and(|p| p.lanes() >= 3);
        let mut latencies: Vec<Duration> = Vec::with_capacity(frames as usize);
        let mut attribution: Vec<FrameAttribution> = Vec::with_capacity(frames as usize);
        let mut committed: u64 = 0;
        let mut pipelined_frames: u64 = 0;
        let mut drained = false;
        let mut prev: Option<O> = None;
        // Per-stage busy accumulators. The lane closures are moved to
        // worker threads, so they deposit their totals through atomics;
        // telemetry only — never read back into any stage input.
        let busy_ns = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

        if pipelined {
            let pool = pool.expect("pipelined implies a pool");
            let stop = AtomicBool::new(false);
            // Forward rings bound the in-flight depth (back-pressure);
            // return rings circulate product carcasses back to their
            // producer. At most `depth + 2` products per stage ever exist,
            // so capacity `depth + 2` means return sends never block.
            // Forward payloads carry the frame's stage stamps so the
            // sequencing stage can attribute the full span: the sensing
            // ring adds (sense-start, sense-end); the perception ring
            // extends that to [a0, a1, b0, b1] (perceive-start/-end).
            let (s_tx, s_rx) = ring::<(u64, S, Instant, Instant)>(depth);
            let (s_ret_tx, s_ret_rx) = ring::<S>(depth + 2);
            let (p_tx, p_rx) = ring::<(u64, P, [Instant; 4])>(depth);
            let (p_ret_tx, p_ret_rx) = ring::<P>(depth + 2);
            let sense = &mut sense;
            let perceive = &mut perceive;
            let stop_ref = &stop;
            let busy_ref = &busy_ns;

            let (c, d, p_out) = pool.run_lanes(
                vec![
                    // Sensing lane: admits frames in order until told to
                    // drain. After priming `depth + 2` products it blocks
                    // on the return ring — the carcass of frame
                    // `k - depth - 2` is guaranteed to arrive because the
                    // downstream stages always make progress.
                    Box::new(move || {
                        let arena = FrameArena::new();
                        for k in 0..frames {
                            if stop_ref.load(Ordering::Acquire) {
                                break;
                            }
                            let recycled = if k >= depth as u64 + 2 {
                                match s_ret_rx.recv() {
                                    Some(s) => Some(s),
                                    None => break, // peer lane gone
                                }
                            } else {
                                s_ret_rx.try_recv()
                            };
                            let a0 = Instant::now();
                            let s = sense(
                                k,
                                StageCtx {
                                    arena: &arena,
                                    recycled,
                                },
                            );
                            let a1 = Instant::now();
                            busy_ref[0].fetch_add((a1 - a0).as_nanos() as u64, Ordering::Relaxed);
                            if s_tx.send((k, s, a0, a1)).is_err() {
                                break;
                            }
                        }
                    }),
                    // Perception lane: strictly FIFO over the sensing ring.
                    Box::new(move || {
                        let arena = FrameArena::new();
                        let mut consumed: u64 = 0;
                        while let Some((k, s, a0, a1)) = s_rx.recv() {
                            let recycled = if consumed >= depth as u64 + 2 {
                                match p_ret_rx.recv() {
                                    Some(p) => Some(p),
                                    None => break,
                                }
                            } else {
                                p_ret_rx.try_recv()
                            };
                            let b0 = Instant::now();
                            let p = perceive(
                                k,
                                &s,
                                StageCtx {
                                    arena: &arena,
                                    recycled,
                                },
                            );
                            let b1 = Instant::now();
                            busy_ref[1].fetch_add((b1 - b0).as_nanos() as u64, Ordering::Relaxed);
                            let _ = s_ret_tx.send(s);
                            if p_tx.send((k, p, [a0, a1, b0, b1])).is_err() {
                                break;
                            }
                            consumed += 1;
                        }
                    }),
                ],
                // Plan + commit on the calling thread: the sequencing
                // stage. Frames commit in FIFO (= serial) order, and each
                // plan sees the committed output of the previous frame.
                || {
                    let mut committed: u64 = 0;
                    let mut drained = false;
                    let mut prev: Option<O> = None;
                    loop {
                        // Pre-recv stamp: time spent blocked here past the
                        // frame's perceive-end is attributed as stall, the
                        // earlier ring residency as queue wait.
                        let t_r = Instant::now();
                        let Some((k, p, st)) = p_rx.recv() else { break };
                        let c0 = Instant::now();
                        let o = plan(k, &p, prev.as_ref());
                        let _ = p_ret_tx.send(p);
                        latencies.push(st[0].elapsed());
                        let verdict = commit(k, &o);
                        let c1 = Instant::now();
                        busy_ref[2].fetch_add((c1 - c0).as_nanos() as u64, Ordering::Relaxed);
                        attribution.push(FrameAttribution::from_stamps(
                            k, st[0], st[1], st[2], st[3], t_r, c0, c1,
                        ));
                        prev = Some(o);
                        committed += 1;
                        if verdict == FrameControl::Drain && !drained {
                            drained = true;
                            stop.store(true, Ordering::Release);
                        }
                    }
                    (committed, drained, prev)
                },
            );
            committed = c;
            pipelined_frames = c;
            drained = d;
            prev = p_out;
        }

        // Serial path: all frames when not pipelined, or the post-drain
        // tail. Identical closure sequence per frame → bit-identical.
        let s_arena = FrameArena::new();
        let p_arena = FrameArena::new();
        let mut s_prev: Option<S> = None;
        let mut p_prev: Option<P> = None;
        for k in committed..frames {
            let t0 = Instant::now();
            let s = sense(
                k,
                StageCtx {
                    arena: &s_arena,
                    recycled: s_prev.take(),
                },
            );
            let t1 = Instant::now();
            busy_ns[0].fetch_add((t1 - t0).as_nanos() as u64, Ordering::Relaxed);
            let p = perceive(
                k,
                &s,
                StageCtx {
                    arena: &p_arena,
                    recycled: p_prev.take(),
                },
            );
            let t2 = Instant::now();
            busy_ns[1].fetch_add((t2 - t1).as_nanos() as u64, Ordering::Relaxed);
            s_prev = Some(s);
            let o = plan(k, &p, prev.as_ref());
            p_prev = Some(p);
            latencies.push(t0.elapsed());
            if commit(k, &o) == FrameControl::Drain {
                drained = true;
            }
            let t3 = Instant::now();
            busy_ns[2].fetch_add((t3 - t2).as_nanos() as u64, Ordering::Relaxed);
            // Degenerate stamps: stages abut, so queue and stall collapse
            // to zero and the components sum to the span exactly.
            attribution.push(FrameAttribution::from_stamps(k, t0, t1, t1, t2, t2, t2, t3));
            prev = Some(o);
        }

        // The fallback loop above always finishes the remaining
        // `committed..frames` range, so every requested frame committed.
        PipelineRun {
            frames,
            pipelined_frames,
            drained,
            wall: started.elapsed(),
            latencies,
            stage_busy: busy_ns.map(|ns| Duration::from_nanos(ns.load(Ordering::Relaxed))),
            attribution,
            serial_fallback: depth > 1 && frames > 0 && !pipelined,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Deterministic workload exercising all four stages: `sense` fills a
    /// buffer from `k`, `perceive` folds it, `plan` mixes in the previous
    /// committed output (the feedback edge), `commit` records checksums.
    fn checksums(pool: Option<&WorkerPool>, depth: usize, frames: u64) -> (Vec<u64>, PipelineRun) {
        let mut out = Vec::new();
        let run = FramePipeline::new(depth).run(
            pool,
            frames,
            |k, ctx: StageCtx<'_, Vec<u64>>| {
                let mut buf = ctx.recycled.unwrap_or_else(|| ctx.arena.take());
                buf.clear();
                buf.extend((0..64).map(|i| (k + 1).wrapping_mul(0x9E37_79B9).rotate_left(i)));
                buf
            },
            |k, s, ctx: StageCtx<'_, Vec<u64>>| {
                let mut buf = ctx.recycled.unwrap_or_else(|| ctx.arena.take());
                buf.clear();
                buf.push(
                    s.iter()
                        .fold(k, |h, v| (h ^ v).wrapping_mul(0x0100_0000_01b3)),
                );
                buf
            },
            |k, p, prev: Option<&u64>| p[0] ^ prev.copied().unwrap_or(k),
            |_, o| {
                out.push(*o);
                FrameControl::Continue
            },
        );
        (out, run)
    }

    #[test]
    fn depth_one_is_the_serial_schedule() {
        let pool = WorkerPool::new(4);
        let (serial, run) = checksums(None, 1, 40);
        let (d1, run1) = checksums(Some(&pool), 1, 40);
        assert_eq!(serial, d1);
        assert_eq!(run.pipelined_frames, 0);
        assert_eq!(run1.pipelined_frames, 0, "depth 1 never spins up lanes");
    }

    #[test]
    fn outputs_are_identical_across_depths_and_lane_counts() {
        let (reference, _) = checksums(None, 1, 60);
        for lanes in [1, 2, 3, 4, 8] {
            let pool = WorkerPool::new(lanes);
            for depth in 1..=4 {
                let (out, run) = checksums(Some(&pool), depth, 60);
                assert_eq!(out, reference, "depth {depth}, lanes {lanes}");
                assert_eq!(run.frames, 60);
                assert_eq!(run.latencies.len(), 60);
                if depth > 1 && lanes >= 3 {
                    assert_eq!(run.pipelined_frames, 60, "depth {depth}, lanes {lanes}");
                }
            }
        }
    }

    #[test]
    fn too_few_lanes_falls_back_to_serial() {
        let pool = WorkerPool::new(2);
        let (out, run) = checksums(Some(&pool), 4, 20);
        let (reference, reference_run) = checksums(None, 1, 20);
        assert_eq!(out, reference);
        assert_eq!(run.pipelined_frames, 0, "2 lanes cannot host 3 stages");
        assert!(run.serial_fallback, "depth 4 on 2 lanes is a fallback run");
        assert!(!reference_run.serial_fallback, "depth 1 is not a fallback");
    }

    #[test]
    fn attribution_components_sum_to_span_on_both_paths() {
        let pool = WorkerPool::new(4);
        for (pool_opt, depth) in [(None, 1usize), (Some(&pool), 3)] {
            let (_, run) = checksums(pool_opt, depth, 40);
            assert_eq!(run.attribution.len(), 40, "one attribution per frame");
            for (i, a) in run.attribution.iter().enumerate() {
                assert_eq!(a.frame, i as u64, "frame order preserved");
                let tolerance = if pool_opt.is_some() { 1_000 } else { 0 };
                assert!(
                    a.residual_ns() <= tolerance,
                    "frame {i} (depth {depth}): residual {} ns exceeds {tolerance}",
                    a.residual_ns()
                );
            }
            if pool_opt.is_none() {
                for a in &run.attribution {
                    assert_eq!(a.queue_ns, 0, "serial frames never queue");
                    assert_eq!(a.stall_ns, 0, "serial frames never stall");
                }
            }
        }
    }

    #[test]
    fn drain_commits_in_flight_frames_in_order_then_serializes() {
        let pool = WorkerPool::new(3);
        let (reference, _) = checksums(None, 1, 50);
        for depth in 2..=4 {
            let mut out = Vec::new();
            let run = FramePipeline::new(depth).run(
                Some(&pool),
                50,
                |k, _ctx: StageCtx<'_, u64>| k.wrapping_mul(0x9E37_79B9),
                |k, s, _ctx: StageCtx<'_, u64>| (k ^ s).wrapping_mul(0x0100_0000_01b3),
                |k, p, prev: Option<&u64>| p ^ prev.copied().unwrap_or(k),
                |k, o| {
                    out.push(*o);
                    if k == 7 {
                        FrameControl::Drain
                    } else {
                        FrameControl::Continue
                    }
                },
            );
            // Same stage closures as `checksums` but on u64 products; the
            // reference uses Vec products, so recompute a u64 reference.
            let mut expect = Vec::new();
            let mut prev: Option<u64> = None;
            for k in 0..50u64 {
                let s = k.wrapping_mul(0x9E37_79B9);
                let p = (k ^ s).wrapping_mul(0x0100_0000_01b3);
                let o = p ^ prev.unwrap_or(k);
                expect.push(o);
                prev = Some(o);
            }
            assert_eq!(out, expect, "depth {depth}: drain must not reorder");
            assert!(run.drained);
            assert_eq!(run.frames, 50, "every frame still commits");
            assert!(
                run.pipelined_frames >= 8 && run.pipelined_frames <= 50,
                "in-flight frames commit through the pipeline (got {})",
                run.pipelined_frames
            );
            let _ = reference; // silence when depths loop changes
        }
    }

    #[test]
    fn back_pressure_bounds_the_in_flight_frames() {
        let pool = WorkerPool::new(3);
        for depth in [2usize, 3] {
            let sensed = AtomicU64::new(0);
            let committed = AtomicU64::new(0);
            let max_ahead = AtomicU64::new(0);
            FramePipeline::new(depth).run(
                Some(&pool),
                80,
                |k, _ctx: StageCtx<'_, u64>| {
                    let ahead = sensed.fetch_add(1, Ordering::SeqCst) + 1
                        - committed.load(Ordering::SeqCst);
                    max_ahead.fetch_max(ahead, Ordering::SeqCst);
                    k
                },
                |_, s, _ctx: StageCtx<'_, u64>| *s,
                |_, p, _| *p,
                |_, _| {
                    committed.fetch_add(1, Ordering::SeqCst);
                    FrameControl::Continue
                },
            );
            let bound = 2 * depth as u64 + 3;
            assert!(
                max_ahead.load(Ordering::SeqCst) <= bound,
                "depth {depth}: sensing ran {} frames ahead (bound {bound})",
                max_ahead.load(Ordering::SeqCst)
            );
        }
    }

    #[test]
    fn steady_state_recycles_products() {
        // After warm-up every sense/perceive call must receive a recycled
        // carcass on the serial path, and the pipelined path must reuse
        // buffer capacity (no per-frame growth).
        let mut misses = 0u64;
        FramePipeline::new(1).run(
            None,
            20,
            |_, ctx: StageCtx<'_, Vec<u64>>| {
                if ctx.recycled.is_none() {
                    misses += 1;
                }
                let mut buf = ctx.recycled.unwrap_or_default();
                buf.clear();
                buf.resize(32, 7);
                buf
            },
            |_, _, ctx: StageCtx<'_, Vec<u64>>| ctx.recycled.unwrap_or_default(),
            |_, _, _: Option<&u64>| 0,
            |_, _| FrameControl::Continue,
        );
        assert_eq!(
            misses, 1,
            "only the first frame allocates on the serial path"
        );
    }

    #[test]
    fn stage_busy_accumulates_on_both_paths() {
        let pool = WorkerPool::new(3);
        for pool_opt in [None, Some(&pool)] {
            let (_, run) = checksums(pool_opt, 3, 40);
            for stage in 0..3 {
                assert!(
                    run.stage_busy[stage] > Duration::ZERO,
                    "stage {stage} busy time recorded (pooled: {})",
                    pool_opt.is_some()
                );
                assert!(run.occupancy(stage) > 0.0);
                assert!(
                    run.stage_busy[stage] <= run.wall.max(Duration::from_nanos(1)) * 2,
                    "busy cannot wildly exceed wall for a single lane"
                );
            }
        }
    }

    #[test]
    fn zero_frames_is_a_no_op() {
        let pool = WorkerPool::new(4);
        let run = FramePipeline::new(3).run(
            Some(&pool),
            0,
            |_, _ctx: StageCtx<'_, u64>| unreachable!("no frames to sense"),
            |_, _, _ctx: StageCtx<'_, u64>| unreachable!(),
            |_, _, _: Option<&u64>| unreachable!(),
            |_, _: &u64| unreachable!(),
        );
        assert_eq!(run.frames, 0);
        assert!(run.latencies.is_empty());
    }

    #[test]
    #[should_panic(expected = "depth must be at least 1")]
    fn zero_depth_rejected() {
        let _ = FramePipeline::new(0);
    }
}
