//! Euclidean clustering — the **segmentation** workload of Fig. 4.
//!
//! PCL-style region growing: points within `cluster_tolerance` of a cluster
//! member join the cluster, discovered through repeated kd-tree radius
//! queries — another irregular-access kernel.

use crate::cloud::PointCloud;
use crate::kdtree::{KdTree, Touch};
use sov_runtime::pool::{map_reduce_chunks, WorkerPool};

/// Points per parallel chunk in the adjacency precompute (fixed so chunk
/// boundaries never depend on worker count).
const POINTS_PER_CHUNK: usize = 64;

/// Segmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentationConfig {
    /// Neighbor distance for region growing (m).
    pub cluster_tolerance_m: f64,
    /// Minimum points for a cluster to be reported.
    pub min_cluster_size: usize,
    /// Maximum points per cluster (larger clusters are split by the cap).
    pub max_cluster_size: usize,
}

impl Default for SegmentationConfig {
    fn default() -> Self {
        Self {
            cluster_tolerance_m: 0.7,
            min_cluster_size: 10,
            max_cluster_size: 100_000,
        }
    }
}

/// Euclidean cluster extraction. Returns clusters as lists of point
/// indices, largest first.
#[must_use]
pub fn euclidean_clusters(
    cloud: &PointCloud,
    tree: &KdTree,
    config: &SegmentationConfig,
) -> Vec<Vec<usize>> {
    euclidean_clusters_traced(cloud, tree, config, &mut |_| {})
}

/// [`euclidean_clusters`] with optional intra-frame parallelism.
///
/// The kd-tree radius queries — the dominant cost — are hoisted into a
/// parallel per-point adjacency precompute (the tree is read-only, and
/// each point's neighbor list is independent of every other's); the
/// region growing itself then runs serially over the precomputed lists.
/// Each chunk reuses one query buffer and appends into a flat CSR-style
/// neighbor array, so the precompute allocates per chunk, not per point.
/// Growth consumes exactly the lists the serial version would query, so
/// the clusters are bit-identical for any worker count.
#[must_use]
pub fn euclidean_clusters_with(
    cloud: &PointCloud,
    tree: &KdTree,
    config: &SegmentationConfig,
    pool: Option<&WorkerPool>,
) -> Vec<Vec<usize>> {
    let n = cloud.len();
    let (flat, counts) = map_reduce_chunks(
        pool,
        cloud.points(),
        POINTS_PER_CHUNK,
        |_, pts| {
            let mut flat = Vec::new();
            let mut counts = Vec::with_capacity(pts.len());
            let mut buf = Vec::new();
            for p in pts {
                tree.radius_search_into(p, config.cluster_tolerance_m, &mut buf);
                counts.push(buf.len());
                flat.extend_from_slice(&buf);
            }
            (flat, counts)
        },
        (Vec::new(), Vec::new()),
        |(mut flat, mut counts): (Vec<usize>, Vec<usize>), (part_flat, part_counts)| {
            flat.extend_from_slice(&part_flat);
            counts.extend_from_slice(&part_counts);
            (flat, counts)
        },
    );
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0usize);
    for &c in &counts {
        offsets.push(offsets.last().expect("non-empty") + c);
    }
    let mut visited = vec![false; n];
    let mut clusters = Vec::new();
    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        let mut cluster = vec![seed];
        let mut frontier = vec![seed];
        while let Some(idx) = frontier.pop() {
            if cluster.len() >= config.max_cluster_size {
                break;
            }
            for &nb in &flat[offsets[idx]..offsets[idx + 1]] {
                if cluster.len() >= config.max_cluster_size {
                    break;
                }
                if !visited[nb] {
                    visited[nb] = true;
                    cluster.push(nb);
                    frontier.push(nb);
                }
            }
        }
        if cluster.len() >= config.min_cluster_size {
            clusters.push(cluster);
        }
    }
    clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
    clusters
}

/// Clustering with a memory-trace callback.
pub fn euclidean_clusters_traced(
    cloud: &PointCloud,
    tree: &KdTree,
    config: &SegmentationConfig,
    trace: &mut impl FnMut(Touch),
) -> Vec<Vec<usize>> {
    let n = cloud.len();
    let mut visited = vec![false; n];
    let mut clusters = Vec::new();
    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        let mut cluster = vec![seed];
        let mut frontier = vec![seed];
        while let Some(idx) = frontier.pop() {
            if cluster.len() >= config.max_cluster_size {
                break;
            }
            let neighbors = tree.radius_search_traced(
                cloud.points().get(idx).expect("index within cloud"),
                config.cluster_tolerance_m,
                trace,
            );
            for nb in neighbors {
                if cluster.len() >= config.max_cluster_size {
                    break;
                }
                if !visited[nb] {
                    visited[nb] = true;
                    cluster.push(nb);
                    frontier.push(nb);
                }
            }
        }
        if cluster.len() >= config.min_cluster_size {
            clusters.push(cluster);
        }
    }
    clusters.sort_by_key(|c| std::cmp::Reverse(c.len()));
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;
    use sov_math::SovRng;

    fn two_blob_cloud() -> PointCloud {
        let mut rng = SovRng::seed_from_u64(1);
        let mut points = Vec::new();
        for _ in 0..50 {
            points.push([
                rng.normal(0.0, 0.2),
                rng.normal(0.0, 0.2),
                rng.normal(0.0, 0.2),
            ]);
        }
        for _ in 0..30 {
            points.push([
                10.0 + rng.normal(0.0, 0.2),
                rng.normal(0.0, 0.2),
                rng.normal(0.0, 0.2),
            ]);
        }
        PointCloud::from_points(points)
    }

    #[test]
    fn separates_two_blobs() {
        let cloud = two_blob_cloud();
        let tree = KdTree::build(&cloud);
        let clusters = euclidean_clusters(&cloud, &tree, &SegmentationConfig::default());
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].len(), 50, "largest first");
        assert_eq!(clusters[1].len(), 30);
    }

    #[test]
    fn min_size_filters_noise() {
        let mut cloud = two_blob_cloud();
        cloud.push([100.0, 100.0, 100.0]); // isolated noise point
        let tree = KdTree::build(&cloud);
        let clusters = euclidean_clusters(&cloud, &tree, &SegmentationConfig::default());
        assert_eq!(clusters.len(), 2, "noise must not form a cluster");
        let total: usize = clusters.iter().map(Vec::len).sum();
        assert_eq!(total, 80);
    }

    #[test]
    fn clusters_partition_points() {
        let cloud = two_blob_cloud();
        let tree = KdTree::build(&cloud);
        let cfg = SegmentationConfig {
            min_cluster_size: 1,
            ..SegmentationConfig::default()
        };
        let clusters = euclidean_clusters(&cloud, &tree, &cfg);
        let mut all: Vec<usize> = clusters.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..cloud.len()).collect::<Vec<_>>(),
            "each point in exactly one cluster"
        );
    }

    #[test]
    fn max_size_caps_growth() {
        let cloud = two_blob_cloud();
        let tree = KdTree::build(&cloud);
        let cfg = SegmentationConfig {
            max_cluster_size: 20,
            min_cluster_size: 1,
            ..SegmentationConfig::default()
        };
        let clusters = euclidean_clusters(&cloud, &tree, &cfg);
        assert!(clusters.iter().all(|c| c.len() <= 20), "capped at max size");
        assert!(clusters.len() > 2, "capping splits the blobs");
    }

    #[test]
    fn pooled_clustering_is_bit_identical() {
        let mut rng = SovRng::seed_from_u64(11);
        let cloud = PointCloud::synthetic_street_scene(1500, 1, &mut rng);
        let tree = KdTree::build(&cloud);
        let cfg = SegmentationConfig {
            min_cluster_size: 5,
            ..SegmentationConfig::default()
        };
        let serial = euclidean_clusters(&cloud, &tree, &cfg);
        assert_eq!(euclidean_clusters_with(&cloud, &tree, &cfg, None), serial);
        for lanes in [2, 4, 8] {
            let pool = WorkerPool::new(lanes);
            let pooled = euclidean_clusters_with(&cloud, &tree, &cfg, Some(&pool));
            assert_eq!(pooled, serial, "lanes = {lanes}");
        }
        // The cap path truncates growth identically too.
        let capped = SegmentationConfig {
            max_cluster_size: 25,
            min_cluster_size: 1,
            ..SegmentationConfig::default()
        };
        let serial_capped = euclidean_clusters(&cloud, &tree, &capped);
        let pool = WorkerPool::new(4);
        assert_eq!(
            euclidean_clusters_with(&cloud, &tree, &capped, Some(&pool)),
            serial_capped
        );
    }

    #[test]
    fn empty_cloud_no_clusters() {
        let cloud = PointCloud::new();
        let tree = KdTree::build(&cloud);
        assert!(euclidean_clusters(&cloud, &tree, &SegmentationConfig::default()).is_empty());
    }

    #[test]
    fn tracing_counts_queries() {
        let cloud = two_blob_cloud();
        let tree = KdTree::build(&cloud);
        let mut touches = 0u64;
        let _ =
            euclidean_clusters_traced(&cloud, &tree, &SegmentationConfig::default(), &mut |_| {
                touches += 1
            });
        assert!(
            touches > cloud.len() as u64,
            "one radius query per point minimum"
        );
    }
}
