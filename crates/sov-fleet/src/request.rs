//! Seeded Poisson ride demand over the lane graph.
//!
//! Ride requests arrive as a Poisson process (`λ` requests per tick) with
//! origins and destinations drawn uniformly by arclength from the network
//! via [`RouteTable::sample`]. Everything is driven by one [`SovRng`]
//! stream consumed in a fixed order on the serial phase of the fleet tick,
//! so a seed fully determines the demand trace independent of worker
//! count.

use crate::graph::{FleetPos, RouteCache, RouteTable};
use sov_math::SovRng;

/// One ride request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RideRequest {
    /// Unique, densely increasing request id.
    pub id: u64,
    /// Tick the request arrived on.
    pub tick: u64,
    /// Pickup position.
    pub origin: FleetPos,
    /// Drop-off position.
    pub dest: FleetPos,
    /// Shortest driving distance origin → destination (meters).
    pub direct_m: f64,
}

/// Seeded Poisson request generator.
#[derive(Debug, Clone, PartialEq)]
pub struct RideGen {
    rng: SovRng,
    rate_per_tick: f64,
    min_trip_m: f64,
    next_id: u64,
}

/// Destination re-draws before a short trip is accepted anyway: keeps the
/// RNG consumption bounded per request regardless of map geometry.
const MAX_DEST_DRAWS: u32 = 16;

impl RideGen {
    /// Creates a generator producing on average `rate_per_tick` requests
    /// per tick, rejecting trips shorter than `min_trip_m` (re-drawing the
    /// destination up to a fixed retry budget).
    ///
    /// # Panics
    ///
    /// Panics if `rate_per_tick` is not positive or `min_trip_m` is
    /// negative.
    #[must_use]
    pub fn new(seed: u64, rate_per_tick: f64, min_trip_m: f64) -> Self {
        assert!(rate_per_tick > 0.0, "request rate must be positive");
        assert!(min_trip_m >= 0.0, "minimum trip length cannot be negative");
        Self {
            rng: SovRng::seed_from_u64(seed),
            rate_per_tick,
            min_trip_m,
            next_id: 0,
        }
    }

    /// Total requests generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.next_id
    }

    /// Appends this tick's arrivals to `out` (which is not cleared).
    ///
    /// The arrival count is Poisson-distributed via Knuth's product
    /// method; each request then draws an origin and up to
    /// [`MAX_DEST_DRAWS`] destinations from the network sampler. Direct
    /// distances are answered through `cache`, which also pre-warms the
    /// destination fields the dispatcher and the ride itself will reuse —
    /// generation runs on the serial phase, so the cache's state stays a
    /// pure function of the demand trace.
    pub fn generate(
        &mut self,
        tick: u64,
        table: &RouteTable,
        cache: &mut RouteCache,
        out: &mut Vec<RideRequest>,
    ) {
        let mut direct_to = |origin: FleetPos, dest: FleetPos| {
            let field = cache.field(table, dest.lane);
            table.travel_distance_with(origin, dest, &field)
        };
        let arrivals = self.poisson();
        for _ in 0..arrivals {
            let origin = table.sample(self.rng.next_f64());
            let mut dest = table.sample(self.rng.next_f64());
            let mut direct = direct_to(origin, dest);
            for _ in 1..MAX_DEST_DRAWS {
                if direct >= self.min_trip_m {
                    break;
                }
                dest = table.sample(self.rng.next_f64());
                direct = direct_to(origin, dest);
            }
            out.push(RideRequest {
                id: self.next_id,
                tick,
                origin,
                dest,
                direct_m: direct,
            });
            self.next_id += 1;
        }
    }

    /// Knuth's Poisson sampler: counts uniform draws until the running
    /// product falls below `e^{-λ}`. For the fleet's per-tick rates
    /// (λ ≤ ~30) the product stays far above `f64` underflow.
    fn poisson(&mut self) -> u64 {
        let l = (-self.rate_per_tick).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.rng.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sov_world::map::grid_network;

    fn table() -> RouteTable {
        RouteTable::new(&grid_network(3, 3, 50.0, 2.5, 8.0))
    }

    #[test]
    fn same_seed_same_trace() {
        let t = table();
        let mut a = RideGen::new(7, 2.5, 100.0);
        let mut b = RideGen::new(7, 2.5, 100.0);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        let mut cache_a = RouteCache::new(&t, usize::MAX);
        // Different cache capacities must not change the trace: the cache
        // memoizes exact fields, it never changes a distance.
        let mut cache_b = RouteCache::new(&t, 1);
        for tick in 0..50 {
            a.generate(tick, &t, &mut cache_a, &mut out_a);
            b.generate(tick, &t, &mut cache_b, &mut out_b);
        }
        assert_eq!(out_a, out_b);
        assert_eq!(a.generated(), out_a.len() as u64);
    }

    #[test]
    fn poisson_mean_tracks_rate() {
        let t = table();
        let mut gen = RideGen::new(11, 3.0, 0.0);
        let mut cache = RouteCache::new(&t, usize::MAX);
        let mut out = Vec::new();
        for tick in 0..2000 {
            gen.generate(tick, &t, &mut cache, &mut out);
        }
        let mean = out.len() as f64 / 2000.0;
        assert!((mean - 3.0).abs() < 0.15, "Poisson mean {mean}");
    }

    #[test]
    fn request_ids_are_dense_and_increasing() {
        let t = table();
        let mut gen = RideGen::new(3, 4.0, 50.0);
        let mut cache = RouteCache::new(&t, 4);
        let mut out = Vec::new();
        for tick in 0..100 {
            gen.generate(tick, &t, &mut cache, &mut out);
        }
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
    }

    #[test]
    fn min_trip_is_mostly_respected() {
        let t = table();
        let mut gen = RideGen::new(5, 5.0, 120.0);
        let mut cache = RouteCache::new(&t, usize::MAX);
        let mut out = Vec::new();
        for tick in 0..200 {
            gen.generate(tick, &t, &mut cache, &mut out);
        }
        assert!(cache.hits() > 0, "repeated destinations must hit the cache");
        assert!(!out.is_empty());
        let short = out.iter().filter(|r| r.direct_m < 120.0).count();
        // The retry budget makes short trips rare, not impossible.
        assert!(
            short * 10 < out.len(),
            "{short} of {} trips under the minimum",
            out.len()
        );
        for r in &out {
            assert!((r.direct_m - t.travel_distance(r.origin, r.dest)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = RideGen::new(0, 0.0, 10.0);
    }
}
