//! SoV power aggregation (Table I).
//!
//! Complements `sov-vehicle::battery`'s driving-time model with the
//! component-level breakdown: the main computing server (dynamic + idle),
//! the embedded vision module (FPGA + cameras + IMU + GPS), six radars and
//! eight sonars — 175 W total for autonomous driving.

/// Power state of the computing server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerLoad {
    /// Idle (31 W).
    Idle,
    /// Fully loaded (adds 118 W of dynamic power on top of idle).
    FullLoad,
}

/// The SoV power configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SovPowerModel {
    /// Number of computing servers installed.
    pub num_servers: u32,
    /// Load state of each additional server beyond the first (the first
    /// server always runs the pipeline at full load).
    pub extra_server_load: ServerLoad,
    /// Whether the vehicle carries the Waymo-style LiDAR suite instead of
    /// relying on cameras only.
    pub lidar_suite: bool,
}

impl SovPowerModel {
    /// Server idle power (W, Table I).
    pub const SERVER_IDLE_W: f64 = 31.0;
    /// Server dynamic power (W, Table I).
    pub const SERVER_DYNAMIC_W: f64 = 118.0;
    /// Embedded vision module: FPGA + cameras + IMU + GPS (W, Table I).
    pub const VISION_MODULE_W: f64 = 11.0;
    /// Six radars (W, Table I).
    pub const RADARS_W: f64 = 13.0;
    /// Eight sonars (W, Table I).
    pub const SONARS_W: f64 = 2.0;
    /// Waymo-style LiDAR suite: 1 long-range + 4 short-range (W).
    pub const LIDAR_SUITE_W: f64 = 92.0;

    /// The deployed configuration: one server, no LiDAR → 175 W.
    #[must_use]
    pub fn deployed() -> Self {
        Self {
            num_servers: 1,
            extra_server_load: ServerLoad::Idle,
            lidar_suite: false,
        }
    }

    /// Total autonomous-driving power `P_AD` (W).
    #[must_use]
    pub fn total_pad_w(&self) -> f64 {
        let mut total = Self::VISION_MODULE_W + Self::RADARS_W + Self::SONARS_W;
        for i in 0..self.num_servers {
            total += Self::SERVER_IDLE_W;
            // First server runs the pipeline (dynamic); extras follow the
            // configured load.
            if i == 0 || self.extra_server_load == ServerLoad::FullLoad {
                total += Self::SERVER_DYNAMIC_W;
            }
        }
        if self.lidar_suite {
            total += Self::LIDAR_SUITE_W;
        }
        total
    }

    /// `P_AD` in kilowatts, the unit Fig. 3b's x-axis uses.
    #[must_use]
    pub fn total_pad_kw(&self) -> f64 {
        self.total_pad_w() / 1_000.0
    }
}

/// Thermal model (Sec. III-B).
///
/// "Since we have managed to optimize the total computing power consumption
/// well under 200 W, thermal constraints do not appear to be a problem in
/// various commercial deployment environments, where temperatures range
/// from −20 °C to +40 °C. Conventional cooling techniques (e.g., fans) for
/// server systems are used."
///
/// Steady state: `T_component = T_ambient + P · R_th` with the thermal
/// resistance of a fan-cooled server enclosure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalModel {
    /// Junction-to-ambient thermal resistance of the cooled enclosure
    /// (K/W). Fan-cooled server boxes: ~0.2–0.3 K/W.
    pub thermal_resistance_k_per_w: f64,
    /// Maximum safe component temperature (°C).
    pub max_component_temp_c: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        Self {
            thermal_resistance_k_per_w: 0.25,
            max_component_temp_c: 85.0,
        }
    }
}

impl ThermalModel {
    /// Steady-state component temperature (°C) at the given dissipation.
    #[must_use]
    pub fn steady_state_temp_c(&self, power_w: f64, ambient_c: f64) -> f64 {
        ambient_c + power_w * self.thermal_resistance_k_per_w
    }

    /// Whether the dissipation is safe at the given ambient.
    #[must_use]
    pub fn within_limits(&self, power_w: f64, ambient_c: f64) -> bool {
        self.steady_state_temp_c(power_w, ambient_c) <= self.max_component_temp_c
    }

    /// Maximum sustainable dissipation (W) at the given ambient.
    #[must_use]
    pub fn power_headroom_w(&self, ambient_c: f64) -> f64 {
        ((self.max_component_temp_c - ambient_c) / self.thermal_resistance_k_per_w).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_ok_across_deployment_climates() {
        // Sec. III-B: under 200 W, −20 °C to +40 °C, fans suffice.
        let thermal = ThermalModel::default();
        let pad = SovPowerModel::deployed().total_pad_w();
        for ambient in [-20.0, 0.0, 25.0, 40.0] {
            assert!(
                thermal.within_limits(pad, ambient),
                "{pad} W at {ambient} °C → {:.0} °C",
                thermal.steady_state_temp_c(pad, ambient)
            );
        }
        // Even the 2 kW vehicle peak would NOT be coolable through this
        // enclosure — which is why only the 175 W compute load lives there.
        assert!(!thermal.within_limits(2_000.0, 40.0));
    }

    #[test]
    fn headroom_shrinks_with_ambient() {
        let thermal = ThermalModel::default();
        let cold = thermal.power_headroom_w(-20.0);
        let hot = thermal.power_headroom_w(40.0);
        assert!(cold > hot);
        // At +40 °C the headroom still covers the 175 W load comfortably.
        assert!(hot > 175.0, "headroom at 40 °C is {hot} W");
        // Absurd ambients clamp to zero.
        assert_eq!(thermal.power_headroom_w(200.0), 0.0);
    }

    #[test]
    fn deployed_config_draws_175w() {
        // Table I: 118 + 31 + 11 + 13 + 2 = 175 W.
        assert!((SovPowerModel::deployed().total_pad_w() - 175.0).abs() < 1e-9);
    }

    #[test]
    fn extra_idle_server_adds_31w() {
        let two = SovPowerModel {
            num_servers: 2,
            ..SovPowerModel::deployed()
        };
        assert!((two.total_pad_w() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn extra_full_load_server_adds_149w() {
        let two = SovPowerModel {
            num_servers: 2,
            extra_server_load: ServerLoad::FullLoad,
            ..SovPowerModel::deployed()
        };
        assert!((two.total_pad_w() - (175.0 + 149.0)).abs() < 1e-9);
    }

    #[test]
    fn lidar_suite_adds_92w() {
        let with_lidar = SovPowerModel {
            lidar_suite: true,
            ..SovPowerModel::deployed()
        };
        assert!((with_lidar.total_pad_w() - 267.0).abs() < 1e-9);
    }
}
