//! The performance-characterization harness of Sec. V-C.
//!
//! Runs the latency pipeline over many frames against a scenario's
//! complexity profile and aggregates the distributions the paper reports:
//! Fig. 10a's best/mean/99th-percentile stacked decomposition and Fig. 10b's
//! per-task averages, plus the derived safety quantities (minimum avoidable
//! obstacle distance at mean and worst-case latency).

use crate::config::VehicleConfig;
use crate::pipeline::LatencyPipeline;
use sov_math::stats::Summary;
use sov_sim::time::SimTime;
use sov_sim::trace::{Stage, TraceLog};
use sov_world::scenario::ComplexityProfile;

/// Aggregated latency characterization.
#[derive(Debug, Clone)]
pub struct Characterization {
    /// Sensing-stage latencies (ms).
    pub sensing: Summary,
    /// Perception-stage latencies (ms).
    pub perception: Summary,
    /// Planning-stage latencies (ms).
    pub planning: Summary,
    /// Computing latencies `T_comp` (ms).
    pub computing: Summary,
    /// Depth-estimation task latencies (ms).
    pub depth: Summary,
    /// Detection task latencies (ms).
    pub detection: Summary,
    /// Tracking task latencies (ms).
    pub tracking: Summary,
    /// Localization task latencies (ms).
    pub localization: Summary,
    /// Span-level trace of every frame (sensing → perception → planning),
    /// suitable for timeline tooling.
    pub trace: TraceLog,
    /// Frames simulated.
    pub frames: u64,
}

impl Characterization {
    /// Runs `frames` frames of the latency pipeline for `config`, sweeping
    /// the route so complexity follows `profile`.
    #[must_use]
    pub fn run(
        config: &VehicleConfig,
        profile: &ComplexityProfile,
        frames: u64,
        seed: u64,
    ) -> Self {
        let mut pipe = LatencyPipeline::new(config, seed);
        let mut out = Self {
            sensing: Summary::new(),
            perception: Summary::new(),
            planning: Summary::new(),
            computing: Summary::new(),
            depth: Summary::new(),
            detection: Summary::new(),
            tracking: Summary::new(),
            localization: Summary::new(),
            trace: TraceLog::new(),
            frames,
        };
        let mut clock = SimTime::ZERO;
        for k in 0..frames {
            // Sweep the route repeatedly; complexity follows position.
            let frac = (k % 1000) as f64 / 1000.0;
            let f = pipe.next_frame(profile.at(frac));
            // Record the frame as serial spans on a shared timeline.
            let s_end = clock + f.sensing;
            let p_end = s_end + f.perception();
            let pl_end = p_end + f.planning;
            out.trace.record(k, Stage::Sensing, clock, s_end);
            out.trace.record(k, Stage::Perception, s_end, p_end);
            out.trace.record(k, Stage::Planning, p_end, pl_end);
            clock = pl_end;
            out.sensing.record(f.sensing.as_millis_f64());
            out.perception.record(f.perception().as_millis_f64());
            out.planning.record(f.planning.as_millis_f64());
            out.computing.record(f.computing().as_millis_f64());
            out.depth.record(f.depth.as_millis_f64());
            out.detection.record(f.detection.as_millis_f64());
            out.tracking.record(f.tracking.as_millis_f64());
            out.localization.record(f.localization.as_millis_f64());
        }
        out
    }

    /// Fig. 10a row: `(best, mean, p99)` of the computing latency (ms).
    pub fn computing_row(&mut self) -> (f64, f64, f64) {
        (
            self.computing.min(),
            self.computing.mean(),
            self.computing.p99(),
        )
    }

    /// Minimum avoidable obstacle distance (m) at the mean computing
    /// latency (Sec. III-A's "5 m" headline at 164 ms).
    pub fn avoidable_distance_mean_m(&mut self, config: &VehicleConfig) -> f64 {
        config
            .latency_budget()
            .min_avoidable_distance_m(self.computing.mean() / 1000.0)
    }

    /// Minimum avoidable obstacle distance (m) at the worst observed
    /// latency.
    pub fn avoidable_distance_worst_m(&mut self, config: &VehicleConfig) -> f64 {
        config
            .latency_budget()
            .min_avoidable_distance_m(self.computing.max() / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn characterize(frames: u64) -> (VehicleConfig, Characterization) {
        let config = VehicleConfig::perceptin_pod();
        let profile = ComplexityProfile::new(vec![(0.0, 0.3), (0.5, 0.6), (1.0, 0.3)]);
        let c = Characterization::run(&config, &profile, frames, 42);
        (config, c)
    }

    #[test]
    fn fig10a_shape_holds() {
        let (_, mut c) = characterize(6000);
        let (best, mean, p99) = c.computing_row();
        assert!(best < mean && mean < p99, "{best} < {mean} < {p99}");
        // Sec. V-C: "the mean latency (164 ms) is close to the best-case
        // latency (149 ms), but a long tail exists".
        assert!(mean - best < 80.0, "mean {mean} close to best {best}");
        assert!(p99 - mean > 40.0, "long tail: p99 {p99} vs mean {mean}");
        assert!((140.0..195.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn fig10b_detection_dominates_perception_tasks() {
        let (_, c) = characterize(3000);
        let det = c.detection.mean();
        assert!(det > c.depth.mean());
        assert!(det > c.tracking.mean());
        assert!(det > c.localization.mean());
    }

    #[test]
    fn localization_statistics_match_sec5c() {
        // Sec. V-C: localization median ≈ 25 ms, σ ≈ 14 ms.
        let (_, mut c) = characterize(6000);
        let median = c.localization.median();
        let std = c.localization.std_dev();
        assert!((15.0..40.0).contains(&median), "median {median}");
        assert!(std > 7.0, "variation from scene complexity: σ = {std}");
    }

    #[test]
    fn avoidance_distances() {
        let (config, mut c) = characterize(6000);
        let mean_d = c.avoidable_distance_mean_m(&config);
        let worst_d = c.avoidable_distance_worst_m(&config);
        // ≈5 m at the mean latency; worst-case needs several meters more.
        assert!((4.3..6.0).contains(&mean_d), "mean avoidance {mean_d} m");
        assert!(worst_d > mean_d + 0.5, "worst {worst_d} vs mean {mean_d}");
    }

    #[test]
    fn trace_spans_reconcile_with_summaries() {
        let (_, c) = characterize(500);
        let frames = c.trace.frames();
        assert_eq!(frames.len(), 500);
        // The trace's per-frame wall extents must reproduce the recorded
        // computing latencies exactly.
        let trace_mean = frames
            .values()
            .map(|fb| fb.total().as_millis_f64())
            .sum::<f64>()
            / frames.len() as f64;
        assert!((trace_mean - c.computing.mean()).abs() < 1e-9);
        // And per-stage sums match too.
        use sov_sim::trace::Stage;
        let sensing_mean = frames
            .values()
            .map(|fb| fb.stage(Stage::Sensing).as_millis_f64())
            .sum::<f64>()
            / frames.len() as f64;
        assert!((sensing_mean - c.sensing.mean()).abs() < 1e-9);
    }

    #[test]
    fn throughput_requirement_is_met_by_pipelining() {
        // The slowest stage bounds throughput; perception must fit in the
        // 10 Hz budget on average for the pipeline to sustain 10 Hz.
        let (config, c) = characterize(3000);
        assert!(
            c.perception.mean() < 1000.0 / config.control_rate_hz,
            "perception mean {} ms exceeds the control period",
            c.perception.mean()
        );
    }
}
