//! Grayscale images and synthetic scene rendering.
//!
//! The dense stereo matcher and the KCF tracker operate on real pixel
//! arrays. Since we have no physical cameras, scenes are *rendered*: each
//! landmark in view becomes a textured Gaussian blob at its projected pixel
//! location, over a low-contrast noise background. Shifting the rendering
//! camera produces geometrically-consistent stereo pairs and tracking
//! sequences.

use sov_math::SovRng;
use sov_runtime::arena::FrameArena;
use sov_runtime::pool::{for_chunks, WorkerPool};

/// Borrows a zeroed `len`-element plane from `arena` (or allocates when no
/// arena is supplied). Zero-filling keeps the arena path bit-identical to
/// the `vec![0.0; len]` path even for writers that skip border pixels.
fn take_plane(arena: Option<&FrameArena>, len: usize) -> Vec<f32> {
    let mut plane = arena.map_or_else(Vec::new, FrameArena::take);
    plane.clear();
    plane.resize(len, 0.0f32);
    plane
}

/// Rows per parallel chunk for image kernels. Fixed (never derived from
/// the worker count) so chunk boundaries — and therefore results — are
/// identical for every pool size.
const ROWS_PER_CHUNK: usize = 8;

/// Minimum image size (pixels) before the streaming kernels (convolution,
/// pyramid subsampling) dispatch to the pool — below this, dispatch
/// overhead dominates the ~ns-per-pixel work. A pure function of input
/// size, so chunking stays deterministic for every lane count.
const MIN_PARALLEL_PIXELS: usize = 1 << 16;

/// A row-major grayscale image of `f32` intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Self {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel intensity at `(x, y)`; returns 0.0 outside bounds.
    #[must_use]
    pub fn get(&self, x: isize, y: isize) -> f32 {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return 0.0;
        }
        self.data[y as usize * self.width + x as usize]
    }

    /// Sets pixel intensity (clamped to `[0, 1]`); ignores out-of-bounds.
    pub fn set(&mut self, x: isize, y: isize, value: f32) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        self.data[y as usize * self.width + x as usize] = value.clamp(0.0, 1.0);
    }

    /// Adds to a pixel (clamped); ignores out-of-bounds.
    pub fn add(&mut self, x: isize, y: isize, value: f32) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        let px = &mut self.data[y as usize * self.width + x as usize];
        *px = (*px + value).clamp(0.0, 1.0);
    }

    /// Raw data slice (row-major).
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Builds an image from raw row-major data (values are clamped to
    /// `[0, 1]`, preserving the image invariant).
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero or `data.len() != width * height`.
    #[must_use]
    pub fn from_raw(width: usize, height: usize, mut data: Vec<f32>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert_eq!(data.len(), width * height, "data must fill the image");
        for v in &mut data {
            *v = v.clamp(0.0, 1.0);
        }
        Self {
            width,
            height,
            data,
        }
    }

    /// Extracts a `size × size` patch centered at `(cx, cy)`; pixels outside
    /// the image read as 0.
    #[must_use]
    pub fn patch(&self, cx: isize, cy: isize, size: usize) -> GrayImage {
        let mut out = GrayImage::new(size, size);
        let half = (size / 2) as isize;
        for y in 0..size as isize {
            for x in 0..size as isize {
                out.set(x, y, self.get(cx - half + x, cy - half + y));
            }
        }
        out
    }

    /// Consumes the image, returning its backing buffer so per-frame
    /// pipelines can [`FrameArena::recycle`] it (the same discipline as
    /// `DisparityMap::into_raw`).
    #[must_use]
    pub fn into_raw(self) -> Vec<f32> {
        self.data
    }

    /// Mean intensity.
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }
}

/// Renders a textured scene: background noise plus Gaussian blobs.
///
/// Each blob is `(center_x, center_y, radius_px, intensity)`. The same blob
/// list rendered with shifted centers produces a consistent stereo pair.
#[must_use]
pub fn render_scene(
    width: usize,
    height: usize,
    blobs: &[(f64, f64, f64, f64)],
    background_noise: f32,
    rng: &mut SovRng,
) -> GrayImage {
    let mut img = GrayImage::new(width, height);
    // Low-contrast background texture.
    for y in 0..height as isize {
        for x in 0..width as isize {
            img.set(x, y, 0.2 + background_noise * rng.next_f64() as f32);
        }
    }
    for &(cx, cy, radius, intensity) in blobs {
        let r = radius.max(0.5);
        let span = (3.0 * r).ceil() as isize;
        let (icx, icy) = (cx.round() as isize, cy.round() as isize);
        for dy in -span..=span {
            for dx in -span..=span {
                let d2 = ((icx + dx) as f64 - cx).powi(2) + ((icy + dy) as f64 - cy).powi(2);
                let v = intensity * (-d2 / (2.0 * r * r)).exp();
                img.add(icx + dx, icy + dy, v as f32);
            }
        }
    }
    img
}

/// 3×3 convolution with zero padding (pixels outside the image read 0, as
/// in [`GrayImage::get`]); outputs are clamped to `[0, 1]`.
///
/// With a pool, rows are processed in fixed chunks of [`ROWS_PER_CHUNK`];
/// every output row reads only the (immutable) input, so the result is
/// bit-identical to the serial pass at any worker count.
#[must_use]
pub fn convolve3x3(
    image: &GrayImage,
    kernel: &[[f32; 3]; 3],
    pool: Option<&WorkerPool>,
) -> GrayImage {
    convolve3x3_with(image, kernel, pool, None)
}

/// [`convolve3x3`] with the output plane borrowed from a [`FrameArena`];
/// recycle it after use via [`GrayImage::into_raw`].
#[must_use]
pub fn convolve3x3_with(
    image: &GrayImage,
    kernel: &[[f32; 3]; 3],
    pool: Option<&WorkerPool>,
    arena: Option<&FrameArena>,
) -> GrayImage {
    let (w, h) = (image.width(), image.height());
    // Below ~2 ns/pixel of work, waking workers costs more than the
    // convolution itself; the threshold depends only on the input size
    // (never the lane count) and the serial path runs identical chunks,
    // so the gate cannot change the output.
    let pool = pool.filter(|_| w * h >= MIN_PARALLEL_PIXELS);
    let mut out = take_plane(arena, w * h);
    for_chunks(pool, &mut out, ROWS_PER_CHUNK * w, |start, rows| {
        let y0 = start / w;
        for (dy, row) in rows.chunks_mut(w).enumerate() {
            let y = (y0 + dy) as isize;
            for (x, px) in row.iter_mut().enumerate() {
                let x = x as isize;
                let mut acc = 0.0f32;
                for (ky, kr) in kernel.iter().enumerate() {
                    for (kx, k) in kr.iter().enumerate() {
                        acc += k * image.get(x + kx as isize - 1, y + ky as isize - 1);
                    }
                }
                *px = acc;
            }
        }
    });
    GrayImage::from_raw(w, h, out)
}

/// The 3×3 binomial smoothing kernel (1-2-1 ⊗ 1-2-1, normalized).
pub const SMOOTH_3X3: [[f32; 3]; 3] = [
    [1.0 / 16.0, 2.0 / 16.0, 1.0 / 16.0],
    [2.0 / 16.0, 4.0 / 16.0, 2.0 / 16.0],
    [1.0 / 16.0, 2.0 / 16.0, 1.0 / 16.0],
];

/// Builds an image pyramid: level 0 is a smoothed copy of `image`, and
/// each further level halves both dimensions by 2×2 box averaging of the
/// previous level (smooth-then-subsample, the camera front-end's
/// multi-scale substrate).
///
/// Stops early when a dimension would fall below 2 px. Deterministic for
/// any pool size (row-chunked, read-only inputs).
#[must_use]
pub fn pyramid(image: &GrayImage, levels: usize, pool: Option<&WorkerPool>) -> Vec<GrayImage> {
    pyramid_with(image, levels, pool, None)
}

/// [`pyramid`] with every level's plane borrowed from a [`FrameArena`]; a
/// per-frame caller recycles the levels via [`GrayImage::into_raw`] so the
/// steady state allocates nothing.
#[must_use]
pub fn pyramid_with(
    image: &GrayImage,
    levels: usize,
    pool: Option<&WorkerPool>,
    arena: Option<&FrameArena>,
) -> Vec<GrayImage> {
    let mut out = Vec::with_capacity(levels);
    out.push(convolve3x3_with(image, &SMOOTH_3X3, pool, arena));
    for _ in 1..levels {
        let prev = out.last().expect("level 0 pushed above");
        let (w, h) = (prev.width() / 2, prev.height() / 2);
        if w < 2 || h < 2 {
            break;
        }
        let mut data = take_plane(arena, w * h);
        let pool = pool.filter(|_| w * h >= MIN_PARALLEL_PIXELS);
        for_chunks(pool, &mut data, ROWS_PER_CHUNK * w, |start, rows| {
            let y0 = start / w;
            for (dy, row) in rows.chunks_mut(w).enumerate() {
                let y = y0 + dy;
                for (x, px) in row.iter_mut().enumerate() {
                    let (sx, sy) = (2 * x as isize, 2 * y as isize);
                    *px = 0.25
                        * (prev.get(sx, sy)
                            + prev.get(sx + 1, sy)
                            + prev.get(sx, sy + 1)
                            + prev.get(sx + 1, sy + 1));
                }
            }
        });
        out.push(GrayImage::from_raw(w, h, data));
    }
    out
}

/// Normalized cross-correlation of two equally-sized images, in `[-1, 1]`.
///
/// Returns 0.0 if either image has zero variance.
///
/// # Panics
///
/// Panics if the images have different dimensions.
#[must_use]
pub fn ncc(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "ncc requires equal dimensions"
    );
    let ma = f64::from(a.mean());
    let mb = f64::from(b.mean());
    let (mut num, mut va, mut vb) = (0.0, 0.0, 0.0);
    for (pa, pb) in a.data().iter().zip(b.data()) {
        let da = f64::from(*pa) - ma;
        let db = f64::from(*pb) - mb;
        num += da * db;
        va += da * da;
        vb += db * db;
    }
    if va < 1e-12 || vb < 1e-12 {
        return 0.0;
    }
    num / (va.sqrt() * vb.sqrt())
}

/// Normalized cross-correlation of two `size × size` windows centered at
/// `(acx, acy)` in `a` and `(bcx, bcy)` in `b`, **without materializing
/// patches**.
///
/// Bit-identical to `ncc(&a.patch(acx, acy, size), &b.patch(bcx, bcy,
/// size))`: windows are read in the same row-major order, through the same
/// zero-padding and `[0, 1]` clamp that [`GrayImage::patch`] applies, the
/// means are accumulated in `f32` exactly as [`GrayImage::mean`] does, and
/// the correlation accumulates in `f64` in the same element order. The
/// only difference is that no heap allocation happens — this is the
/// arena-era replacement for the patch-per-candidate tracker hot loop.
#[must_use]
pub fn ncc_window(
    a: &GrayImage,
    (acx, acy): (isize, isize),
    b: &GrayImage,
    (bcx, bcy): (isize, isize),
    size: usize,
) -> f64 {
    NccTemplate::new(a, (acx, acy), size).correlate(b, (bcx, bcy))
}

/// Reads a `size × size` window centered at `(cx, cy)` into `out`
/// (row-major), applying the same zero-padding and `[0, 1]` clamp that
/// [`GrayImage::patch`] applies. Windows fully inside the image are copied
/// row-by-row from the backing slice — every write path already clamps
/// stored pixels to `[0, 1]`, so skipping the clamp there is bitwise
/// equivalent.
fn read_window(img: &GrayImage, (cx, cy): (isize, isize), size: usize, out: &mut Vec<f32>) {
    out.clear();
    let half = (size / 2) as isize;
    let (x0, y0) = (cx - half, cy - half);
    let (w, h) = (img.width() as isize, img.height() as isize);
    if x0 >= 0 && y0 >= 0 && x0 + size as isize <= w && y0 + size as isize <= h {
        let (w, x0, y0) = (img.width(), x0 as usize, y0 as usize);
        for y in 0..size {
            out.extend_from_slice(&img.data()[(y0 + y) * w + x0..][..size]);
        }
        return;
    }
    for y in 0..size as isize {
        for x in 0..size as isize {
            out.push(img.get(x0 + x, y0 + y).clamp(0.0, 1.0));
        }
    }
}

/// A template window with its NCC statistics hoisted, for correlating one
/// window against many candidate positions — the tracker's hot loop.
///
/// [`NccTemplate::correlate`] is bit-identical to [`ncc_window`] (and so
/// to patch-based [`ncc`]): the window values are read through the same
/// padding/clamp semantics, the means accumulate in `f32` in the same
/// row-major order, and each `f64` accumulator (numerator, template
/// variance, candidate variance) sums the same terms in the same order —
/// hoisting the template's zero-mean residuals moves work between loops
/// but never reorders any single accumulator's additions.
#[derive(Debug, Clone)]
pub struct NccTemplate {
    /// Zero-mean template residuals, row-major.
    da: Vec<f64>,
    /// Template variance (Σ da²), accumulated in template order.
    va: f64,
    size: usize,
    /// Scratch for candidate window values, reused across correlations.
    scratch: std::cell::RefCell<Vec<f32>>,
}

impl NccTemplate {
    /// Hoists the NCC statistics of the `size × size` window centered at
    /// `(acx, acy)` in `a`.
    #[must_use]
    pub fn new(a: &GrayImage, (acx, acy): (isize, isize), size: usize) -> Self {
        let mut vals = Vec::with_capacity(size * size);
        read_window(a, (acx, acy), size, &mut vals);
        let n = (size * size) as f32;
        let sa: f32 = vals.iter().fold(0.0, |s, &v| s + v);
        let ma = f64::from(sa / n);
        let mut va = 0.0f64;
        let da: Vec<f64> = vals
            .iter()
            .map(|&v| {
                let d = f64::from(v) - ma;
                va += d * d;
                d
            })
            .collect();
        Self {
            da,
            va,
            size,
            scratch: std::cell::RefCell::new(Vec::with_capacity(size * size)),
        }
    }

    /// NCC of the template against the window centered at `(bcx, bcy)`
    /// in `b`; bit-identical to the corresponding [`ncc_window`] call.
    #[must_use]
    pub fn correlate(&self, b: &GrayImage, (bcx, bcy): (isize, isize)) -> f64 {
        let size = self.size;
        let n = (size * size) as f32;
        let half = (size / 2) as isize;
        let (x0, y0) = (bcx - half, bcy - half);
        let (bw, bh) = (b.width() as isize, b.height() as isize);
        let (mut sb, mut num, mut vb) = (0.0f32, 0.0f64, 0.0f64);
        if x0 >= 0 && y0 >= 0 && x0 + size as isize <= bw && y0 + size as isize <= bh {
            // Interior window: both passes run over contiguous rows in the
            // same row-major order the scratch path uses.
            let (w, x0, y0) = (b.width(), x0 as usize, y0 as usize);
            for y in 0..size {
                for &v in &b.data()[(y0 + y) * w + x0..][..size] {
                    sb += v;
                }
            }
            let mb = f64::from(sb / n);
            for y in 0..size {
                let row = &b.data()[(y0 + y) * w + x0..][..size];
                for (da, &v) in self.da[y * size..(y + 1) * size].iter().zip(row) {
                    let db = f64::from(v) - mb;
                    num += da * db;
                    vb += db * db;
                }
            }
        } else {
            let mut vals = self.scratch.borrow_mut();
            read_window(b, (bcx, bcy), size, &mut vals);
            sb = vals.iter().fold(0.0, |s, &v| s + v);
            let mb = f64::from(sb / n);
            for (da, &v) in self.da.iter().zip(vals.iter()) {
                let db = f64::from(v) - mb;
                num += da * db;
                vb += db * db;
            }
        }
        if self.va < 1e-12 || vb < 1e-12 {
            return 0.0;
        }
        num / (self.va.sqrt() * vb.sqrt())
    }

    /// Correlates the template against a horizontal run of candidate
    /// centers `(bx0 + k, bcy)` for `k in 0..out.len()`, writing each NCC
    /// into `out[k]`.
    ///
    /// Bit-identical to calling [`NccTemplate::correlate`] once per
    /// center: every candidate's three accumulators (f32 sum, numerator,
    /// variance) add the same terms in the same order — independent
    /// candidates merely interleave, which never reorders any single
    /// chain. The interleaving matters because a lone NCC is bound by its
    /// floating-point dependency chain; four side-by-side chains hide
    /// that latency.
    pub fn correlate_run(&self, b: &GrayImage, (bx0, bcy): (isize, isize), out: &mut [f64]) {
        let size = self.size;
        let half = (size / 2) as isize;
        let y0 = bcy - half;
        let first_x0 = bx0 - half;
        let last_x0 = first_x0 + out.len() as isize - 1;
        let run_interior = !out.is_empty()
            && first_x0 >= 0
            && y0 >= 0
            && last_x0 + size as isize <= b.width() as isize
            && y0 + size as isize <= b.height() as isize;
        if !run_interior {
            for (k, slot) in out.iter_mut().enumerate() {
                *slot = self.correlate(b, (bx0 + k as isize, bcy));
            }
            return;
        }
        let n = (size * size) as f32;
        let (w, data) = (b.width(), b.data());
        let (y0, first_x0) = (y0 as usize, first_x0 as usize);
        let mut k = 0;
        while k + 4 <= out.len() {
            let x0 = first_x0 + k;
            let mut sb = [0.0f32; 4];
            for y in 0..size {
                let row = &data[(y0 + y) * w + x0..][..size + 3];
                for (x, _) in row.iter().enumerate().take(size) {
                    for (lane, s) in sb.iter_mut().enumerate() {
                        *s += row[x + lane];
                    }
                }
            }
            let mb = sb.map(|s| f64::from(s / n));
            let (mut num, mut vb) = ([0.0f64; 4], [0.0f64; 4]);
            for y in 0..size {
                let row = &data[(y0 + y) * w + x0..][..size + 3];
                let das = &self.da[y * size..(y + 1) * size];
                for (x, da) in das.iter().enumerate() {
                    for lane in 0..4 {
                        let db = f64::from(row[x + lane]) - mb[lane];
                        num[lane] += da * db;
                        vb[lane] += db * db;
                    }
                }
            }
            for lane in 0..4 {
                out[k + lane] = if self.va < 1e-12 || vb[lane] < 1e-12 {
                    0.0
                } else {
                    num[lane] / (self.va.sqrt() * vb[lane].sqrt())
                };
            }
            k += 4;
        }
        for (k, slot) in out.iter_mut().enumerate().skip(k) {
            *slot = self.correlate(b, (bx0 + k as isize, bcy));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip_and_bounds() {
        let mut img = GrayImage::new(8, 4);
        img.set(3, 2, 0.7);
        assert!((img.get(3, 2) - 0.7).abs() < 1e-6);
        assert_eq!(img.get(-1, 0), 0.0);
        assert_eq!(img.get(8, 0), 0.0);
        img.set(100, 100, 1.0); // silently ignored
        img.set(2, 2, 5.0);
        assert_eq!(img.get(2, 2), 1.0, "clamped to [0,1]");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = GrayImage::new(0, 4);
    }

    #[test]
    fn patch_extraction() {
        let mut img = GrayImage::new(16, 16);
        img.set(8, 8, 1.0);
        let p = img.patch(8, 8, 5);
        assert_eq!(p.width(), 5);
        assert_eq!(p.get(2, 2), 1.0, "center of patch is source center");
        // Patch at the border zero-pads.
        let edge = img.patch(0, 0, 5);
        assert_eq!(edge.get(0, 0), 0.0);
    }

    #[test]
    fn render_scene_places_blobs() {
        let mut rng = SovRng::seed_from_u64(1);
        let img = render_scene(64, 64, &[(32.0, 32.0, 2.0, 0.8)], 0.05, &mut rng);
        let center = img.get(32, 32);
        let corner = img.get(2, 2);
        assert!(center > corner + 0.3, "blob should dominate background");
    }

    #[test]
    fn ncc_detects_identical_and_shifted() {
        let mut rng = SovRng::seed_from_u64(2);
        let img = render_scene(32, 32, &[(16.0, 16.0, 3.0, 0.9)], 0.1, &mut rng);
        assert!((ncc(&img, &img) - 1.0).abs() < 1e-9);
        let shifted = img.patch(20, 16, 32);
        let same = img.patch(16, 16, 32);
        assert!(ncc(&img, &same) > ncc(&img, &shifted));
    }

    #[test]
    fn ncc_zero_variance_is_zero() {
        let flat = GrayImage::new(8, 8);
        let other = GrayImage::new(8, 8);
        assert_eq!(ncc(&flat, &other), 0.0);
    }

    #[test]
    fn from_raw_roundtrip_and_clamp() {
        let img = GrayImage::from_raw(2, 2, vec![0.1, 0.5, 2.0, -1.0]);
        assert_eq!(img.get(0, 0), 0.1);
        assert_eq!(img.get(0, 1), 1.0, "clamped high");
        assert_eq!(img.get(1, 1), 0.0, "clamped low");
    }

    #[test]
    #[should_panic(expected = "fill the image")]
    fn from_raw_wrong_len_panics() {
        let _ = GrayImage::from_raw(3, 3, vec![0.0; 8]);
    }

    #[test]
    fn convolution_identity_and_smoothing() {
        let mut rng = SovRng::seed_from_u64(9);
        let img = render_scene(40, 24, &[(20.0, 12.0, 2.0, 0.9)], 0.2, &mut rng);
        let identity = [[0.0; 3], [0.0, 1.0, 0.0], [0.0; 3]];
        let same = convolve3x3(&img, &identity, None);
        assert_eq!(same, img);
        // Smoothing reduces total variation.
        let tv = |im: &GrayImage| -> f32 {
            let mut t = 0.0;
            for y in 0..im.height() as isize {
                for x in 1..im.width() as isize {
                    t += (im.get(x, y) - im.get(x - 1, y)).abs();
                }
            }
            t
        };
        let smooth = convolve3x3(&img, &SMOOTH_3X3, None);
        assert!(tv(&smooth) < tv(&img));
    }

    #[test]
    fn convolution_pooled_is_bit_identical() {
        use sov_runtime::pool::WorkerPool;
        let mut rng = SovRng::seed_from_u64(10);
        let img = render_scene(61, 47, &[(30.0, 20.0, 3.0, 0.8)], 0.3, &mut rng);
        let serial = convolve3x3(&img, &SMOOTH_3X3, None);
        for lanes in [1, 2, 4, 8] {
            let pool = WorkerPool::new(lanes);
            assert_eq!(convolve3x3(&img, &SMOOTH_3X3, Some(&pool)), serial);
        }
    }

    #[test]
    fn pyramid_halves_dimensions() {
        let mut rng = SovRng::seed_from_u64(11);
        let img = render_scene(64, 48, &[(32.0, 24.0, 4.0, 0.9)], 0.1, &mut rng);
        let levels = pyramid(&img, 3, None);
        assert_eq!(levels.len(), 3);
        assert_eq!((levels[1].width(), levels[1].height()), (32, 24));
        assert_eq!((levels[2].width(), levels[2].height()), (16, 12));
        // Downsampling preserves gross brightness.
        assert!((levels[0].mean() - levels[2].mean()).abs() < 0.05);
        // Tiny images stop early rather than degenerate.
        let tiny = pyramid(&GrayImage::new(5, 5), 4, None);
        assert!(tiny.len() < 4);
    }

    #[test]
    fn pyramid_pooled_is_bit_identical() {
        use sov_runtime::pool::WorkerPool;
        let mut rng = SovRng::seed_from_u64(12);
        let img = render_scene(63, 49, &[(20.0, 20.0, 3.0, 0.7)], 0.2, &mut rng);
        let serial = pyramid(&img, 3, None);
        let pool = WorkerPool::new(4);
        assert_eq!(pyramid(&img, 3, Some(&pool)), serial);
    }

    #[test]
    fn arena_backed_pyramid_is_bit_identical_and_allocation_free() {
        let arena = FrameArena::new();
        let mut rng = SovRng::seed_from_u64(14);
        let img = render_scene(63, 49, &[(20.0, 20.0, 3.0, 0.7)], 0.2, &mut rng);
        let reference = pyramid(&img, 3, None);
        // Warm the arena with one frame's worth of planes, then recycle.
        for level in pyramid_with(&img, 3, None, Some(&arena)) {
            arena.recycle(level.into_raw());
        }
        arena.reset_stats();
        for _ in 0..3 {
            let levels = pyramid_with(&img, 3, None, Some(&arena));
            assert_eq!(levels, reference);
            for level in levels {
                arena.recycle(level.into_raw());
            }
        }
        let stats = arena.stats();
        assert_eq!(stats.allocations, 0, "steady state must not allocate");
        assert!(stats.reuses >= 9, "every plane should come from the arena");
    }

    #[test]
    fn ncc_window_matches_patch_based_ncc() {
        let mut rng = SovRng::seed_from_u64(13);
        let a = render_scene(48, 32, &[(24.0, 16.0, 3.0, 0.9)], 0.3, &mut rng);
        let b = render_scene(48, 32, &[(26.0, 17.0, 3.0, 0.9)], 0.3, &mut rng);
        for &(acx, acy, bcx, bcy, size) in &[
            (24isize, 16isize, 26isize, 17isize, 9usize),
            (0, 0, 47, 31, 7),    // zero-padded borders
            (-3, -3, 50, 40, 5),  // fully/partially outside
            (10, 10, 10, 10, 11), // self-comparison
        ] {
            let via_patches = ncc(&a.patch(acx, acy, size), &b.patch(bcx, bcy, size));
            let direct = ncc_window(&a, (acx, acy), &b, (bcx, bcy), size);
            assert_eq!(
                direct.to_bits(),
                via_patches.to_bits(),
                "window ({acx},{acy})↔({bcx},{bcy}) size {size}"
            );
        }
    }

    #[test]
    fn deterministic_rendering() {
        let mut r1 = SovRng::seed_from_u64(3);
        let mut r2 = SovRng::seed_from_u64(3);
        let a = render_scene(16, 16, &[(8.0, 8.0, 1.5, 0.5)], 0.1, &mut r1);
        let b = render_scene(16, 16, &[(8.0, 8.0, 1.5, 0.5)], 0.1, &mut r2);
        assert_eq!(a, b);
    }
}
