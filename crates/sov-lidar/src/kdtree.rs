//! kd-tree for nearest-neighbor and radius queries.
//!
//! The irregular kernel at the heart of LiDAR processing (Sec. III-D: "the
//! kd-tree–based neighbor search"). The traced query variants report every
//! tree node and point record touched, which the [`crate::traffic`] module
//! converts into memory-access streams for the cache study.

use crate::cloud::{dist_sq, Point, PointCloud};
use sov_runtime::pool::WorkerPool;

/// Subtrees smaller than this are never split into separate build jobs.
const SUBTREE_SPLIT_MIN: usize = 512;

/// Upper bound on parallel subtree build jobs. Fixed (never derived from
/// worker count) so the job layout — and the tree — is identical for any
/// pool size.
const MAX_SUBTREE_JOBS: usize = 16;

/// One kd-tree node (index-based, stored in a flat arena).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Node {
    /// Index of the point stored at this node.
    point: usize,
    /// Split dimension (0..3).
    axis: usize,
    /// Left child (arena index) or `usize::MAX`.
    left: usize,
    /// Right child (arena index) or `usize::MAX`.
    right: usize,
}

const NONE: usize = usize::MAX;

/// Events emitted by traced traversals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// A tree node (arena index) was visited.
    Node(usize),
    /// A point record (cloud index) was read.
    Point(usize),
}

/// A kd-tree over a point cloud (the cloud is borrowed per query).
#[derive(Debug, Clone, PartialEq)]
pub struct KdTree {
    nodes: Vec<Node>,
    root: usize,
    /// Copies of the points in build order (kept so queries do not require
    /// the original cloud).
    points: Vec<Point>,
}

impl KdTree {
    /// Builds a balanced kd-tree (median splits) over a cloud.
    ///
    /// Returns an empty tree for an empty cloud.
    #[must_use]
    pub fn build(cloud: &PointCloud) -> Self {
        Self::build_with(cloud, None)
    }

    /// [`Self::build`] with optional intra-frame parallelism.
    ///
    /// The arena layout is pre-order (a node, then its whole left subtree,
    /// then its right), so a subtree of `m` points occupies exactly `m`
    /// contiguous arena slots whose positions are known before the subtree
    /// is built. The top of the tree is expanded serially into at most
    /// [`MAX_SUBTREE_JOBS`] subtree jobs owning disjoint node and index
    /// ranges; jobs then build concurrently, and the resulting tree is
    /// bit-identical to the serial build for any worker count.
    #[must_use]
    pub fn build_with(cloud: &PointCloud, pool: Option<&WorkerPool>) -> Self {
        let points: Vec<Point> = cloud.points().to_vec();
        let n = points.len();
        if n == 0 {
            return Self {
                nodes: Vec::new(),
                root: NONE,
                points,
            };
        }
        let mut indices: Vec<usize> = (0..n).collect();
        let mut nodes = vec![
            Node {
                point: 0,
                axis: 0,
                left: NONE,
                right: NONE,
            };
            n
        ];
        /// One pending subtree: disjoint arena and index ranges plus the
        /// depth and absolute arena offset of its root.
        struct Job<'a> {
            nodes: &'a mut [Node],
            indices: &'a mut [usize],
            depth: usize,
            base: usize,
        }
        let mut jobs: Vec<Job> = vec![Job {
            nodes: &mut nodes,
            indices: &mut indices,
            depth: 0,
            base: 0,
        }];
        // Serial frontier expansion: repeatedly split the largest job's
        // root until every job is small or the job cap is reached. The
        // split sequence depends only on the input, never the pool.
        while jobs.len() < MAX_SUBTREE_JOBS {
            let Some(pos) = jobs
                .iter()
                .enumerate()
                .filter(|(_, j)| j.indices.len() > SUBTREE_SPLIT_MIN)
                .max_by_key(|(_, j)| j.indices.len())
                .map(|(i, _)| i)
            else {
                break;
            };
            let job = jobs.swap_remove(pos);
            let axis = job.depth % 3;
            job.indices.sort_by(|&a, &b| {
                points[a][axis]
                    .partial_cmp(&points[b][axis])
                    .expect("finite coordinates")
            });
            let mid = job.indices.len() / 2;
            let (root_node, child_nodes) = job.nodes.split_first_mut().expect("non-empty job");
            let (left_nodes, right_nodes) = child_nodes.split_at_mut(mid);
            let (left_indices, rest) = job.indices.split_at_mut(mid);
            let (mid_index, right_indices) = rest.split_first_mut().expect("mid in range");
            *root_node = Node {
                point: *mid_index,
                axis,
                left: if left_indices.is_empty() {
                    NONE
                } else {
                    job.base + 1
                },
                right: if right_indices.is_empty() {
                    NONE
                } else {
                    job.base + 1 + mid
                },
            };
            if !left_indices.is_empty() {
                jobs.push(Job {
                    nodes: left_nodes,
                    indices: left_indices,
                    depth: job.depth + 1,
                    base: job.base + 1,
                });
            }
            if !right_indices.is_empty() {
                jobs.push(Job {
                    nodes: right_nodes,
                    indices: right_indices,
                    depth: job.depth + 1,
                    base: job.base + 1 + mid,
                });
            }
        }
        // Each job writes only its own ranges, so processing order cannot
        // affect the result; chunk size 1 lets the pool balance the
        // unequal subtree sizes.
        let build_job = |job: &mut Job| {
            Self::build_into(&points, job.indices, job.depth, job.base, job.nodes);
        };
        match pool {
            Some(pool) => pool.parallel_for(&mut jobs, 1, |_, chunk| {
                for job in chunk {
                    build_job(job);
                }
            }),
            None => {
                for job in &mut jobs {
                    build_job(job);
                }
            }
        }
        drop(jobs);
        Self {
            nodes,
            root: 0,
            points,
        }
    }

    /// Serial pre-order subtree build into a pre-sized arena range.
    /// `nodes.len() == indices.len()`; `base` is the absolute arena index
    /// of `nodes[0]`.
    fn build_into(
        points: &[Point],
        indices: &mut [usize],
        depth: usize,
        base: usize,
        nodes: &mut [Node],
    ) {
        if indices.is_empty() {
            return;
        }
        let axis = depth % 3;
        indices.sort_by(|&a, &b| {
            points[a][axis]
                .partial_cmp(&points[b][axis])
                .expect("finite coordinates")
        });
        let mid = indices.len() / 2;
        let (root_node, child_nodes) = nodes.split_first_mut().expect("non-empty subtree");
        let (left_nodes, right_nodes) = child_nodes.split_at_mut(mid);
        let (left_indices, rest) = indices.split_at_mut(mid);
        let (mid_index, right_indices) = rest.split_first_mut().expect("mid in range");
        *root_node = Node {
            point: *mid_index,
            axis,
            left: if left_indices.is_empty() {
                NONE
            } else {
                base + 1
            },
            right: if right_indices.is_empty() {
                NONE
            } else {
                base + 1 + mid
            },
        };
        Self::build_into(points, left_indices, depth + 1, base + 1, left_nodes);
        Self::build_into(
            points,
            right_indices,
            depth + 1,
            base + 1 + mid,
            right_nodes,
        );
    }

    /// Number of points indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of arena nodes (equals `len`).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The stored point at cloud index `idx` (as passed to [`Self::build`]).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn point(&self, idx: usize) -> &Point {
        &self.points[idx]
    }

    /// Nearest neighbor of `query`: `(point index, distance)`; `None` for
    /// an empty tree.
    #[must_use]
    pub fn nearest(&self, query: &Point) -> Option<(usize, f64)> {
        self.nearest_traced(query, &mut |_| {})
    }

    /// Nearest neighbor with a trace callback invoked for every node and
    /// point record touched.
    pub fn nearest_traced(
        &self,
        query: &Point,
        trace: &mut impl FnMut(Touch),
    ) -> Option<(usize, f64)> {
        if self.root == NONE {
            return None;
        }
        let mut best = (usize::MAX, f64::INFINITY);
        self.nn_rec(self.root, query, &mut best, trace);
        (best.0 != usize::MAX).then(|| (best.0, best.1.sqrt()))
    }

    fn nn_rec(
        &self,
        node_idx: usize,
        query: &Point,
        best: &mut (usize, f64),
        trace: &mut impl FnMut(Touch),
    ) {
        if node_idx == NONE {
            return;
        }
        trace(Touch::Node(node_idx));
        let node = self.nodes[node_idx];
        trace(Touch::Point(node.point));
        let d = dist_sq(query, &self.points[node.point]);
        if d < best.1 {
            *best = (node.point, d);
        }
        let delta = query[node.axis] - self.points[node.point][node.axis];
        let (near, far) = if delta < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        self.nn_rec(near, query, best, trace);
        // Prune the far side unless the splitting plane is closer than the
        // current best.
        if delta * delta < best.1 {
            self.nn_rec(far, query, best, trace);
        }
    }

    /// All point indices within `radius` of `query`.
    #[must_use]
    pub fn radius_search(&self, query: &Point, radius: f64) -> Vec<usize> {
        self.radius_search_traced(query, radius, &mut |_| {})
    }

    /// [`Self::radius_search`] writing into a caller-supplied buffer — the
    /// zero-allocation form used by the clustering hot loop, which issues
    /// one query per cloud point. `out` is cleared first; indices land in
    /// the same traversal order as [`Self::radius_search`].
    pub fn radius_search_into(&self, query: &Point, radius: f64, out: &mut Vec<usize>) {
        out.clear();
        if self.root != NONE {
            self.radius_rec(self.root, query, radius * radius, radius, out, &mut |_| {});
        }
    }

    /// Radius search with a trace callback.
    pub fn radius_search_traced(
        &self,
        query: &Point,
        radius: f64,
        trace: &mut impl FnMut(Touch),
    ) -> Vec<usize> {
        let mut out = Vec::new();
        if self.root != NONE {
            self.radius_rec(self.root, query, radius * radius, radius, &mut out, trace);
        }
        out
    }

    fn radius_rec(
        &self,
        node_idx: usize,
        query: &Point,
        r_sq: f64,
        r: f64,
        out: &mut Vec<usize>,
        trace: &mut impl FnMut(Touch),
    ) {
        if node_idx == NONE {
            return;
        }
        trace(Touch::Node(node_idx));
        let node = self.nodes[node_idx];
        trace(Touch::Point(node.point));
        if dist_sq(query, &self.points[node.point]) <= r_sq {
            out.push(node.point);
        }
        let delta = query[node.axis] - self.points[node.point][node.axis];
        if delta < r {
            self.radius_rec(node.left, query, r_sq, r, out, trace);
        }
        if delta > -r {
            self.radius_rec(node.right, query, r_sq, r, out, trace);
        }
    }

    /// `k` nearest neighbors of `query` as `(index, distance)`, nearest
    /// first. Returns fewer when the tree is smaller than `k`.
    ///
    /// Candidates are kept in a bounded max-heap over the same pruned
    /// traversal as [`Self::nearest`], so a query visits `O(k + log n)`
    /// nodes instead of scoring the whole cloud. Ordering is
    /// lexicographic on `(distance, index)`, which matches a stable
    /// full sort by distance exactly — including ties.
    #[must_use]
    pub fn k_nearest(&self, query: &Point, k: usize) -> Vec<(usize, f64)> {
        if k == 0 || self.root == NONE {
            return Vec::new();
        }
        let mut heap = KnnHeap::new(k);
        self.knn_rec(self.root, query, &mut heap);
        heap.into_sorted()
    }

    fn knn_rec(&self, node_idx: usize, query: &Point, heap: &mut KnnHeap) {
        if node_idx == NONE {
            return;
        }
        let node = self.nodes[node_idx];
        heap.offer(dist_sq(query, &self.points[node.point]), node.point);
        let delta = query[node.axis] - self.points[node.point][node.axis];
        let (near, far) = if delta < 0.0 {
            (node.left, node.right)
        } else {
            (node.right, node.left)
        };
        self.knn_rec(near, query, heap);
        // Once the heap is full the far side can only matter if the
        // splitting plane is at most the worst kept distance; `<=` (not
        // `<`) keeps equal-distance candidates reachable so distance
        // ties still resolve to the lowest index.
        if delta * delta <= heap.worst() {
            self.knn_rec(far, query, heap);
        }
    }
}

/// Bounded max-heap of the best `k` `(distance², index)` candidates seen
/// so far, ordered lexicographically so equal distances compare by index.
/// The root holds the worst kept candidate; a better offer replaces it in
/// `O(log k)` without allocating.
struct KnnHeap {
    k: usize,
    items: Vec<(f64, usize)>,
}

/// Lexicographic `(distance², index)` comparison; total because
/// distances are finite.
fn knn_less(a: (f64, usize), b: (f64, usize)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

impl KnnHeap {
    fn new(k: usize) -> Self {
        Self {
            k,
            items: Vec::with_capacity(k),
        }
    }

    /// Worst distance² kept; infinite until the heap is full, so every
    /// candidate and every subtree survives pruning while filling.
    fn worst(&self) -> f64 {
        if self.items.len() < self.k {
            f64::INFINITY
        } else {
            self.items[0].0
        }
    }

    fn offer(&mut self, d_sq: f64, index: usize) {
        let cand = (d_sq, index);
        if self.items.len() < self.k {
            self.items.push(cand);
            let mut i = self.items.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if knn_less(self.items[parent], self.items[i]) {
                    self.items.swap(i, parent);
                    i = parent;
                } else {
                    break;
                }
            }
        } else if knn_less(cand, self.items[0]) {
            self.items[0] = cand;
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut largest = i;
                if l < self.items.len() && knn_less(self.items[largest], self.items[l]) {
                    largest = l;
                }
                if r < self.items.len() && knn_less(self.items[largest], self.items[r]) {
                    largest = r;
                }
                if largest == i {
                    break;
                }
                self.items.swap(i, largest);
                i = largest;
            }
        }
    }

    /// Drains into `(index, distance)` pairs sorted nearest-first.
    fn into_sorted(self) -> Vec<(usize, f64)> {
        let mut items = self.items;
        items.sort_by(|a, b| {
            if knn_less(*a, *b) {
                std::cmp::Ordering::Less
            } else if knn_less(*b, *a) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        items.into_iter().map(|(d, i)| (i, d.sqrt())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sov_math::SovRng;

    fn random_cloud(n: usize, seed: u64) -> PointCloud {
        let mut rng = SovRng::seed_from_u64(seed);
        PointCloud::from_points(
            (0..n)
                .map(|_| {
                    [
                        rng.uniform(-10.0, 10.0),
                        rng.uniform(-10.0, 10.0),
                        rng.uniform(0.0, 5.0),
                    ]
                })
                .collect(),
        )
    }

    fn brute_nearest(cloud: &PointCloud, q: &Point) -> (usize, f64) {
        cloud
            .points()
            .iter()
            .enumerate()
            .map(|(i, p)| (i, dist_sq(q, p)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(i, d)| (i, d.sqrt()))
            .unwrap()
    }

    #[test]
    fn nearest_matches_brute_force() {
        let cloud = random_cloud(500, 1);
        let tree = KdTree::build(&cloud);
        let mut rng = SovRng::seed_from_u64(2);
        for _ in 0..200 {
            let q = [
                rng.uniform(-12.0, 12.0),
                rng.uniform(-12.0, 12.0),
                rng.uniform(-1.0, 6.0),
            ];
            let (ti, td) = tree.nearest(&q).unwrap();
            let (bi, bd) = brute_nearest(&cloud, &q);
            assert!((td - bd).abs() < 1e-12, "distance mismatch at {q:?}");
            // Ties can pick either index; distances must agree.
            let _ = (ti, bi);
        }
    }

    #[test]
    fn radius_search_matches_brute_force() {
        let cloud = random_cloud(300, 3);
        let tree = KdTree::build(&cloud);
        let q = [0.5, -0.5, 2.0];
        let r = 3.0;
        let mut from_tree = tree.radius_search(&q, r);
        from_tree.sort_unstable();
        let mut brute: Vec<usize> = cloud
            .points()
            .iter()
            .enumerate()
            .filter(|(_, p)| dist_sq(&q, p) <= r * r)
            .map(|(i, _)| i)
            .collect();
        brute.sort_unstable();
        assert_eq!(from_tree, brute);
        assert!(!from_tree.is_empty());
    }

    #[test]
    fn k_nearest_sorted_and_sized() {
        let cloud = random_cloud(100, 4);
        let tree = KdTree::build(&cloud);
        let knn = tree.k_nearest(&[0.0, 0.0, 0.0], 10);
        assert_eq!(knn.len(), 10);
        for w in knn.windows(2) {
            assert!(w[0].1 <= w[1].1, "must be sorted by distance");
        }
        assert!(tree.k_nearest(&[0.0, 0.0, 0.0], 0).is_empty());
        assert_eq!(tree.k_nearest(&[0.0, 0.0, 0.0], 1000).len(), 100);
    }

    #[test]
    fn empty_tree_behaviour() {
        let tree = KdTree::build(&PointCloud::new());
        assert!(tree.is_empty());
        assert!(tree.nearest(&[0.0, 0.0, 0.0]).is_none());
        assert!(tree.radius_search(&[0.0, 0.0, 0.0], 5.0).is_empty());
    }

    #[test]
    fn trace_reports_touches() {
        let cloud = random_cloud(200, 5);
        let tree = KdTree::build(&cloud);
        let mut nodes = 0usize;
        let mut points = 0usize;
        let _ = tree.nearest_traced(&[1.0, 1.0, 1.0], &mut |t| match t {
            Touch::Node(_) => nodes += 1,
            Touch::Point(_) => points += 1,
        });
        assert!(nodes > 0 && points > 0);
        assert_eq!(nodes, points, "each visited node reads its point");
        // Pruning means we touch far fewer than all nodes.
        assert!(nodes < 200, "visited {nodes} of 200");
    }

    #[test]
    fn traversal_is_logarithmic_ish() {
        let small = KdTree::build(&random_cloud(100, 6));
        let large = KdTree::build(&random_cloud(10_000, 6));
        let count = |tree: &KdTree| {
            let mut n = 0;
            let _ = tree.nearest_traced(&[0.0, 0.0, 0.0], &mut |t| {
                if matches!(t, Touch::Node(_)) {
                    n += 1;
                }
            });
            n
        };
        let (cs, cl) = (count(&small), count(&large));
        // 100× the points should cost far less than 100× the visits.
        assert!(cl < cs * 20, "small {cs}, large {cl}");
    }

    #[test]
    fn node_count_equals_point_count() {
        let cloud = random_cloud(137, 7);
        let tree = KdTree::build(&cloud);
        assert_eq!(tree.num_nodes(), 137);
        assert_eq!(tree.len(), 137);
    }

    #[test]
    fn parallel_build_is_bit_identical() {
        // Large enough that the frontier expansion reaches the job cap and
        // every subtree job does real work.
        let cloud = random_cloud(9000, 8);
        let serial = KdTree::build(&cloud);
        for lanes in [1, 2, 4, 8] {
            let pool = WorkerPool::new(lanes);
            let parallel = KdTree::build_with(&cloud, Some(&pool));
            assert_eq!(parallel, serial, "lanes = {lanes}");
        }
        // Small clouds skip the expansion entirely and still agree.
        let small = random_cloud(40, 9);
        let pool = WorkerPool::new(4);
        assert_eq!(
            KdTree::build_with(&small, Some(&pool)),
            KdTree::build(&small)
        );
        assert!(KdTree::build_with(&PointCloud::new(), Some(&pool)).is_empty());
    }
}
