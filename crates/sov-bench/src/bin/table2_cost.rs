//! Table II — cost breakdown and LiDAR comparison, plus the Sec. VII TCO
//! extension.

use sov_vehicle::cost::{TcoModel, VehicleBom};

fn main() {
    sov_bench::banner(
        "Table II",
        "Cost breakdown of our vehicle vs LiDAR-based vehicles",
    );
    for bom in [VehicleBom::camera_based(), VehicleBom::lidar_based()] {
        sov_bench::section(bom.name);
        for c in &bom.components {
            println!("  {c}");
        }
        println!("  sensor subtotal: ${:.0}", bom.sensor_total_usd());
        println!(
            "  retail price:    ${:.0}{}",
            bom.retail_price_usd,
            if bom.retail_price_usd >= 300_000.0 {
                " (estimated lower bound)"
            } else {
                ""
            }
        );
    }
    sov_bench::section("TCO extension (Sec. VII)");
    let tco = TcoModel::tourist_site_defaults();
    println!("  tourist-site deployment, camera-based vehicle:");
    println!("    annual cost:    ${:.0}", tco.annual_cost_usd());
    println!(
        "    cost per trip:  ${:.2}  (supports the $1/trip fare)",
        tco.cost_per_trip_usd()
    );
    let lidar_tco = TcoModel {
        vehicle_usd: VehicleBom::lidar_based().retail_price_usd,
        ..TcoModel::tourist_site_defaults()
    };
    println!("  same deployment with a LiDAR-based vehicle:");
    println!("    annual cost:    ${:.0}", lidar_tco.annual_cost_usd());
    println!(
        "    cost per trip:  ${:.2}  ({} the camera-based cost)",
        lidar_tco.cost_per_trip_usd(),
        sov_bench::times(lidar_tco.cost_per_trip_usd() / tco.cost_per_trip_usd())
    );
}
