//! ICP point-cloud registration — the **localization** workload of Fig. 4.
//!
//! LiDAR-based localization aligns a live scan against a map cloud; the
//! paper measures it at "100 ms to 1 s on a high-end CPU+GPU machine"
//! versus 25 ms for vision-based localization on the FPGA. The vehicle
//! moves in the plane, so the estimated transform is planar (yaw + x/y),
//! solved in closed form each ICP iteration from kd-tree correspondences.

use crate::cloud::PointCloud;
use crate::kdtree::{KdTree, Touch};

/// A planar rigid transform estimate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanarTransform {
    /// Rotation about +z (rad).
    pub theta: f64,
    /// Translation x (m).
    pub tx: f64,
    /// Translation y (m).
    pub ty: f64,
}

/// ICP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IcpConfig {
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the per-iteration transform delta.
    pub tolerance: f64,
    /// Reject correspondences farther than this (m).
    pub max_correspondence_m: f64,
}

impl Default for IcpConfig {
    fn default() -> Self {
        Self {
            max_iterations: 30,
            tolerance: 1e-5,
            max_correspondence_m: 2.0,
        }
    }
}

/// ICP result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IcpResult {
    /// Estimated transform mapping the source cloud onto the target.
    pub transform: PlanarTransform,
    /// Iterations run.
    pub iterations: usize,
    /// Final mean correspondence distance (m).
    pub mean_residual_m: f64,
    /// Whether the tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Aligns `source` to `target` (map) with point-to-point planar ICP.
///
/// Returns `None` if either cloud is empty or no correspondences survive
/// the distance gate.
#[must_use]
pub fn icp(source: &PointCloud, target: &KdTree, config: &IcpConfig) -> Option<IcpResult> {
    icp_traced(source, target, config, &mut |_| {})
}

/// ICP with a memory-trace callback (forwarded to every kd-tree query),
/// used by the Fig. 4 traffic study.
pub fn icp_traced(
    source: &PointCloud,
    target: &KdTree,
    config: &IcpConfig,
    trace: &mut impl FnMut(Touch),
) -> Option<IcpResult> {
    if source.is_empty() || target.is_empty() {
        return None;
    }
    let mut current = source.clone();
    let mut total = PlanarTransform::default();
    let mut iterations = 0;
    let mut converged = false;
    let mut mean_residual = f64::INFINITY;
    let gate_sq = config.max_correspondence_m * config.max_correspondence_m;
    for _ in 0..config.max_iterations {
        iterations += 1;
        // Correspondences via (traced) nearest-neighbor queries.
        let mut pairs: Vec<([f64; 3], [f64; 3])> = Vec::new();
        let mut residual_sum = 0.0;
        for p in current.points() {
            if let Some((idx, dist)) = target.nearest_traced(p, trace) {
                if dist * dist <= gate_sq {
                    pairs.push((*p, *target.point(idx)));
                    residual_sum += dist;
                }
            }
        }
        if pairs.is_empty() {
            return None;
        }
        mean_residual = residual_sum / pairs.len() as f64;
        // Closed-form planar alignment (Horn, restricted to z-rotation):
        // θ = atan2(Σ cross, Σ dot) over centered pairs.
        let n = pairs.len() as f64;
        let (mut scx, mut scy, mut tcx, mut tcy) = (0.0, 0.0, 0.0, 0.0);
        for (s, t) in &pairs {
            scx += s[0];
            scy += s[1];
            tcx += t[0];
            tcy += t[1];
        }
        let (scx, scy, tcx, tcy) = (scx / n, scy / n, tcx / n, tcy / n);
        let (mut cross, mut dot) = (0.0, 0.0);
        for (s, t) in &pairs {
            let (sx, sy) = (s[0] - scx, s[1] - scy);
            let (px, py) = (t[0] - tcx, t[1] - tcy);
            cross += sx * py - sy * px;
            dot += sx * px + sy * py;
        }
        let dtheta = cross.atan2(dot);
        let (sn, cs) = dtheta.sin_cos();
        let dtx = tcx - (cs * scx - sn * scy);
        let dty = tcy - (sn * scx + cs * scy);
        // Apply the increment.
        current = current.transformed(dtheta, dtx, dty);
        total = compose(&total, dtheta, dtx, dty);
        let delta = dtheta.abs() + dtx.abs() + dty.abs();
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }
    Some(IcpResult {
        transform: total,
        iterations,
        mean_residual_m: mean_residual,
        converged,
    })
}

fn compose(t: &PlanarTransform, dtheta: f64, dtx: f64, dty: f64) -> PlanarTransform {
    // New transform: p ↦ R_dθ (R_θ p + t) + dt = R_{θ+dθ} p + (R_dθ t + dt).
    let (s, c) = dtheta.sin_cos();
    PlanarTransform {
        theta: t.theta + dtheta,
        tx: c * t.tx - s * t.ty + dtx,
        ty: s * t.tx + c * t.ty + dty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::dist_sq;
    use sov_math::SovRng;

    fn scene(seed: u64) -> PointCloud {
        let mut rng = SovRng::seed_from_u64(seed);
        PointCloud::synthetic_street_scene(800, 0, &mut rng)
    }

    #[test]
    fn recovers_known_transform() {
        let map = scene(1);
        let tree = KdTree::build(&map);
        // Live scan: the map observed from a displaced pose, i.e. the map
        // transformed by the inverse of (θ=0.05, t=(0.4, −0.3)).
        let truth = PlanarTransform {
            theta: 0.05,
            tx: 0.4,
            ty: -0.3,
        };
        let (s, c) = (-truth.theta).sin_cos();
        let inv_tx = -(c * truth.tx - s * truth.ty);
        let inv_ty = -(s * truth.tx + c * truth.ty);
        let scan = map.transformed(-truth.theta, inv_tx, inv_ty);
        let result = icp(&scan, &tree, &IcpConfig::default()).expect("clouds align");
        assert!(result.converged, "ICP should converge");
        assert!(
            (result.transform.theta - truth.theta).abs() < 1e-3,
            "theta {}",
            result.transform.theta
        );
        assert!(
            (result.transform.tx - truth.tx).abs() < 0.02,
            "tx {}",
            result.transform.tx
        );
        assert!(
            (result.transform.ty - truth.ty).abs() < 0.02,
            "ty {}",
            result.transform.ty
        );
        assert!(result.mean_residual_m < 0.01);
    }

    #[test]
    fn identity_alignment_converges_immediately() {
        let map = scene(2);
        let tree = KdTree::build(&map);
        let result = icp(&map, &tree, &IcpConfig::default()).unwrap();
        assert!(result.converged);
        assert!(result.iterations <= 2);
        assert!(result.transform.theta.abs() < 1e-9);
        assert!(result.mean_residual_m < 1e-9);
    }

    #[test]
    fn empty_inputs_yield_none() {
        let map = scene(3);
        let tree = KdTree::build(&map);
        assert!(icp(&PointCloud::new(), &tree, &IcpConfig::default()).is_none());
        let empty_tree = KdTree::build(&PointCloud::new());
        assert!(icp(&map, &empty_tree, &IcpConfig::default()).is_none());
    }

    #[test]
    fn correspondence_gate_rejects_distant_clouds() {
        let map = scene(4);
        let tree = KdTree::build(&map);
        // A scan displaced far beyond the gate.
        let scan = map.transformed(0.0, 500.0, 500.0);
        let cfg = IcpConfig {
            max_correspondence_m: 0.5,
            ..IcpConfig::default()
        };
        // All correspondences are gated out except possibly chance overlaps;
        // far clouds produce None or a non-converged, high-residual result.
        match icp(&scan, &tree, &cfg) {
            None => {}
            Some(r) => assert!(!r.converged || r.mean_residual_m > 0.1),
        }
    }

    #[test]
    fn traced_icp_touches_many_points() {
        let map = scene(5);
        let tree = KdTree::build(&map);
        let scan = map.transformed(0.01, 0.1, 0.05);
        let mut touches = 0u64;
        let _ = icp_traced(&scan, &tree, &IcpConfig::default(), &mut |_| touches += 1).unwrap();
        // Each iteration runs one NN query per source point.
        assert!(touches > 10_000, "touches {touches}");
    }

    #[test]
    fn compose_matches_sequential_application() {
        let cloud = scene(6);
        let step1 = (0.1, 0.5, -0.2);
        let step2 = (0.05, -0.3, 0.4);
        let via_points = cloud
            .transformed(step1.0, step1.1, step1.2)
            .transformed(step2.0, step2.1, step2.2);
        let t1 = compose(&PlanarTransform::default(), step1.0, step1.1, step1.2);
        let t12 = compose(&t1, step2.0, step2.1, step2.2);
        let via_compose = cloud.transformed(t12.theta, t12.tx, t12.ty);
        for (a, b) in via_points.points().iter().zip(via_compose.points()) {
            assert!(dist_sq(a, b) < 1e-18, "{a:?} vs {b:?}");
        }
    }
}
