//! Fault-injection characterization: every fault kind × deployment
//! scenario, against the nominal baseline.
//!
//! For each scenario the harness first drives the nominal plan, then
//! re-drives with each [`FaultKind`] active over t = 4 s … 14 s at its
//! default intensity, and reports outcome, degraded-mode residency,
//! recovery latency, and distance retained vs nominal. The sweep is the
//! executable form of the paper's safety argument: **no single-modality
//! fault may produce a collision** — the worst allowed outcome is lost
//! availability (a slower or stopped vehicle).
//!
//! Each cell is driven twice: once serially (the committed simulated
//! row) and once through the depth-3 / 4-worker pipelined runtime, whose
//! [`DriveReport`] must stay **byte-identical** to the serial drive —
//! faults included. The piped drive's latency-ledger [`TailReport`] is
//! what fills each row's `attribution` object: the fault's end-to-end
//! tail cost split into compute, ring-queue wait, and drain/barrier
//! stall at p50/p99/p99.9/max, the same shape `BENCH_pipeline.json`
//! reports. Attribution is wall-clock telemetry and varies run to run;
//! every other field is simulated and a fixed seed reproduces it byte
//! for byte.
//!
//! `--seed N` picks the seed (default 42); `--json PATH` additionally
//! writes the matrix as JSON.

use sov_core::config::VehicleConfig;
use sov_core::health::DegradationMode;
use sov_core::sov::{DriveOutcome, DriveReport, Sov};
use sov_core::tail::TailReport;
use sov_fault::{FaultKind, FaultPlan};
use sov_math::stats::Summary;
use sov_runtime::PerfContext;
use sov_sim::time::SimTime;
use sov_world::scenario::Scenario;

const FRAMES: u64 = 300;
const FAULT_START_S: u64 = 4;
const FAULT_END_S: u64 = 14;

struct Run {
    scenario: &'static str,
    fault: String,
    report: DriveReport,
    /// Latency-ledger attribution of the piped re-drive (wall-clock).
    attribution: TailReport,
    /// Whether the piped re-drive's report matched the serial one bit
    /// for bit (the DESIGN.md §8 invariant, under this fault).
    piped_identical: bool,
}

fn drive(scenario: &Scenario, seed: u64, plan: &FaultPlan) -> DriveReport {
    let mut sov = Sov::new(VehicleConfig::perceptin_pod(), seed);
    sov.drive_with_plan(scenario, FRAMES, plan)
        .expect("FRAMES > 0")
}

/// Re-drives the cell through the pipelined runtime (depth 3, 4 workers
/// — the visual front-end on its own lane) to source the attribution
/// ledger. The simulated report must not change.
fn drive_piped(scenario: &Scenario, seed: u64, plan: &FaultPlan) -> DriveReport {
    let mut sov = Sov::new(VehicleConfig::perceptin_pod(), seed);
    sov.set_perf(PerfContext::with_pipeline_workers(3, 4));
    sov.drive_with_plan(scenario, FRAMES, plan)
        .expect("FRAMES > 0")
}

/// `[p50, p99, p99.9, max]` — the four points every attribution column
/// reports (the pipeline-matrix convention).
fn quad(s: &mut Summary) -> [f64; 4] {
    [s.percentile(50.0), s.p99(), s.p999(), s.max()]
}

fn quad_json(q: [f64; 4]) -> String {
    format!(
        "{{\"p50\": {:.3}, \"p99\": {:.3}, \"p999\": {:.3}, \"max\": {:.3}}}",
        q[0], q[1], q[2], q[3]
    )
}

fn attribution_json(r: &Run) -> String {
    let mut t = r.attribution.clone();
    format!(
        concat!(
            "{{\"total_ms\": {}, \"compute_ms\": {}, \"queue_ms\": {}, ",
            "\"stall_ms\": {}, \"piped_identical\": {}}}"
        ),
        quad_json(quad(&mut t.total_ms)),
        quad_json(quad(&mut t.compute_ms)),
        quad_json(quad(&mut t.queue_ms)),
        quad_json(quad(&mut t.stall_ms)),
        r.piped_identical,
    )
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Computing-latency tail columns (p50/p99/p99.9/max, ms). The deep
/// tail is where COLA locates the Level-4 safety breakers; a fault that
/// barely moves the mean can still stretch p99.9 by hundreds of ms.
fn tail(rep: &DriveReport) -> (f64, f64, f64, f64) {
    let mut c = rep.computing.clone();
    (c.median(), c.p99(), c.p999(), c.max())
}

fn run_json(r: &Run, nominal_distance: f64) -> String {
    let rep = &r.report;
    let recovery = if !rep.recovery_ms.is_empty() {
        format!("{:.3}", rep.recovery_ms.mean())
    } else {
        "null".to_string()
    };
    let (p50, p99, p999, max) = tail(rep);
    format!(
        concat!(
            "    {{\"scenario\": \"{}\", \"fault\": \"{}\", \"outcome\": \"{:?}\", ",
            "\"distance_m\": {:.3}, \"distance_vs_nominal\": {:.4}, ",
            "\"min_gap_m\": {:.3}, \"mode_ticks\": [{}, {}, {}, {}], ",
            "\"mode_transitions\": {}, \"recovery_ms_mean\": {}, ",
            "\"deadline_misses\": {}, \"can_frames_lost\": {}, ",
            "\"override_engagements\": {}, ",
            "\"computing_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}, ",
            "\"p999\": {:.3}, \"max\": {:.3}}}, ",
            "\"attribution\": {}}}"
        ),
        json_escape(r.scenario),
        json_escape(&r.fault),
        rep.outcome,
        rep.distance_m,
        rep.distance_m / nominal_distance.max(1e-9),
        if rep.min_obstacle_gap_m.is_finite() {
            rep.min_obstacle_gap_m
        } else {
            -1.0
        },
        rep.mode_ticks[0],
        rep.mode_ticks[1],
        rep.mode_ticks[2],
        rep.mode_ticks[3],
        rep.mode_transitions,
        recovery,
        rep.deadline_misses,
        rep.can_frames_lost,
        rep.override_engagements,
        p50,
        p99,
        p999,
        max,
        attribution_json(r),
    )
}

fn main() {
    sov_bench::banner(
        "Fault matrix",
        "Sensor/compute faults × scenarios, vs nominal",
    );
    let seed = sov_bench::seed_from_args();
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());

    let scenarios: Vec<(&'static str, Scenario)> = vec![
        ("fishers-indiana", Scenario::fishers_indiana(seed)),
        ("shenzhen-two-lane", Scenario::shenzhen_two_lane(seed)),
    ];
    let window = (
        SimTime::from_millis(FAULT_START_S * 1000),
        SimTime::from_millis(FAULT_END_S * 1000),
    );

    let mut runs: Vec<Run> = Vec::new();
    let mut nominal_distance: Vec<f64> = Vec::new();
    let mut safety_violations: Vec<String> = Vec::new();

    for (name, scenario) in &scenarios {
        sov_bench::section(name);
        println!(
            "{:<16} | {:>9} | {:>8} | {:>7} | {:>5} {:>5} {:>5} {:>5} | {:>9} | {:>7} {:>7} | {:>6}",
            "fault",
            "outcome",
            "dist (m)",
            "vs nom",
            "nom",
            "dloc",
            "react",
            "stop",
            "recov(ms)",
            "p99.9ms",
            "max ms",
            "misc"
        );
        println!(
            "{:-<16}-+-{:->9}-+-{:->8}-+-{:->7}-+-{:-<23}-+-{:->9}-+-{:-<15}-+-{:->6}",
            "", "", "", "", "", "", "", ""
        );
        let baseline = drive(scenario, seed, &FaultPlan::nominal());
        let base_dist = baseline.distance_m;
        nominal_distance.push(base_dist);
        let print_row = |fault: &str, rep: &DriveReport, misc: String| {
            let recovery = if !rep.recovery_ms.is_empty() {
                format!("{:.0}", rep.recovery_ms.mean())
            } else {
                "—".to_string()
            };
            let (_, _, p999, max) = tail(rep);
            println!(
                "{:<16} | {:>9} | {:>8.0} | {:>6.0}% | {:>5} {:>5} {:>5} {:>5} | {:>9} | {:>7.0} {:>7.0} | {:>6}",
                fault,
                format!("{:?}", rep.outcome),
                rep.distance_m,
                100.0 * rep.distance_m / base_dist.max(1e-9),
                rep.mode_ticks[0],
                rep.mode_ticks[1],
                rep.mode_ticks[2],
                rep.mode_ticks[3],
                recovery,
                p999,
                max,
                misc,
            );
        };
        print_row("nominal", &baseline, String::new());
        let piped = drive_piped(scenario, seed, &FaultPlan::nominal());
        runs.push(Run {
            scenario: name,
            fault: "nominal".into(),
            piped_identical: piped == baseline,
            attribution: piped.tail,
            report: baseline,
        });

        for kind in FaultKind::ALL {
            let plan = FaultPlan::new(seed).with(kind, window.0, window.1);
            let rep = drive(scenario, seed, &plan);
            let misc = match kind {
                FaultKind::CanFrameLoss => format!("{} lost", rep.can_frames_lost),
                FaultKind::StageOverrun | FaultKind::RprDelaySpike => {
                    format!("{} miss", rep.deadline_misses)
                }
                _ => String::new(),
            };
            if rep.outcome == DriveOutcome::Collision {
                safety_violations.push(format!("{kind} on {name}"));
            }
            print_row(&kind.to_string(), &rep, misc);
            let piped = drive_piped(scenario, seed, &plan);
            runs.push(Run {
                scenario: name,
                fault: kind.to_string(),
                piped_identical: piped == rep,
                attribution: piped.tail,
                report: rep,
            });
        }
    }

    // Where each fault's tail cost lives: the piped re-drive's ledger
    // split (wall-clock; the simulated rows above are the gated facts).
    sov_bench::section("tail attribution (piped d3 w4 re-drive, p99.9 ms)");
    println!(
        "{:<18} | {:<16} | {:>8} | {:>8} | {:>8} | {:>8} | {:>5}",
        "scenario", "fault", "total", "compute", "queue", "stall", "ident"
    );
    let mut piped_ok = true;
    for r in &runs {
        let mut t = r.attribution.clone();
        if !r.piped_identical {
            piped_ok = false;
        }
        println!(
            "{:<18} | {:<16} | {:>8.3} | {:>8.3} | {:>8.3} | {:>8.3} | {:>5}{}",
            r.scenario,
            r.fault,
            t.total_ms.p999(),
            t.compute_ms.p999(),
            t.queue_ms.p999(),
            t.stall_ms.p999(),
            r.piped_identical,
            if r.piped_identical {
                ""
            } else {
                "  REPORT DIVERGED FROM SERIAL"
            },
        );
    }

    // The two acceptance demonstrations of the degradation design.
    sov_bench::section("acceptance");
    let gps = runs
        .iter()
        .find(|r| r.scenario == "fishers-indiana" && r.fault == "gps-outage")
        .expect("swept above");
    let dloc = gps.report.mode_ticks[DegradationMode::DegradedLocalization as usize];
    println!(
        "gps-outage      → {} DegradedLocalization ticks, outcome {:?}: {}",
        dloc,
        gps.report.outcome,
        if dloc > 0 && gps.report.outcome != DriveOutcome::Collision {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let cam = runs
        .iter()
        .find(|r| r.scenario == "fishers-indiana" && r.fault == "camera-stall")
        .expect("swept above");
    let react = cam.report.mode_ticks[DegradationMode::ReactiveOnly as usize];
    println!(
        "camera-stall    → {} ReactiveOnly ticks, outcome {:?}: {}",
        react,
        cam.report.outcome,
        if react > 0 && cam.report.outcome != DriveOutcome::Collision {
            "PASS"
        } else {
            "FAIL"
        }
    );
    let acceptance_ok = dloc > 0
        && react > 0
        && gps.report.outcome != DriveOutcome::Collision
        && cam.report.outcome != DriveOutcome::Collision;

    if let Some(path) = json_path {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"seed\": {seed},\n  \"frames\": {FRAMES},\n"));
        out.push_str(&format!(
            "  \"fault_window_s\": [{FAULT_START_S}, {FAULT_END_S}],\n  \"runs\": [\n"
        ));
        let rows: Vec<String> = runs
            .iter()
            .map(|r| {
                let idx = scenarios
                    .iter()
                    .position(|(n, _)| *n == r.scenario)
                    .expect("known");
                run_json(r, nominal_distance[idx])
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        std::fs::write(&path, out).expect("write JSON report");
        println!("\nwrote {path}");
    }

    if !safety_violations.is_empty() {
        println!("\nSAFETY VIOLATIONS: {}", safety_violations.join(", "));
        std::process::exit(1);
    }
    if !piped_ok {
        eprintln!("determinism violation: a piped re-drive diverged from its serial report");
        std::process::exit(1);
    }
    if !acceptance_ok {
        std::process::exit(1);
    }
    println!("\nno fault produced a collision: failures cost availability, never safety.");
}
