//! Deterministic intra-frame data parallelism (Sec. VI, Fig. 4).
//!
//! The paper's LiDAR case study shows that the real bottleneck of the
//! perception stack is *within* a frame: irregular point-cloud kernels and
//! image processing dominated by memory traffic and redundant data
//! movement. Task-level pipelining (Sec. IV, `sov_core::executor`) overlaps
//! whole stages; this crate supplies the complementary layer — data
//! parallelism *inside* each stage — plus the allocation discipline that
//! makes a steady-state control tick free of heap traffic:
//!
//! * [`pool`] — a std-only persistent [`pool::WorkerPool`] whose
//!   `parallel_for` / `parallel_map_reduce` use **fixed chunking and an
//!   ordered merge**, so results are bit-identical to serial execution for
//!   every worker count. Determinism is a hard invariant of this
//!   repository: fault draws and `DriveReport`s must not change when the
//!   pool is enabled or resized.
//! * [`arena`] — a per-frame [`arena::FrameArena`] of reusable typed
//!   buffers: kernels borrow scratch vectors instead of allocating, and
//!   recycle them at frame end with their capacity intact.
//!
//! The perception (`sov-perception`) and LiDAR (`sov-lidar`) hot kernels
//! accept an optional pool and arena; `sov-core` re-exports this crate as
//! `sov_core::pool` / `sov_core::arena` and threads a [`PerfContext`]
//! through `Sov::drive_with_plan`.

#![deny(missing_docs)]

pub mod arena;
pub mod pipeline;
pub mod pool;
pub mod queue;

use std::sync::Arc;

/// The performance context threaded through the hot path: an optional
/// worker pool (serial when absent), the frame arena, and the inter-frame
/// pipeline depth.
///
/// Cloning is cheap: the pool is shared, the arena is per-clone (arenas
/// are deliberately not `Sync`; each thread of control owns its own).
#[derive(Debug, Default)]
pub struct PerfContext {
    /// Worker pool; `None` runs every kernel serially (the reference
    /// execution that all pooled runs must match bit for bit).
    pub pool: Option<Arc<pool::WorkerPool>>,
    /// Reusable per-frame scratch buffers.
    pub arena: arena::FrameArena,
    /// Inter-frame pipeline depth for `Sov::drive_with_plan` and
    /// [`pipeline::FramePipeline`]: `0` or `1` keeps today's serial frame
    /// schedule; `d > 1` overlaps up to `d` in-flight frames across the
    /// sensing/perception/planning lanes. Requires a pool with at least
    /// three lanes to take effect (it silently — and bit-identically —
    /// falls back to serial otherwise).
    pub pipeline_depth: usize,
}

impl PerfContext {
    /// A serial context: no pool, fresh arena.
    #[must_use]
    pub fn serial() -> Self {
        Self::default()
    }

    /// A context backed by a pool with `workers` parallel lanes (no
    /// inter-frame pipelining).
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        Self {
            pool: Some(Arc::new(pool::WorkerPool::new(workers))),
            arena: arena::FrameArena::new(),
            pipeline_depth: 1,
        }
    }

    /// A context that pipelines up to `depth` in-flight frames across the
    /// three coarse stages, backed by a three-lane pool (one lane per
    /// stage). `with_pipeline(1)` is exactly the serial schedule.
    #[must_use]
    pub fn with_pipeline(depth: usize) -> Self {
        Self::with_pipeline_workers(depth, 3)
    }

    /// [`PerfContext::with_pipeline`] with an explicit pool size, for
    /// ablations over depth × workers. Fewer than three lanes cannot host
    /// the three stages, so such contexts run the serial schedule (still
    /// bit-identical by construction).
    #[must_use]
    pub fn with_pipeline_workers(depth: usize, workers: usize) -> Self {
        Self {
            pool: Some(Arc::new(pool::WorkerPool::new(workers))),
            arena: arena::FrameArena::new(),
            pipeline_depth: depth,
        }
    }

    /// The pool, if any, as a borrowed option (the form kernels accept).
    #[must_use]
    pub fn pool(&self) -> Option<&pool::WorkerPool> {
        self.pool.as_deref()
    }

    /// Effective inter-frame pipeline depth (`0` normalizes to `1`).
    #[must_use]
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_context_has_no_pool() {
        let ctx = PerfContext::serial();
        assert!(ctx.pool().is_none());
    }

    #[test]
    fn worker_context_reports_lanes() {
        let ctx = PerfContext::with_workers(3);
        assert_eq!(ctx.pool().unwrap().lanes(), 3);
        assert_eq!(ctx.pipeline_depth(), 1, "no inter-frame pipelining");
    }

    #[test]
    fn pipeline_context_has_three_lanes_and_the_depth() {
        let ctx = PerfContext::with_pipeline(3);
        assert_eq!(ctx.pool().unwrap().lanes(), 3);
        assert_eq!(ctx.pipeline_depth(), 3);
        let ablate = PerfContext::with_pipeline_workers(4, 8);
        assert_eq!(ablate.pool().unwrap().lanes(), 8);
        assert_eq!(ablate.pipeline_depth(), 4);
        assert_eq!(PerfContext::serial().pipeline_depth(), 1, "0 → serial");
    }
}
