//! Deterministic fault injection for the SoV.
//!
//! The paper's central safety argument (Sec. IV) is the hybrid
//! proactive/reactive design: when the camera-based proactive pipeline is
//! late or wrong, the radar+sonar reactive path keeps the vehicle safe,
//! and GPS–VIO fusion (Sec. VI) exists precisely so localization survives
//! the loss of one modality. A reproduction of that argument needs a way
//! to *remove* modalities mid-run and observe what the system does.
//!
//! A [`FaultPlan`] is a seeded schedule of [`FaultWindow`]s, each making
//! one [`FaultKind`] active over a `[start, end)` interval of simulated
//! time with a per-kind `intensity`. Probabilistic faults (frame drops,
//! ghost returns, CAN losses) are decided by a counter-based hash of
//! `(plan seed, kind, event index)` — **not** by any shared RNG stream —
//! so injecting a fault never perturbs the draws of the nominal
//! simulation, and a fixed seed reproduces the exact same fault pattern
//! byte for byte.

#![deny(missing_docs)]

use sov_sim::time::SimTime;
use std::fmt;

/// The failure modes the plan can inject, spanning every layer the paper's
/// field deployments stress (camera dropouts, GPS multipath, compute tail
/// latency, CAN losses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Individual camera frames are lost with probability `intensity`.
    CameraDrop,
    /// The camera delivers nothing for the whole window (cable/ISP hang).
    CameraStall,
    /// No GNSS fix at all (tunnel, dense canopy).
    GpsOutage,
    /// Fixes arrive but are multipath-biased (urban canyon).
    GpsMultipath,
    /// The IMU picks up a bias, leaking `intensity` metres of spurious
    /// lateral motion into each visual-inertial increment.
    ImuBiasJump,
    /// Radar reports a ghost target per scan with probability `intensity`.
    RadarGhost,
    /// Sonar returns nothing for the whole window.
    SonarDropout,
    /// Planner→ECU CAN frames are lost with probability `intensity`.
    CanFrameLoss,
    /// Each pipeline frame's computing latency is stretched by
    /// `intensity` ms (thermal throttling, contention — the tail-latency
    /// stall COLA identifies as the Level-4 safety breaker).
    StageOverrun,
    /// RPR reconfiguration delay spike: adds up to `intensity` ms to a
    /// frame's computing latency, drawn per frame (Sec. V-B, Fig. 9).
    RprDelaySpike,
}

impl FaultKind {
    /// All kinds, for sweeps.
    pub const ALL: [FaultKind; 10] = [
        FaultKind::CameraDrop,
        FaultKind::CameraStall,
        FaultKind::GpsOutage,
        FaultKind::GpsMultipath,
        FaultKind::ImuBiasJump,
        FaultKind::RadarGhost,
        FaultKind::SonarDropout,
        FaultKind::CanFrameLoss,
        FaultKind::StageOverrun,
        FaultKind::RprDelaySpike,
    ];

    /// A reasonable severity when the caller does not specify one.
    #[must_use]
    pub fn default_intensity(self) -> f64 {
        match self {
            FaultKind::CameraDrop => 0.5,      // P(frame lost)
            FaultKind::CameraStall => 1.0,     // window is absolute
            FaultKind::GpsOutage => 1.0,       // window is absolute
            FaultKind::GpsMultipath => 1.0,    // window is absolute
            FaultKind::ImuBiasJump => 0.05,    // m of lateral leak / frame
            FaultKind::RadarGhost => 0.3,      // P(ghost target) per scan
            FaultKind::SonarDropout => 1.0,    // window is absolute
            FaultKind::CanFrameLoss => 0.4,    // P(command frame lost)
            FaultKind::StageOverrun => 250.0,  // extra computing ms
            FaultKind::RprDelaySpike => 400.0, // max extra ms per frame
        }
    }

    fn code(self) -> u64 {
        match self {
            FaultKind::CameraDrop => 1,
            FaultKind::CameraStall => 2,
            FaultKind::GpsOutage => 3,
            FaultKind::GpsMultipath => 4,
            FaultKind::ImuBiasJump => 5,
            FaultKind::RadarGhost => 6,
            FaultKind::SonarDropout => 7,
            FaultKind::CanFrameLoss => 8,
            FaultKind::StageOverrun => 9,
            FaultKind::RprDelaySpike => 10,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultKind::CameraDrop => "camera-drop",
            FaultKind::CameraStall => "camera-stall",
            FaultKind::GpsOutage => "gps-outage",
            FaultKind::GpsMultipath => "gps-multipath",
            FaultKind::ImuBiasJump => "imu-bias-jump",
            FaultKind::RadarGhost => "radar-ghost",
            FaultKind::SonarDropout => "sonar-dropout",
            FaultKind::CanFrameLoss => "can-frame-loss",
            FaultKind::StageOverrun => "stage-overrun",
            FaultKind::RprDelaySpike => "rpr-delay-spike",
        };
        f.write_str(name)
    }
}

/// One scheduled fault: `kind` is active over `[start, end)` at
/// `intensity`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// Which failure mode.
    pub kind: FaultKind,
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Kind-specific severity (probability, metres, or milliseconds — see
    /// [`FaultKind`]).
    pub intensity: f64,
}

impl FaultWindow {
    /// Whether this window covers `t`.
    #[must_use]
    pub fn covers(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

/// A seeded, schedulable fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// The empty plan: nothing ever fails. Driving under the nominal plan
    /// is bit-identical to driving without one.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            seed: 0,
            windows: Vec::new(),
        }
    }

    /// An empty plan with a seed for its probabilistic decisions.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            windows: Vec::new(),
        }
    }

    /// Adds a window at the kind's default intensity (builder style).
    #[must_use]
    pub fn with(self, kind: FaultKind, start: SimTime, end: SimTime) -> Self {
        let intensity = kind.default_intensity();
        self.with_intensity(kind, start, end, intensity)
    }

    /// Adds a window with an explicit intensity (builder style).
    ///
    /// Overlapping windows of the same kind are detected and **merged**
    /// into disjoint spans carrying the pointwise-maximum intensity —
    /// the effective severity [`Self::active`] already reported — so a
    /// generated plan can never double-apply a fault, and the stored
    /// schedule is canonical: building the same windows in any insertion
    /// order yields an identical (`==`) plan.
    #[must_use]
    pub fn with_intensity(
        mut self,
        kind: FaultKind,
        start: SimTime,
        end: SimTime,
        intensity: f64,
    ) -> Self {
        assert!(end > start, "fault window must be non-empty");
        assert!(intensity >= 0.0, "intensity must be non-negative");
        self.windows.push(FaultWindow {
            kind,
            start,
            end,
            intensity,
        });
        self.normalize(kind);
        self
    }

    /// Merges same-kind windows into disjoint spans with pointwise-max
    /// intensity (splitting at every boundary, then coalescing adjacent
    /// spans of equal intensity) and restores the canonical
    /// `(kind, start)` order.
    fn normalize(&mut self, kind: FaultKind) {
        let same: Vec<FaultWindow> = self
            .windows
            .iter()
            .filter(|w| w.kind == kind)
            .copied()
            .collect();
        if same.len() > 1 {
            let mut cuts: Vec<SimTime> = same.iter().flat_map(|w| [w.start, w.end]).collect();
            cuts.sort_unstable();
            cuts.dedup();
            let mut merged: Vec<FaultWindow> = Vec::new();
            for pair in cuts.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                // Boundaries cut at every start/end, so each elementary
                // span is covered all-or-nothing by each window.
                let Some(intensity) = same
                    .iter()
                    .filter(|w| w.start <= a && w.end >= b)
                    .map(|w| w.intensity)
                    .max_by(f64::total_cmp)
                else {
                    continue; // a gap between windows of this kind
                };
                match merged.last_mut() {
                    Some(last) if last.end == a && last.intensity == intensity => last.end = b,
                    _ => merged.push(FaultWindow {
                        kind,
                        start: a,
                        end: b,
                        intensity,
                    }),
                }
            }
            self.windows.retain(|w| w.kind != kind);
            self.windows.extend(merged);
        }
        self.windows.sort_by_key(|x| (x.kind.code(), x.start));
    }

    /// The scheduled windows: disjoint per kind (overlaps are merged at
    /// insertion), sorted by `(kind, start)`.
    #[must_use]
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// Whether the plan schedules no faults at all.
    #[must_use]
    pub fn is_nominal(&self) -> bool {
        self.windows.is_empty()
    }

    /// The active window for `kind` at `t`, if any. Windows are stored
    /// disjoint per kind (overlaps merge to their pointwise-max
    /// intensity at insertion), so at most one window covers `t`; the
    /// `max_by` keeps the "most intense wins" contract self-evident.
    #[must_use]
    pub fn active(&self, kind: FaultKind, t: SimTime) -> Option<&FaultWindow> {
        self.windows
            .iter()
            .filter(|w| w.kind == kind && w.covers(t))
            .max_by(|a, b| a.intensity.total_cmp(&b.intensity))
    }

    /// Whether `kind` is active at `t`.
    #[must_use]
    pub fn is_active(&self, kind: FaultKind, t: SimTime) -> bool {
        self.active(kind, t).is_some()
    }

    /// Deterministic Bernoulli draw for the `k`-th event of `kind`: true
    /// with the active window's intensity as probability, never true when
    /// the kind is inactive. Counter-based, so it consumes no shared RNG
    /// state.
    #[must_use]
    pub fn strikes(&self, kind: FaultKind, t: SimTime, k: u64) -> bool {
        self.active(kind, t)
            .is_some_and(|w| Self::unit(self.seed, kind, k, 0) < w.intensity)
    }

    /// Deterministic uniform draw in `[0, active intensity)` for the
    /// `k`-th event of `kind`; zero when inactive. Used for magnitude
    /// faults (delay spikes).
    #[must_use]
    pub fn magnitude(&self, kind: FaultKind, t: SimTime, k: u64) -> f64 {
        self.active(kind, t)
            .map_or(0.0, |w| Self::unit(self.seed, kind, k, 1) * w.intensity)
    }

    /// Deterministic uniform draw in `[lo, hi)` for the `k`-th event of
    /// `kind` (e.g. a ghost target's range). Independent of the strike
    /// and magnitude draws for the same event.
    #[must_use]
    pub fn uniform(&self, kind: FaultKind, k: u64, lo: f64, hi: f64) -> f64 {
        lo + Self::unit(self.seed, kind, k, 2) * (hi - lo)
    }

    /// A uniform value in `[0, 1)` from a splitmix64 hash of
    /// `(seed, kind, k, stream)`.
    fn unit(seed: u64, kind: FaultKind, k: u64, stream: u64) -> f64 {
        let mut z = seed
            ^ kind.code().wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ k.wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ stream.wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // 53 mantissa bits → uniform in [0, 1).
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sov_sim::time::SimDuration;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn nominal_plan_never_strikes() {
        let plan = FaultPlan::nominal();
        for kind in FaultKind::ALL {
            assert!(!plan.is_active(kind, secs(5)));
            assert!(!plan.strikes(kind, secs(5), 3));
            assert_eq!(plan.magnitude(kind, secs(5), 3), 0.0);
        }
    }

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::new(1).with(FaultKind::GpsOutage, secs(2), secs(6));
        assert!(!plan.is_active(FaultKind::GpsOutage, secs(1)));
        assert!(plan.is_active(FaultKind::GpsOutage, secs(2)));
        assert!(plan.is_active(FaultKind::GpsOutage, secs(5)));
        assert!(!plan.is_active(FaultKind::GpsOutage, secs(6)));
        // Other kinds stay inactive.
        assert!(!plan.is_active(FaultKind::CameraStall, secs(3)));
    }

    #[test]
    fn strikes_are_deterministic_and_seed_dependent() {
        let a = FaultPlan::new(7).with(FaultKind::CameraDrop, secs(0), secs(10));
        let b = FaultPlan::new(7).with(FaultKind::CameraDrop, secs(0), secs(10));
        let c = FaultPlan::new(8).with(FaultKind::CameraDrop, secs(0), secs(10));
        let pat = |p: &FaultPlan| -> Vec<bool> {
            (0..200)
                .map(|k| p.strikes(FaultKind::CameraDrop, secs(1), k))
                .collect()
        };
        assert_eq!(pat(&a), pat(&b), "same seed, same pattern");
        assert_ne!(pat(&a), pat(&c), "different seed, different pattern");
    }

    #[test]
    fn strike_rate_tracks_intensity() {
        let plan =
            FaultPlan::new(3).with_intensity(FaultKind::CanFrameLoss, secs(0), secs(10), 0.25);
        let hits = (0..4000)
            .filter(|&k| plan.strikes(FaultKind::CanFrameLoss, secs(1), k))
            .count();
        let rate = hits as f64 / 4000.0;
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
    }

    #[test]
    fn magnitude_bounded_by_intensity() {
        let plan =
            FaultPlan::new(4).with_intensity(FaultKind::RprDelaySpike, secs(0), secs(10), 400.0);
        for k in 0..500 {
            let m = plan.magnitude(FaultKind::RprDelaySpike, secs(2), k);
            assert!((0.0..400.0).contains(&m), "magnitude {m}");
        }
    }

    #[test]
    fn overlapping_windows_most_intense_wins() {
        let plan = FaultPlan::new(5)
            .with_intensity(FaultKind::CameraDrop, secs(0), secs(10), 0.1)
            .with_intensity(FaultKind::CameraDrop, secs(4), secs(6), 0.9);
        assert_eq!(
            plan.active(FaultKind::CameraDrop, secs(5))
                .unwrap()
                .intensity,
            0.9
        );
        assert_eq!(
            plan.active(FaultKind::CameraDrop, secs(1))
                .unwrap()
                .intensity,
            0.1
        );
    }

    #[test]
    fn uniform_draws_stay_in_range() {
        let plan = FaultPlan::new(6);
        for k in 0..500 {
            let r = plan.uniform(FaultKind::RadarGhost, k, 2.0, 15.0);
            assert!((2.0..15.0).contains(&r), "range {r}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let _ = FaultPlan::new(0).with(FaultKind::GpsOutage, secs(3), secs(3));
    }
}
