//! Environment-specialized detector training (Sec. II-B, Sec. IV).
//!
//! "The DNN models are trained regularly using our field data. As the
//! deployment environment can vary significantly, different models are
//! specialized/trained using the deployment environment-specific training
//! data."
//!
//! We model training at the level the paper treats it: a model registry per
//! deployment site, where accumulating labeled field data from a site
//! improves that site's [`DetectorProfile`] along a saturating learning
//! curve, while deploying a model outside its training site costs accuracy.

use sov_perception::detection::DetectorProfile;
use std::collections::BTreeMap;

/// Identifier of a deployment site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

/// A versioned, site-specialized detector model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelVersion {
    /// Site the model was trained for.
    pub site: SiteId,
    /// Monotone version number.
    pub version: u32,
    /// Labeled frames the model was trained on.
    pub training_frames: u64,
    /// The resulting accuracy profile when deployed at its home site.
    pub profile: DetectorProfile,
}

/// Saturating learning curve: miss rate decays from the mismatched level
/// toward the matched level as labeled data accumulates.
fn learned_profile(training_frames: u64) -> DetectorProfile {
    let start = DetectorProfile::mismatched();
    let target = DetectorProfile::matched();
    // Half the remaining gap closes every 50k labeled frames.
    let progress = 1.0 - 0.5f64.powf(training_frames as f64 / 50_000.0);
    let lerp = |a: f64, b: f64| a + (b - a) * progress;
    DetectorProfile {
        miss_rate: lerp(start.miss_rate, target.miss_rate),
        false_positives_per_frame: lerp(
            start.false_positives_per_frame,
            target.false_positives_per_frame,
        ),
        misclass_rate: lerp(start.misclass_rate, target.misclass_rate),
        pixel_sigma: lerp(start.pixel_sigma, target.pixel_sigma),
        depth_rel_sigma: lerp(start.depth_rel_sigma, target.depth_rel_sigma),
    }
}

/// The cloud-side model registry and training service.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrainingService {
    /// Accumulated labeled frames per site.
    data: BTreeMap<SiteId, u64>,
    /// Latest model per site.
    models: BTreeMap<SiteId, ModelVersion>,
}

impl TrainingService {
    /// Creates an empty service.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests labeled field data from a site (frames extracted from the
    /// end-of-day manual upload).
    pub fn ingest(&mut self, site: SiteId, labeled_frames: u64) {
        *self.data.entry(site).or_insert(0) += labeled_frames;
    }

    /// Labeled frames accumulated for a site.
    #[must_use]
    pub fn frames_for(&self, site: SiteId) -> u64 {
        self.data.get(&site).copied().unwrap_or(0)
    }

    /// Trains (or retrains) the site's model on everything ingested so far,
    /// bumping the version. Returns the new model.
    pub fn train(&mut self, site: SiteId) -> ModelVersion {
        let frames = self.frames_for(site);
        let version = self.models.get(&site).map_or(1, |m| m.version + 1);
        let model = ModelVersion {
            site,
            version,
            training_frames: frames,
            profile: learned_profile(frames),
        };
        self.models.insert(site, model.clone());
        model
    }

    /// The latest model for a site.
    #[must_use]
    pub fn latest(&self, site: SiteId) -> Option<&ModelVersion> {
        self.models.get(&site)
    }

    /// The profile obtained by deploying `model` at `site`: home-site
    /// deployments get the trained profile; cross-site deployments regress
    /// toward the mismatched profile (the specialization penalty).
    #[must_use]
    pub fn deployed_profile(model: &ModelVersion, site: SiteId) -> DetectorProfile {
        if model.site == site {
            model.profile
        } else {
            // Specialization does not transfer: a cross-site deployment is
            // no better than a generic (mismatched) model.
            DetectorProfile::mismatched()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_data_means_better_models() {
        let mut svc = TrainingService::new();
        let site = SiteId(1);
        svc.ingest(site, 10_000);
        let v1 = svc.train(site);
        svc.ingest(site, 200_000);
        let v2 = svc.train(site);
        assert_eq!(v1.version, 1);
        assert_eq!(v2.version, 2);
        assert!(v2.profile.miss_rate < v1.profile.miss_rate);
        assert!(v2.profile.false_positives_per_frame < v1.profile.false_positives_per_frame);
    }

    #[test]
    fn learning_curve_saturates_at_matched_profile() {
        let huge = learned_profile(10_000_000);
        let matched = DetectorProfile::matched();
        assert!((huge.miss_rate - matched.miss_rate).abs() < 1e-3);
        let zero = learned_profile(0);
        assert_eq!(zero.miss_rate, DetectorProfile::mismatched().miss_rate);
    }

    #[test]
    fn cross_site_deployment_loses_specialization() {
        let mut svc = TrainingService::new();
        svc.ingest(SiteId(1), 500_000);
        let model = svc.train(SiteId(1));
        let home = TrainingService::deployed_profile(&model, SiteId(1));
        let away = TrainingService::deployed_profile(&model, SiteId(2));
        assert!(home.miss_rate < away.miss_rate);
        assert_eq!(away, DetectorProfile::mismatched());
    }

    #[test]
    fn sites_are_independent() {
        let mut svc = TrainingService::new();
        svc.ingest(SiteId(1), 100_000);
        svc.ingest(SiteId(2), 1_000);
        let m1 = svc.train(SiteId(1));
        let m2 = svc.train(SiteId(2));
        assert!(m1.profile.miss_rate < m2.profile.miss_rate);
        assert_eq!(svc.frames_for(SiteId(3)), 0);
        assert!(svc.latest(SiteId(3)).is_none());
    }
}
