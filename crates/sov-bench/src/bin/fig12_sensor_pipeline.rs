//! Fig. 12 — the sensor processing pipeline and the two synchronization
//! designs.
//!
//! Prints the per-stage latency structure of the camera pipeline
//! (Fig. 12b), then shows the C0/M7 misassociation of software-only
//! timestamping and the near-sensor correction of the hardware design.

use sov_math::SovRng;
use sov_sensors::pipeline::SensorPipeline;
use sov_sensors::sync::{SyncConfig, SyncStrategy, Synchronizer, SynchronizerFootprint};
use sov_sim::time::SimTime;

fn main() {
    sov_bench::banner("Fig. 12", "Sensor pipeline and synchronization designs");
    let seed = sov_bench::seed_from_args();
    let pipeline = SensorPipeline::camera_default();
    sov_bench::section("(b) camera pipeline stages (trigger → application)");
    println!(
        "{:<18} | {:>12} | {:>12} | {:>14}",
        "stage", "min (ms)", "mean (ms)", "compensatable?"
    );
    println!("{:-<18}-+-{:->12}-+-{:->12}-+-{:->14}", "", "", "", "");
    for s in pipeline.stages() {
        println!(
            "{:<18} | {:>12.1} | {:>12.1} | {:>14}",
            s.name,
            s.latency.min().as_millis_f64(),
            s.latency.mean().as_millis_f64(),
            if s.compensatable {
                "yes (constant)"
            } else {
                "no (variable)"
            }
        );
    }
    println!(
        "\nconstant prefix (exposure+transmission+interface): {} — the hardware\n\
         design timestamps at the sensor interface and subtracts exactly this.",
        pipeline.constant_prefix_latency()
    );

    sov_bench::section("(a)/(c) what the application pairs together");
    let mut rng = SovRng::seed_from_u64(seed);
    for (label, strategy) in [
        ("software-only (Fig. 12a)", SyncStrategy::SoftwareOnly),
        (
            "hardware-assisted (Fig. 12c)",
            SyncStrategy::HardwareAssisted,
        ),
    ] {
        let sync = Synchronizer::new(
            strategy,
            SyncConfig {
                seed,
                ..SyncConfig::default()
            },
        );
        println!("\n  {label}:");
        for k in [10u64, 11, 12] {
            let cam = sync.camera_sample(k, &mut rng);
            // Which IMU sample does the camera frame's assigned timestamp
            // land next to? (240 Hz IMU → ~4.17 ms period.)
            let imu_index = (cam.assigned.as_secs_f64() * 240.0).round() as i64;
            let true_index = (cam.true_capture.as_secs_f64() * 240.0).round() as i64;
            println!(
                "    frame C{k}: captured {} but stamped {} → paired with M{imu_index} (truth: M{true_index}, {} samples off)",
                SimTime::from_secs_f64(cam.true_capture.as_secs_f64()),
                SimTime::from_secs_f64(cam.assigned.as_secs_f64()),
                (imu_index - true_index).abs()
            );
        }
    }

    sov_bench::section("hardware synchronizer footprint (Sec. VI-A3)");
    let fp = SynchronizerFootprint::PAPER;
    println!(
        "  {} LUTs, {} registers, {} mW; adds <1 ms to the end-to-end latency;\n\
         scales to more cameras by adding trigger lines only.",
        fp.luts, fp.registers, fp.power_mw
    );
}
