//! Parametric latency models for pipeline stages.
//!
//! Fig. 12b of the paper decomposes the camera pipeline into stages with
//! *fixed* delays (exposure, transmission) and stages with *variable* delays
//! (ISP ≈ 10 ms of jitter, CPU software stack up to ≈ 100 ms). The
//! characterization in Fig. 10a likewise shows a mean close to best-case with
//! a long tail. [`LatencyModel`] captures exactly these shapes.

use crate::time::SimDuration;
use sov_math::SovRng;

/// A distribution over stage latencies.
///
/// All variants are truncated at zero (durations cannot be negative) and
/// sampled with the workspace's deterministic [`SovRng`].
///
/// # Example
///
/// ```
/// use sov_sim::latency::LatencyModel;
/// use sov_sim::time::SimDuration;
/// use sov_math::SovRng;
///
/// let model = LatencyModel::constant_millis(19.0); // T_mech from the paper
/// let mut rng = SovRng::seed_from_u64(1);
/// assert_eq!(model.sample(&mut rng), SimDuration::from_millis(19));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this duration (e.g. CAN transmission, exposure).
    Constant(SimDuration),
    /// Uniform between `lo` and `hi` (e.g. ISP jitter window).
    Uniform {
        /// Lower bound.
        lo: SimDuration,
        /// Upper bound (inclusive of the open interval end for sampling).
        hi: SimDuration,
    },
    /// Normal with the given mean/σ in milliseconds, truncated at `floor`.
    Normal {
        /// Mean latency (ms).
        mean_ms: f64,
        /// Standard deviation (ms).
        std_ms: f64,
        /// Minimum possible latency (ms); samples are clamped here.
        floor_ms: f64,
    },
    /// Log-normal parameterized by the *median* latency and a shape factor
    /// `sigma`, shifted by `floor`. Produces the long right tail seen in the
    /// paper's application-layer jitter and 99th-percentile latencies.
    LogNormal {
        /// Median of the unshifted distribution (ms).
        median_ms: f64,
        /// Shape parameter of the underlying normal.
        sigma: f64,
        /// Additive floor (ms).
        floor_ms: f64,
    },
}

impl LatencyModel {
    /// Convenience constructor for a constant latency in milliseconds.
    #[must_use]
    pub fn constant_millis(ms: f64) -> Self {
        Self::Constant(SimDuration::from_millis_f64(ms))
    }

    /// Convenience constructor for a uniform latency window in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `lo_ms > hi_ms`.
    #[must_use]
    pub fn uniform_millis(lo_ms: f64, hi_ms: f64) -> Self {
        assert!(lo_ms <= hi_ms, "uniform window must be ordered");
        Self::Uniform {
            lo: SimDuration::from_millis_f64(lo_ms),
            hi: SimDuration::from_millis_f64(hi_ms),
        }
    }

    /// Convenience constructor for a truncated normal in milliseconds with
    /// the floor at `mean - 2σ` (clamped at zero).
    #[must_use]
    pub fn normal_millis(mean_ms: f64, std_ms: f64) -> Self {
        Self::Normal {
            mean_ms,
            std_ms,
            floor_ms: (mean_ms - 2.0 * std_ms).max(0.0),
        }
    }

    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut SovRng) -> SimDuration {
        match *self {
            Self::Constant(d) => d,
            Self::Uniform { lo, hi } => {
                let ns = rng.uniform(lo.as_nanos() as f64, hi.as_nanos() as f64 + 1.0);
                SimDuration::from_nanos(ns as u64)
            }
            Self::Normal {
                mean_ms,
                std_ms,
                floor_ms,
            } => {
                let ms = rng.normal(mean_ms, std_ms).max(floor_ms).max(0.0);
                SimDuration::from_millis_f64(ms)
            }
            Self::LogNormal {
                median_ms,
                sigma,
                floor_ms,
            } => {
                let ms = floor_ms + rng.log_normal(median_ms.max(1e-9).ln(), sigma);
                SimDuration::from_millis_f64(ms.max(0.0))
            }
        }
    }

    /// The minimum latency this model can produce (the "best case").
    #[must_use]
    pub fn min(&self) -> SimDuration {
        match *self {
            Self::Constant(d) => d,
            Self::Uniform { lo, .. } => lo,
            Self::Normal { floor_ms, .. } => SimDuration::from_millis_f64(floor_ms.max(0.0)),
            Self::LogNormal { floor_ms, .. } => SimDuration::from_millis_f64(floor_ms.max(0.0)),
        }
    }

    /// The distribution mean (exact for all variants).
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        match *self {
            Self::Constant(d) => d,
            Self::Uniform { lo, hi } => (lo + hi) / 2,
            // Truncation bias is negligible at the 2σ floor used here.
            Self::Normal { mean_ms, .. } => SimDuration::from_millis_f64(mean_ms.max(0.0)),
            Self::LogNormal {
                median_ms,
                sigma,
                floor_ms,
            } => SimDuration::from_millis_f64(floor_ms + median_ms * (sigma * sigma / 2.0).exp()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_exact() {
        let m = LatencyModel::constant_millis(19.0);
        let mut rng = SovRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(19));
        }
        assert_eq!(m.min(), SimDuration::from_millis(19));
        assert_eq!(m.mean(), SimDuration::from_millis(19));
    }

    #[test]
    fn uniform_stays_in_window() {
        let m = LatencyModel::uniform_millis(5.0, 15.0);
        let mut rng = SovRng::seed_from_u64(1);
        for _ in 0..1000 {
            let s = m.sample(&mut rng).as_millis_f64();
            assert!((5.0..=15.01).contains(&s), "sample {s} out of window");
        }
        assert_eq!(m.mean(), SimDuration::from_millis(10));
    }

    #[test]
    fn normal_respects_floor() {
        let m = LatencyModel::normal_millis(25.0, 14.0);
        let mut rng = SovRng::seed_from_u64(2);
        let floor = m.min().as_millis_f64();
        for _ in 0..2000 {
            assert!(m.sample(&mut rng).as_millis_f64() >= floor - 1e-9);
        }
    }

    #[test]
    fn normal_sample_mean_close() {
        let m = LatencyModel::normal_millis(100.0, 10.0);
        let mut rng = SovRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample(&mut rng).as_millis_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn log_normal_has_long_tail() {
        let m = LatencyModel::LogNormal {
            median_ms: 10.0,
            sigma: 0.8,
            floor_ms: 140.0,
        };
        let mut rng = SovRng::seed_from_u64(4);
        let mut s: Vec<f64> = (0..20_000)
            .map(|_| m.sample(&mut rng).as_millis_f64())
            .collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = s[s.len() / 2];
        let p99 = s[(s.len() as f64 * 0.99) as usize];
        // Mean above median and p99 far above median: right-skewed.
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!(mean > median);
        assert!(p99 > median + 3.0 * (median - 140.0));
        assert!(s[0] >= 140.0);
    }

    #[test]
    fn min_is_lower_bound_for_all_models() {
        let models = [
            LatencyModel::constant_millis(3.0),
            LatencyModel::uniform_millis(1.0, 2.0),
            LatencyModel::normal_millis(30.0, 5.0),
            LatencyModel::LogNormal {
                median_ms: 5.0,
                sigma: 0.5,
                floor_ms: 2.0,
            },
        ];
        let mut rng = SovRng::seed_from_u64(5);
        for m in &models {
            let lo = m.min();
            for _ in 0..500 {
                assert!(m.sample(&mut rng) >= lo.saturating_sub(SimDuration::from_nanos(1)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn uniform_rejects_inverted_window() {
        let _ = LatencyModel::uniform_millis(2.0, 1.0);
    }
}
