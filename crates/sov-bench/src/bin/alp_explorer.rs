//! Sec. VII — accelerator-level parallelism across chips and the edge.
//!
//! Sweeps all 3125 assignments of the Fig. 5 DAG onto
//! {CPU, GPU, TX2, FPGA, edge server} and prints the latency/energy Pareto
//! frontier, the deployed design's position, and the edge-offload
//! sensitivity to network latency.

use sov_platform::alp::{
    deployed_assignment, pareto_frontier, schedule, DagNode, EdgeConfig, Site,
};

fn describe(assignment: &std::collections::BTreeMap<DagNode, Site>) -> String {
    DagNode::MOVABLE
        .iter()
        .map(|n| format!("{:?}@{}", n, assignment[n].name()))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    sov_bench::banner("ALP explorer", "Cross-accelerator scheduling (Sec. VII)");
    let edge = EdgeConfig::default();

    sov_bench::section("the deployed design");
    let deployed = schedule(&deployed_assignment(), &edge);
    println!("  {}", describe(&deployed.assignment));
    println!(
        "  end-to-end latency {:.1} ms, vehicle energy {:.2} J/frame",
        deployed.latency_ms, deployed.energy_j
    );

    sov_bench::section("latency/energy Pareto frontier over 3125 assignments");
    println!("{:>12} | {:>12} | assignment", "latency (ms)", "energy (J)");
    println!("{:->12}-+-{:->12}-+-{:->50}", "", "", "");
    for s in pareto_frontier(&edge).iter().take(12) {
        println!(
            "{:>12.1} | {:>12.2} | {}",
            s.latency_ms,
            s.energy_j,
            describe(&s.assignment)
        );
    }

    sov_bench::section("edge-offload sensitivity (detection offloaded)");
    let mut offload = deployed_assignment();
    offload.insert(DagNode::Detection, Site::Edge);
    println!(
        "{:>14} | {:>14} | {:>10}",
        "RTT (ms)", "latency (ms)", "vs local"
    );
    println!("{:->14}-+-{:->14}-+-{:->10}", "", "", "");
    for rtt in [2.0, 5.0, 10.0, 15.0, 30.0, 60.0] {
        let cfg = EdgeConfig {
            rtt_ms: rtt,
            ..EdgeConfig::default()
        };
        let s = schedule(&offload, &cfg);
        let delta = s.latency_ms - deployed.latency_ms;
        println!("{rtt:>14.0} | {:>14.1} | {:>+9.1}ms", s.latency_ms, delta);
    }
    println!(
        "\nthe paper: 'efforts that exploit ALP while taking into account\n\
         constraints arising in different contexts would significantly\n\
         improve on-vehicle processing.'"
    );
}
