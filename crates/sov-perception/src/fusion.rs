//! GPS–VIO fusion (Sec. VI-B, "Augmenting Computing with Sensors").
//!
//! VIO fundamentally accumulates error with distance; rather than running a
//! compute-intensive drift-correction backend, the paper fuses the VIO
//! estimate with GNSS fixes through an Extended Kalman Filter:
//!
//! * when the GNSS signal is **strong**, the fix both feeds planning
//!   directly and corrects the VIO state;
//! * when reception is unstable (tunnels) or **multipath** corrupts the fix,
//!   the corrected VIO carries the vehicle through — the filter gates
//!   suspicious fixes with a Mahalanobis test.
//!
//! The EKF fusion step "executes in about 1 ms, much more lightweight than
//! the VIO localization algorithm (24 ms)" — the latency comparison is
//! reproduced by the platform model and the criterion benches.

use crate::vio::VioFilter;
use sov_math::matrix::{Matrix, Vector};
use sov_math::Pose2;
use sov_sensors::gps::{GnssFix, GnssQuality};

/// Fusion configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionConfig {
    /// Measurement σ (m) assumed for strong GNSS fixes.
    pub gnss_sigma_m: f64,
    /// Mahalanobis-squared gate (2 DoF); fixes beyond it are rejected.
    /// 13.8 ≈ χ²(2) at 0.999.
    pub gate_chi2: f64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self {
            gnss_sigma_m: 0.7,
            gate_chi2: 13.8,
        }
    }
}

/// Outcome of offering one GNSS fix to the filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FixOutcome {
    /// Fix accepted and fused into the VIO state.
    Fused,
    /// Fix rejected by the Mahalanobis gate (likely multipath).
    GatedOut,
    /// No usable fix (receiver reported no signal).
    NoSignal,
}

/// The GPS–VIO hybrid localizer.
#[derive(Debug, Clone, PartialEq)]
pub struct GpsVioFusion {
    config: FusionConfig,
    fixes_fused: u64,
    fixes_gated: u64,
}

impl GpsVioFusion {
    /// Creates the fusion layer.
    #[must_use]
    pub fn new(config: FusionConfig) -> Self {
        Self {
            config,
            fixes_fused: 0,
            fixes_gated: 0,
        }
    }

    /// Number of fixes fused so far.
    #[must_use]
    pub fn fixes_fused(&self) -> u64 {
        self.fixes_fused
    }

    /// Number of fixes rejected by the gate so far.
    #[must_use]
    pub fn fixes_gated(&self) -> u64 {
        self.fixes_gated
    }

    /// Offers a GNSS fix to correct the VIO filter.
    ///
    /// Strong fixes update the EKF position; degraded fixes are subjected to
    /// the Mahalanobis gate first; absent fixes leave VIO untouched.
    pub fn ingest_fix(&mut self, vio: &mut VioFilter, fix: &GnssFix) -> FixOutcome {
        if fix.quality == GnssQuality::NoFix || fix.position.0.is_nan() || fix.position.1.is_nan() {
            return FixOutcome::NoSignal;
        }
        let z = Vector::from_array([fix.position.0, fix.position.1]);
        let h = Matrix::<2, 3>::from_rows([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]);
        let sigma = match fix.quality {
            GnssQuality::Strong => self.config.gnss_sigma_m,
            // Degraded fixes get an inflated noise assumption.
            GnssQuality::Multipath => self.config.gnss_sigma_m * 3.0,
            GnssQuality::NoFix => unreachable!("handled above"),
        };
        let r = Matrix::from_diagonal([sigma * sigma, sigma * sigma]);
        // Gate against the *strong-fix* noise assumption regardless of
        // reported quality: a persistent multipath bias (metres, slowly
        // wandering) would look statistically plausible under the
        // inflated covariance it is fused with, and repeated updates
        // would walk the estimate onto the reflection. Judged against
        // the honest receiver noise it fails the gate and the corrected
        // VIO carries the vehicle through instead.
        let g = self.config.gnss_sigma_m;
        let r_gate = Matrix::from_diagonal([g * g, g * g]);
        let ekf = vio.ekf_mut();
        let s = *ekf.state();
        let predicted = Vector::from_array([s[0], s[1]]);
        match ekf.mahalanobis_sq(z, predicted, h, r_gate) {
            Ok(d2) if d2 <= self.config.gate_chi2 => {
                ekf.update(z, predicted, h, r)
                    .expect("innovation covariance is PD by construction");
                self.fixes_fused += 1;
                FixOutcome::Fused
            }
            Ok(_) => {
                self.fixes_gated += 1;
                FixOutcome::GatedOut
            }
            Err(_) => {
                self.fixes_gated += 1;
                FixOutcome::GatedOut
            }
        }
    }

    /// The position fed to planning (Sec. VI-B): the fused estimate.
    #[must_use]
    pub fn position(&self, vio: &VioFilter) -> Pose2 {
        vio.pose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vio::{FrameKind, VioConfig, VisualDelta};
    use sov_math::SovRng;
    use sov_sensors::gps::{GpsConfig, GpsReceiver};
    use sov_sim::time::SimTime;

    /// Drives VIO straight with a deliberate scale bias, optionally fusing
    /// GPS, and returns the final position error.
    fn drive(with_gps: bool, multipath: bool, seed: u64) -> f64 {
        let mut vio = VioFilter::new(Pose2::identity(), VioConfig::default());
        let mut fusion = GpsVioFusion::new(FusionConfig::default());
        let mut gps = GpsReceiver::new(GpsConfig::default(), seed);
        let mut rng = SovRng::seed_from_u64(seed);
        let v = 5.6;
        let frame_dt = 1.0 / 30.0;
        let mut truth = Pose2::identity();
        for i in 1..=3000u64 {
            let t_prev = SimTime::from_secs_f64((i - 1) as f64 * frame_dt);
            let t = SimTime::from_secs_f64(i as f64 * frame_dt);
            let next_truth = truth.step_unicycle(v, 0.0, frame_dt);
            // Biased visual increment: 1% scale error → drift grows ~1 m per
            // 100 m without correction.
            vio.visual_update(&VisualDelta {
                t_from: t_prev,
                t_to: t,
                forward_m: next_truth.distance(&truth) * 1.01 + rng.normal(0.0, 0.01),
                lateral_m: rng.normal(0.0, 0.01),
                dtheta: 0.0,
                kind: FrameKind::Tracked,
            });
            truth = next_truth;
            if with_gps && i % 3 == 0 {
                let quality = if multipath && (500..1000).contains(&i) {
                    GnssQuality::Multipath
                } else if multipath && (1000..1500).contains(&i) {
                    GnssQuality::NoFix
                } else {
                    GnssQuality::Strong
                };
                let fix = gps.fix(t, &truth, quality);
                let _ = fusion.ingest_fix(&mut vio, &fix);
            }
        }
        vio.pose().distance(&truth)
    }

    #[test]
    fn vio_alone_accumulates_drift() {
        let err = drive(false, false, 1);
        // 1% scale bias over 560 m ≈ 5.6 m drift.
        assert!(err > 3.0, "expected multi-meter drift, got {err} m");
    }

    #[test]
    fn gps_fusion_bounds_drift() {
        let err_gps = drive(true, false, 1);
        let err_raw = drive(false, false, 1);
        assert!(err_gps < 1.0, "fused error {err_gps} m");
        assert!(err_gps < err_raw / 3.0);
    }

    #[test]
    fn survives_outage_and_multipath() {
        let err = drive(true, true, 2);
        // Corrected VIO carries through the outage windows; final error
        // stays bounded.
        assert!(err < 2.0, "error with outages {err} m");
    }

    #[test]
    fn multipath_fix_is_gated() {
        let mut vio = VioFilter::new(Pose2::identity(), VioConfig::default());
        let mut fusion = GpsVioFusion::new(FusionConfig::default());
        // With tight covariance, a 20 m-off fix must be rejected.
        let fix = GnssFix {
            timestamp: SimTime::ZERO,
            position: (20.0, 0.0),
            quality: GnssQuality::Multipath,
        };
        assert_eq!(fusion.ingest_fix(&mut vio, &fix), FixOutcome::GatedOut);
        assert_eq!(fusion.fixes_gated(), 1);
        // A consistent strong fix is fused.
        let good = GnssFix {
            timestamp: SimTime::ZERO,
            position: (0.1, -0.1),
            quality: GnssQuality::Strong,
        };
        assert_eq!(fusion.ingest_fix(&mut vio, &good), FixOutcome::Fused);
        assert_eq!(fusion.fixes_fused(), 1);
    }

    #[test]
    fn no_signal_leaves_vio_untouched() {
        let mut vio = VioFilter::new(Pose2::new(3.0, 4.0, 0.1), VioConfig::default());
        let before = vio.pose();
        let mut fusion = GpsVioFusion::new(FusionConfig::default());
        let fix = GnssFix {
            timestamp: SimTime::ZERO,
            position: (f64::NAN, f64::NAN),
            quality: GnssQuality::NoFix,
        };
        assert_eq!(fusion.ingest_fix(&mut vio, &fix), FixOutcome::NoSignal);
        assert_eq!(vio.pose(), before);
    }
}
