//! Safety-invariant acceptance on the shipped sites and the generator.
//!
//! Every nominal drive — the five curated deployment sites plus
//! generated scenarios of every class — must uphold the per-tick
//! `SafetyChecker` invariants end to end: no collision, no
//! under-threshold pass at speed, and a reachable SafeStop at every
//! frame. The scenario-matrix harness fuzzes the same property across
//! the full fault matrix; this file pins the nominal baseline so a
//! regression is caught by `cargo test` before any bench runs.

use sov_core::config::VehicleConfig;
use sov_core::sov::{DriveOutcome, Sov};
use sov_testkit::prelude::*;
use sov_world::generate::{ScenarioClass, ScenarioGen};
use sov_world::scenario::Scenario;

const FRAMES: u64 = 300;

fn nominal_report(scenario: &Scenario) -> sov_core::sov::DriveReport {
    let mut sov = Sov::new(VehicleConfig::perceptin_pod(), scenario.seed);
    sov.drive(scenario, FRAMES).expect("FRAMES > 0")
}

#[test]
fn all_sites_uphold_the_safety_invariants_nominally() {
    for scenario in Scenario::all_sites(42) {
        let report = nominal_report(&scenario);
        assert_ne!(
            report.outcome,
            DriveOutcome::Collision,
            "{} collided",
            scenario.name
        );
        assert!(
            report.safety.ok(),
            "{}: {} violation(s), first {:?}",
            scenario.name,
            report.safety.violations,
            report.safety.first
        );
        assert!(report.safety.checked_ticks > 0, "checker never ran");
    }
}

proptest! {
    // Each case is a full 300-frame drive; keep the count small enough
    // for the debug-build test budget while still sweeping every class.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn generated_scenarios_uphold_the_safety_invariants_nominally(
        class_idx in 0usize..6,
        base in 0u64..1_000,
        i in 0u64..8,
    ) {
        let class = ScenarioClass::ALL[class_idx];
        let seed = ScenarioGen::seed_for_class(class, base, i);
        let generated = ScenarioGen::generate(seed);
        let report = nominal_report(&generated.scenario);
        prop_assert!(
            report.outcome != DriveOutcome::Collision,
            "{} (seed {}) collided",
            class.name(),
            seed
        );
        prop_assert!(
            report.safety.ok(),
            "{} (seed {}): {} violation(s), first {:?}",
            class.name(),
            seed,
            report.safety.violations,
            report.safety.first
        );
    }
}
