//! Fig. 8 — latency of different perception→hardware mapping strategies.

use sov_platform::mapping::{end_to_end_reduction, PerceptionMapping};
use sov_platform::processor::Platform;

fn name(p: Platform) -> &'static str {
    p.name()
}

fn main() {
    sov_bench::banner("Fig. 8", "Perception mapping strategies");
    println!(
        "{:<28} | {:>10} | {:>10} | {:>12}",
        "mapping (SU / localization)", "SU (ms)", "loc (ms)", "perception"
    );
    println!("{:-<28}-+-{:->10}-+-{:->10}-+-{:->12}", "", "", "", "");
    let ours = PerceptionMapping::ours();
    for m in PerceptionMapping::fig8_strategies() {
        let lat = m.latency();
        let marker = if m == ours { "  ← our design" } else { "" };
        println!(
            "{:<28} | {:>10.1} | {:>10.1} | {:>10.1}ms{marker}",
            format!("{} / {}", name(m.scene_understanding), name(m.localization)),
            lat.scene_understanding_ms,
            lat.localization_ms,
            lat.perception_ms()
        );
    }
    let shared = PerceptionMapping {
        scene_understanding: Platform::Gtx1060Gpu,
        localization: Platform::Gtx1060Gpu,
    };
    println!(
        "\nperception speedup of our design over shared-GPU: {} (paper: 1.6×)",
        sov_bench::times(ours.speedup_over(&shared))
    );
    println!(
        "end-to-end latency reduction (sensing+planning ≈ 84 ms held fixed): {:.0}% (paper: ~23%)",
        end_to_end_reduction(&ours, &shared, 84.0) * 100.0
    );
}
