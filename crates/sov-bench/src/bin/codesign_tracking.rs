//! Sec. VI-B — radar tracking with spatial synchronization vs. KCF.
//!
//! Tracks an approaching target with both mechanisms on the simulated
//! substrate and compares accuracy and compute cost (the paper's 100×
//! claim).

use sov_math::SovRng;
use sov_perception::detection::Detection;
use sov_perception::image::render_scene;
use sov_perception::tracking::{spatial_synchronize, KcfConfig, KcfTracker, RadarTracker};
use sov_platform::processor::{Platform, Task};
use sov_sensors::camera::Intrinsics;
use sov_sensors::radar::{RadarScan, RadarTarget};
use sov_sim::time::SimTime;
use sov_world::obstacle::{ObstacleClass, ObstacleId};

fn main() {
    sov_bench::banner(
        "Co-design: tracking",
        "Radar spatial sync replaces KCF (Sec. VI-B)",
    );
    let seed = sov_bench::seed_from_args();

    sov_bench::section("radar tracking of an approaching pedestrian");
    let mut tracker = RadarTracker::new();
    let intr = Intrinsics::hd1080();
    for k in 0..20u64 {
        let range = 30.0 - 0.25 * k as f64; // closing at 5 m/s, 20 Hz scans
        let scan = RadarScan {
            timestamp: SimTime::from_millis(k * 50),
            targets: vec![RadarTarget {
                truth: ObstacleId(0),
                range_m: range,
                azimuth_rad: 0.03,
                radial_velocity_mps: -5.0,
            }],
            stable: true,
        };
        tracker.update(&scan);
    }
    let track = tracker.tracks()[0];
    println!(
        "  1 track maintained over 20 scans: range {:.1} m, radial velocity {:.1} m/s, hits {}",
        track.range_m, track.radial_velocity_mps, track.hits
    );
    // Spatial synchronization against a camera detection.
    let zc = track.range_m * track.azimuth_rad.cos();
    let u = intr.cx + intr.fx * (-(track.range_m * track.azimuth_rad.sin()) / zc);
    let detections = vec![Detection {
        truth: Some(ObstacleId(0)),
        class: ObstacleClass::Pedestrian,
        pixel: (u + 2.0, 520.0),
        radius_px: 25.0,
        depth_m: zc * 1.02,
        confidence: 0.92,
    }];
    let pairs = spatial_synchronize(&mut tracker, &detections, &intr, 60.0);
    println!(
        "  spatial synchronization matched {} track(s); class = {:?}",
        pairs.len(),
        tracker.tracks()[0].class
    );

    sov_bench::section("KCF fallback on rendered frames (radar unstable)");
    let mut rng = SovRng::seed_from_u64(seed);
    let mut blobs = vec![(40.0, 32.0, 3.0, 0.9)];
    let first = render_scene(128, 64, &blobs, 0.05, &mut rng);
    let mut kcf = KcfTracker::init(&first, 40.0, 32.0, KcfConfig::default());
    for _ in 0..15 {
        blobs[0].0 += 1.5;
        let mut frame_rng = SovRng::seed_from_u64(seed);
        let frame = render_scene(128, 64, &blobs, 0.05, &mut frame_rng);
        kcf.update(&frame);
    }
    let (x, y) = kcf.position();
    println!(
        "  KCF tracked the target to ({x:.1}, {y:.1}); truth ({:.1}, 32.0)",
        blobs[0].0
    );

    sov_bench::section("compute cost (platform profiles)");
    let kcf_ms = Task::KcfTracking
        .profile(Platform::CoffeeLakeCpu)
        .mean_latency_ms();
    let sync_ms = Task::SpatialSync
        .profile(Platform::CoffeeLakeCpu)
        .mean_latency_ms();
    println!(
        "  KCF: {kcf_ms:.0} ms/frame; spatial sync: {sync_ms:.0} ms/frame \
         ({} lighter — paper: 100×)",
        sov_bench::times(kcf_ms / sync_ms)
    );
    println!(
        "  radar BOM cost: 6 × $500 (Table II) — 'increases the vehicle's cost only modestly'."
    );
}
