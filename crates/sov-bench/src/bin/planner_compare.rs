//! Sec. V-C — lane-granularity MPC vs. the EM-style DP+QP planner.
//!
//! Runs both planners on identical scenarios, measures real wall-clock
//! execution time of the Rust implementations, and reports the platform-
//! profile latencies (the paper's 3 ms vs 100 ms, 33×).

use sov_planning::em::{EmConfig, EmPlanner};
use sov_planning::mpc::{MpcConfig, MpcPlanner};
use sov_planning::{Planner, PlanningInput, PlanningObstacle};
use sov_platform::processor::{Platform, Task};
use std::time::Instant;

fn scenarios() -> Vec<(&'static str, PlanningInput)> {
    vec![
        ("clear road", PlanningInput::cruising(5.6, 5.6)),
        (
            "static obstacle 12 m",
            PlanningInput::cruising(5.6, 5.6).with_obstacle(PlanningObstacle {
                station_m: 12.0,
                lateral_m: 0.0,
                speed_along_mps: 0.0,
                radius_m: 0.5,
            }),
        ),
        (
            "slow leader + pedestrian",
            PlanningInput::cruising(5.6, 5.6)
                .with_obstacle(PlanningObstacle {
                    station_m: 15.0,
                    lateral_m: 0.2,
                    speed_along_mps: 2.0,
                    radius_m: 0.8,
                })
                .with_obstacle(PlanningObstacle {
                    station_m: 25.0,
                    lateral_m: -1.0,
                    speed_along_mps: 0.0,
                    radius_m: 0.3,
                }),
        ),
    ]
}

fn time_planner(planner: &mut dyn Planner, input: &PlanningInput, reps: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        let _ = planner.plan(input);
    }
    start.elapsed().as_secs_f64() * 1e6 / f64::from(reps)
}

fn main() {
    sov_bench::banner(
        "Planner comparison",
        "MPC (ours) vs EM-style DP+QP (Sec. V-C)",
    );
    let mut mpc = MpcPlanner::new(MpcConfig::default());
    let mut em = EmPlanner::new(EmConfig::default());
    println!(
        "{:<26} | {:>14} | {:>14} | {:>8}",
        "scenario", "MPC (µs)", "EM (µs)", "ratio"
    );
    println!("{:-<26}-+-{:->14}-+-{:->14}-+-{:->8}", "", "", "", "");
    let mut ratios = Vec::new();
    for (name, input) in scenarios() {
        let mpc_us = time_planner(&mut mpc, &input, 50);
        let em_us = time_planner(&mut em, &input, 10);
        ratios.push(em_us / mpc_us);
        println!(
            "{name:<26} | {mpc_us:>14.0} | {em_us:>14.0} | {:>8}",
            sov_bench::times(em_us / mpc_us)
        );
    }
    let gm = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64;
    println!(
        "\ngeometric-mean implementation ratio: {}",
        sov_bench::times(gm.exp())
    );
    sov_bench::section("platform-profile latencies (the paper's measurements)");
    let mpc_ms = Task::MpcPlanning
        .profile(Platform::CoffeeLakeCpu)
        .mean_latency_ms();
    let em_ms = Task::EmPlanning
        .profile(Platform::CoffeeLakeCpu)
        .mean_latency_ms();
    println!(
        "  MPC {mpc_ms:.0} ms vs EM {em_ms:.0} ms → {} (paper: 3 ms vs 100 ms, 33×)",
        sov_bench::times(em_ms / mpc_ms)
    );
    println!(
        "  planning is ~1% of the 164 ms end-to-end latency — accelerating it\n\
         would yield marginal benefit (Sec. V-B2)."
    );
}
