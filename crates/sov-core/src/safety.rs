//! Per-frame safety invariants, checked against ground truth.
//!
//! The paper's safety argument (Sec. IV) is a *contract*: given enough
//! observation time, the hybrid proactive/reactive design keeps the
//! vehicle collision-free and always able to reach a safe stop. The
//! [`SafetyChecker`] turns that contract into executable invariants
//! evaluated on every control tick of a drive, against ground-truth
//! vehicle and obstacle state (never against the perception estimates —
//! a checker that trusts the system under test proves nothing):
//!
//! * **no-collision** — no frontal obstacle gap at or below the contact
//!   threshold;
//! * **min-gap** — while moving, the vehicle keeps a minimum standoff
//!   from any obstacle in its swept corridor;
//! * **SafeStop-reachability** — the vehicle's kinematic stopping
//!   distance `v²/(2·a_max)` never exceeds the gap to a corridor
//!   obstacle (plus a small reaction allowance), i.e. a full-brake stop
//!   short of contact stays *reachable* at all times;
//! * **SafeStop-halts** — once the degradation state machine commands
//!   `SafeStop`, the vehicle actually comes to rest within a bounded
//!   time.
//!
//! Every obstacle-relative invariant is conditioned on **observability**:
//! it applies only after the obstacle has been in the vehicle's frontal
//! half-plane, within range, for a grace period. An obstacle that
//! materializes inside the braking envelope is unavoidable for *any*
//! policy; a violation against an observed obstacle is a genuine finding
//! about the stack. The scenario generator's fairness contract
//! (`sov_world::generate`) guarantees generated worlds only pose
//! observable problems.

use crate::health::DegradationMode;
use sov_math::Pose2;
use sov_sim::time::{SimDuration, SimTime};
use sov_world::obstacle::ObstacleId;
use sov_world::World;
use std::collections::BTreeMap;
use std::fmt;

/// The individual invariants the checker can flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Invariant {
    /// Ground-truth contact with an observed frontal obstacle.
    NoCollision,
    /// Standoff below the minimum gap while moving.
    MinGap,
    /// Stopping distance exceeded the available gap: a full-brake stop
    /// short of the obstacle was no longer kinematically reachable.
    SafeStopReachable,
    /// `SafeStop` mode failed to bring the vehicle to rest in time.
    SafeStopHalts,
}

impl Invariant {
    /// Stable display name (used as the matrix verdict key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Invariant::NoCollision => "no-collision",
            Invariant::MinGap => "min-gap",
            Invariant::SafeStopReachable => "safestop-reachable",
            Invariant::SafeStopHalts => "safestop-halts",
        }
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Thresholds for the invariant checks.
#[derive(Debug, Clone, PartialEq)]
pub struct SafetyConfig {
    /// Gap at or below which contact is declared (matches the drive
    /// loop's collision threshold).
    pub collision_gap_m: f64,
    /// Minimum standoff from corridor obstacles while moving.
    pub min_gap_m: f64,
    /// Speed above which the min-gap invariant applies; below it the
    /// vehicle is creeping/stopping and the no-collision bound governs.
    pub min_gap_speed_mps: f64,
    /// Half-width of the swept corridor: obstacles further off the
    /// vehicle's lateral axis are passed, not stopped for (matches the
    /// reactive path's corridor filter).
    pub corridor_half_width_m: f64,
    /// How long an obstacle must have been observable (frontal, in
    /// range) before invariants apply to it.
    pub observe_grace: SimDuration,
    /// Range within which an obstacle counts as observable.
    pub observe_range_m: f64,
    /// Reaction-time allowance: the reachability bound forgives
    /// `speed · reaction_time_s + base_slack_m` of gap (actuation delay
    /// `t_mech`, the 50 ms radar period, and discretization).
    pub reaction_time_s: f64,
    /// Constant part of the reachability allowance.
    pub base_slack_m: f64,
    /// Maximum braking deceleration used for the stopping distance.
    pub max_decel_mps2: f64,
    /// Time `SafeStop` mode gets to bring the vehicle to rest.
    pub safestop_halt: SimDuration,
    /// Speed below which the vehicle counts as at rest.
    pub safestop_speed_mps: f64,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        Self {
            collision_gap_m: 0.05,
            min_gap_m: 0.25,
            min_gap_speed_mps: 1.0,
            corridor_half_width_m: 1.2,
            observe_grace: SimDuration::from_millis(1_500),
            observe_range_m: 40.0,
            reaction_time_s: 0.15,
            base_slack_m: 0.3,
            max_decel_mps2: 4.0,
            safestop_halt: SimDuration::from_millis(2_500),
            safestop_speed_mps: 0.5,
        }
    }
}

/// The first (earliest) invariant violation of a drive.
#[derive(Debug, Clone, PartialEq)]
pub struct SafetyViolation {
    /// Control frame on which the violation fired.
    pub frame: u64,
    /// Which invariant.
    pub invariant: Invariant,
    /// Ground-truth gap to the offending obstacle (m); `NaN`-free
    /// (`f64::INFINITY` for the mode invariant, which has no obstacle).
    pub gap_m: f64,
    /// Vehicle speed at the violation (m/s).
    pub speed_mps: f64,
}

/// Per-drive invariant outcome, carried in
/// [`DriveReport`](crate::sov::DriveReport). `PartialEq` is exact, like
/// the rest of the report: pooled/pipelined drives must reproduce it
/// bit for bit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SafetyReport {
    /// Control ticks the checker evaluated.
    pub checked_ticks: u64,
    /// Total invariant violations (one per invariant per obstacle per
    /// tick).
    pub violations: u64,
    /// The earliest violation, if any — the shrink target: re-driving
    /// the same seeds with `max_frames = frame + 1` reproduces it.
    pub first: Option<SafetyViolation>,
}

impl SafetyReport {
    /// Whether the drive upheld every invariant.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations == 0
    }
}

/// Threads the invariants through a drive: feed it ground truth once per
/// control tick, collect the [`SafetyReport`] at the end.
#[derive(Debug)]
pub struct SafetyChecker {
    cfg: SafetyConfig,
    /// When each obstacle first became observable. `BTreeMap` for
    /// deterministic iteration.
    first_seen: BTreeMap<ObstacleId, SimTime>,
    safestop_since: Option<SimTime>,
    report: SafetyReport,
}

impl SafetyChecker {
    /// A checker with the given thresholds.
    #[must_use]
    pub fn new(cfg: SafetyConfig) -> Self {
        Self {
            cfg,
            first_seen: BTreeMap::new(),
            safestop_since: None,
            report: SafetyReport::default(),
        }
    }

    fn violate(&mut self, frame: u64, invariant: Invariant, gap_m: f64, speed_mps: f64) {
        self.report.violations += 1;
        if self.report.first.is_none() {
            self.report.first = Some(SafetyViolation {
                frame,
                invariant,
                gap_m,
                speed_mps,
            });
        }
    }

    /// Evaluates every invariant for one control tick against ground
    /// truth.
    pub fn check_tick(
        &mut self,
        world: &World,
        pose: &Pose2,
        speed_mps: f64,
        mode: DegradationMode,
        t: SimTime,
        frame: u64,
    ) {
        self.report.checked_ticks += 1;
        let cfg = self.cfg.clone();
        let stopping_m = speed_mps * speed_mps / (2.0 * cfg.max_decel_mps2);
        let slack_m = speed_mps * cfg.reaction_time_s + cfg.base_slack_m;
        for (obstacle, opose) in world.active_obstacles(t) {
            let (lx, ly) = pose.inverse_transform_point(opose.x, opose.y);
            if lx <= 0.0 {
                continue; // behind the vehicle
            }
            let gap = ((lx * lx + ly * ly).sqrt() - obstacle.radius_m()).max(0.0);
            if gap <= cfg.observe_range_m {
                self.first_seen.entry(obstacle.id).or_insert(t);
            }
            // Invariants bind only once the obstacle has been
            // observable for the grace period.
            let Some(&seen) = self.first_seen.get(&obstacle.id) else {
                continue;
            };
            if t.since(seen) < cfg.observe_grace {
                continue;
            }
            if gap <= cfg.collision_gap_m {
                self.violate(frame, Invariant::NoCollision, gap, speed_mps);
            }
            // The standoff invariants apply inside the swept corridor;
            // an obstacle beside the path is passed, not stopped for.
            if ly.abs() > cfg.corridor_half_width_m + obstacle.radius_m() {
                continue;
            }
            if speed_mps > cfg.min_gap_speed_mps && gap < cfg.min_gap_m {
                self.violate(frame, Invariant::MinGap, gap, speed_mps);
            }
            if gap + slack_m < stopping_m {
                self.violate(frame, Invariant::SafeStopReachable, gap, speed_mps);
            }
        }
        if mode == DegradationMode::SafeStop {
            let since = *self.safestop_since.get_or_insert(t);
            if t.since(since) > cfg.safestop_halt && speed_mps > cfg.safestop_speed_mps {
                self.violate(frame, Invariant::SafeStopHalts, f64::INFINITY, speed_mps);
            }
        } else {
            self.safestop_since = None;
        }
    }

    /// Consumes the checker, yielding the drive's safety report.
    #[must_use]
    pub fn finish(self) -> SafetyReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sov_world::Scenario;

    fn world_with_static_at(x: f64) -> World {
        use sov_world::obstacle::{Obstacle, ObstacleClass};
        let mut s = Scenario::fishers_indiana(1);
        s.world.obstacles = vec![Obstacle::fixed(
            ObstacleId(0),
            ObstacleClass::StaticObject,
            Pose2::new(x, 0.0, 0.0),
            SimTime::ZERO,
        )];
        s.world
    }

    fn tick_n(checker: &mut SafetyChecker, world: &World, pose: &Pose2, speed: f64, n: u64) {
        for i in 0..n {
            checker.check_tick(
                world,
                pose,
                speed,
                DegradationMode::Nominal,
                SimTime::from_millis(i * 100),
                i,
            );
        }
    }

    #[test]
    fn clear_road_is_clean() {
        let world = Scenario::fishers_indiana(1).world;
        let mut c = SafetyChecker::new(SafetyConfig::default());
        // Before any obstacle spawns: nothing to violate.
        c.check_tick(
            &world,
            &Pose2::new(0.0, 0.0, 0.0),
            5.6,
            DegradationMode::Nominal,
            SimTime::ZERO,
            0,
        );
        let rep = c.finish();
        assert!(rep.ok());
        assert_eq!(rep.checked_ticks, 1);
    }

    #[test]
    fn contact_with_observed_obstacle_is_a_collision() {
        let world = world_with_static_at(10.0);
        let mut c = SafetyChecker::new(SafetyConfig::default());
        // Observe it for 2 s from afar, then teleport into contact.
        tick_n(&mut c, &world, &Pose2::new(0.0, 0.0, 0.0), 2.0, 21);
        c.check_tick(
            &world,
            &Pose2::new(9.5, 0.0, 0.0), // gap = 0.5 - 0.5 radius = 0.0
            1.5,
            DegradationMode::Nominal,
            SimTime::from_millis(2_100),
            21,
        );
        let rep = c.finish();
        assert!(!rep.ok());
        let first = rep.first.expect("violation recorded");
        assert_eq!(first.invariant, Invariant::NoCollision);
        assert_eq!(first.frame, 21);
    }

    #[test]
    fn unobserved_obstacle_is_excused() {
        let world = world_with_static_at(10.0);
        let mut c = SafetyChecker::new(SafetyConfig::default());
        // Contact on the very first tick: no observation history, so no
        // invariant binds (the drive still ends with outcome Collision —
        // the checker only decides *attribution*).
        c.check_tick(
            &world,
            &Pose2::new(9.5, 0.0, 0.0),
            1.5,
            DegradationMode::Nominal,
            SimTime::ZERO,
            0,
        );
        assert!(c.finish().ok());
    }

    #[test]
    fn overspeed_toward_wall_breaks_reachability() {
        let world = world_with_static_at(30.0);
        let mut c = SafetyChecker::new(SafetyConfig::default());
        // Observed from the start; after grace, speeding at the max cap
        // toward it until stopping distance exceeds the gap.
        tick_n(&mut c, &world, &Pose2::new(0.0, 0.0, 0.0), 2.0, 20);
        // 8.9 m/s ⇒ stopping 9.9 m; gap 4.5 m ⇒ violated.
        c.check_tick(
            &world,
            &Pose2::new(25.0, 0.0, 0.0),
            8.9,
            DegradationMode::Nominal,
            SimTime::from_millis(2_000),
            20,
        );
        let rep = c.finish();
        assert_eq!(
            rep.first.expect("violation").invariant,
            Invariant::SafeStopReachable
        );
    }

    #[test]
    fn beside_the_path_is_not_a_standoff_problem() {
        // Obstacle 2.5 m to the left: passed at speed without violating
        // min-gap or reachability (but still a collision if touched).
        use sov_world::obstacle::{Obstacle, ObstacleClass};
        let mut s = Scenario::fishers_indiana(1);
        s.world.obstacles = vec![Obstacle::fixed(
            ObstacleId(0),
            ObstacleClass::StaticObject,
            Pose2::new(10.0, 2.8, 0.0),
            SimTime::ZERO,
        )];
        let mut c = SafetyChecker::new(SafetyConfig::default());
        tick_n(&mut c, &s.world, &Pose2::new(0.0, 0.0, 0.0), 2.0, 20);
        c.check_tick(
            &s.world,
            &Pose2::new(9.0, 0.0, 0.0), // 1 m ahead, 2.8 m left
            5.6,
            DegradationMode::Nominal,
            SimTime::from_millis(2_000),
            20,
        );
        assert!(c.finish().ok());
    }

    #[test]
    fn safestop_must_actually_stop() {
        let world = Scenario::fishers_indiana(1).world;
        let mut c = SafetyChecker::new(SafetyConfig::default());
        for i in 0..40u64 {
            c.check_tick(
                &world,
                &Pose2::new(i as f64, 0.0, 0.0),
                3.0, // never slows down
                DegradationMode::SafeStop,
                SimTime::from_millis(i * 100),
                i,
            );
        }
        let rep = c.finish();
        assert_eq!(
            rep.first.expect("violation").invariant,
            Invariant::SafeStopHalts
        );
        // A SafeStop that does come to rest is fine.
        let mut c = SafetyChecker::new(SafetyConfig::default());
        for i in 0..40u64 {
            let speed = (3.0 - i as f64 * 0.4).max(0.0);
            c.check_tick(
                &world,
                &Pose2::new(i as f64 * 0.1, 0.0, 0.0),
                speed,
                DegradationMode::SafeStop,
                SimTime::from_millis(i * 100),
                i,
            );
        }
        assert!(c.finish().ok());
    }
}
