//! Obstacle motion prediction (the "Action/Traffic Prediction" block of
//! Fig. 5).
//!
//! At micromobility speeds and planning horizons of a few seconds, constant-
//! velocity extrapolation in route coordinates is the paper's operative
//! model; the prediction feeds both path planning and collision detection.

use crate::PlanningObstacle;

/// A predicted obstacle position at one future time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedPosition {
    /// Time offset from now (s).
    pub t_s: f64,
    /// Station along the route (m).
    pub station_m: f64,
    /// Lateral offset (m).
    pub lateral_m: f64,
}

/// Predicts an obstacle's route-frame positions over `horizon_s` at `dt_s`
/// steps (constant-velocity along the route; lateral assumed constant).
///
/// # Panics
///
/// Panics (debug builds) if `dt_s` is not positive.
#[must_use]
pub fn predict(obstacle: &PlanningObstacle, horizon_s: f64, dt_s: f64) -> Vec<PredictedPosition> {
    debug_assert!(dt_s > 0.0, "prediction step must be positive");
    let steps = (horizon_s / dt_s).ceil() as usize;
    (0..=steps)
        .map(|k| {
            let t = k as f64 * dt_s;
            PredictedPosition {
                t_s: t,
                station_m: obstacle.station_m + obstacle.speed_along_mps * t,
                lateral_m: obstacle.lateral_m,
            }
        })
        .collect()
}

/// The soonest time (s) at which the obstacle's predicted station falls
/// within `gap_m` of the ego vehicle's predicted station, assuming the ego
/// travels at constant `ego_speed_mps`. `None` if never within the horizon.
#[must_use]
pub fn time_to_encounter_s(
    obstacle: &PlanningObstacle,
    ego_speed_mps: f64,
    gap_m: f64,
    horizon_s: f64,
) -> Option<f64> {
    // Relative closing speed along the route.
    let closing = ego_speed_mps - obstacle.speed_along_mps;
    let initial_gap = obstacle.station_m;
    if initial_gap <= gap_m {
        return Some(0.0);
    }
    if closing <= 0.0 {
        return None; // obstacle pulling away
    }
    let t = (initial_gap - gap_m) / closing;
    (t <= horizon_s).then_some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obstacle(station: f64, speed: f64) -> PlanningObstacle {
        PlanningObstacle {
            station_m: station,
            lateral_m: 0.0,
            speed_along_mps: speed,
            radius_m: 0.5,
        }
    }

    #[test]
    fn static_obstacle_prediction_is_constant() {
        let preds = predict(&obstacle(20.0, 0.0), 2.0, 0.5);
        assert_eq!(preds.len(), 5);
        assert!(preds.iter().all(|p| (p.station_m - 20.0).abs() < 1e-12));
    }

    #[test]
    fn moving_obstacle_advances() {
        let preds = predict(&obstacle(10.0, 2.0), 3.0, 1.0);
        assert!((preds[3].station_m - 16.0).abs() < 1e-12);
        assert!((preds[3].t_s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn encounter_with_static_obstacle() {
        // Ego at 5.6 m/s, static obstacle 20 m ahead, 2 m gap: t = 18/5.6.
        let t = time_to_encounter_s(&obstacle(20.0, 0.0), 5.6, 2.0, 10.0).unwrap();
        assert!((t - 18.0 / 5.6).abs() < 1e-12);
    }

    #[test]
    fn no_encounter_with_fleeing_obstacle() {
        assert!(time_to_encounter_s(&obstacle(20.0, 8.0), 5.6, 2.0, 10.0).is_none());
    }

    #[test]
    fn already_inside_gap() {
        assert_eq!(
            time_to_encounter_s(&obstacle(1.0, 0.0), 5.6, 2.0, 10.0),
            Some(0.0)
        );
    }

    #[test]
    fn encounter_beyond_horizon_is_none() {
        assert!(time_to_encounter_s(&obstacle(200.0, 0.0), 5.6, 2.0, 5.0).is_none());
    }
}
