//! Planning for the SoV (Table III: MPC; Sec. V-C's planner comparison).
//!
//! The paper's planner is formulated as Model Predictive Control and is
//! deliberately *coarse-grained*: the vehicle maneuvers at lane granularity
//! (stay in lane / switch lanes, Sec. III-D), which is why planning
//! contributes only ~3 ms (~1%) of the end-to-end latency (Sec. V-C). As
//! the expensive counterpoint, the paper measures the Baidu Apollo **EM
//! motion planner** — a combination of dynamic programming and quadratic
//! programming producing centimeter-granularity plans — at ~100 ms on the
//! same platform, 33× the cost.
//!
//! This crate implements both:
//!
//! * [`qp`] — a box-constrained quadratic-program solver (projected
//!   gradient), the shared numerical substrate.
//! * [`mpc`] — the lane-granularity MPC planner ([`mpc::MpcPlanner`]).
//! * [`em`] — the EM-style baseline ([`em::EmPlanner`]): DP over a
//!   station–lateral lattice followed by QP speed smoothing.
//! * [`prediction`] — constant-velocity obstacle prediction
//!   (action/traffic prediction in Fig. 5).
//! * [`collision`] — trajectory-vs-obstacle collision checking.
//!
//! # Example
//!
//! ```
//! use sov_planning::mpc::{MpcConfig, MpcPlanner};
//! use sov_planning::{PlanningInput, Planner};
//!
//! let mut planner = MpcPlanner::new(MpcConfig::default());
//! let input = PlanningInput::cruising(5.6, 5.6);
//! let plan = planner.plan(&input);
//! assert!(plan.command.brake_mps2 < 0.5); // nothing ahead: keep cruising
//! ```

#![deny(missing_docs)]

pub mod collision;
pub mod em;
pub mod mpc;
pub mod prediction;
pub mod qp;

use sov_vehicle::dynamics::ControlCommand;

/// An obstacle as the planner sees it, in route (Frenet-like) coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanningObstacle {
    /// Distance ahead along the route (m); negative = behind.
    pub station_m: f64,
    /// Lateral offset from the lane centerline (m, +left).
    pub lateral_m: f64,
    /// Speed along the route direction (m/s).
    pub speed_along_mps: f64,
    /// Footprint radius (m).
    pub radius_m: f64,
}

/// Everything the planner needs for one cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanningInput {
    /// Current speed (m/s).
    pub speed_mps: f64,
    /// Reference (desired) speed (m/s).
    pub ref_speed_mps: f64,
    /// Lateral offset of the vehicle from the lane centerline (m).
    pub lateral_offset_m: f64,
    /// Heading error relative to the lane tangent (rad).
    pub heading_error_rad: f64,
    /// Obstacles ahead, in route coordinates.
    pub obstacles: Vec<PlanningObstacle>,
    /// Lane width (m); lane-change maneuvers move by this amount.
    pub lane_width_m: f64,
    /// Whether an adjacent lane exists to the left.
    pub left_lane_available: bool,
    /// Whether an adjacent lane exists to the right.
    pub right_lane_available: bool,
}

impl PlanningInput {
    /// A simple cruising input with no obstacles.
    #[must_use]
    pub fn cruising(speed_mps: f64, ref_speed_mps: f64) -> Self {
        Self {
            speed_mps,
            ref_speed_mps,
            lateral_offset_m: 0.0,
            heading_error_rad: 0.0,
            obstacles: Vec::new(),
            lane_width_m: 2.5,
            left_lane_available: false,
            right_lane_available: false,
        }
    }

    /// Adds an obstacle (builder-style).
    #[must_use]
    pub fn with_obstacle(mut self, obstacle: PlanningObstacle) -> Self {
        self.obstacles.push(obstacle);
        self
    }
}

/// The lane-granularity maneuver decision (Sec. III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LaneDecision {
    /// Stay in the current lane.
    Keep,
    /// Switch one lane to the left.
    SwitchLeft,
    /// Switch one lane to the right.
    SwitchRight,
    /// Stop for an unavoidable obstacle.
    Stop,
}

/// One point of a planned trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Time offset from now (s).
    pub t_s: f64,
    /// Station along the route (m).
    pub station_m: f64,
    /// Lateral offset (m).
    pub lateral_m: f64,
    /// Speed (m/s).
    pub speed_mps: f64,
}

/// A complete plan for one cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The immediate control command.
    pub command: ControlCommand,
    /// The planned trajectory over the horizon.
    pub trajectory: Vec<TrajectoryPoint>,
    /// The maneuver decision.
    pub decision: LaneDecision,
}

/// A motion planner.
pub trait Planner {
    /// Produces a plan for the current cycle.
    fn plan(&mut self, input: &PlanningInput) -> Plan;

    /// Human-readable planner name (for reports).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cruising_input_builder() {
        let input = PlanningInput::cruising(5.0, 5.6).with_obstacle(PlanningObstacle {
            station_m: 20.0,
            lateral_m: 0.0,
            speed_along_mps: 0.0,
            radius_m: 0.5,
        });
        assert_eq!(input.obstacles.len(), 1);
        assert_eq!(input.speed_mps, 5.0);
    }
}
