#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the tier-1 suite.
#
# Everything here runs fully offline — the workspace has no external
# dependencies (see DESIGN.md §3), so `--offline` only asserts that this
# stays true.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== tier-1: build --release =="
cargo build --offline --workspace --release

echo "== tier-1: test =="
cargo test --offline --workspace -q

echo "== fused score+NMS bit-identity proptest (tile-seam corners) =="
cargo test --offline -q -p sov-perception --test proptests fused_nms

echo "== fault-window overlap-merge proptests =="
cargo test --offline -q -p sov-fault --test proptests

echo "== scenario-generator regeneration proptests =="
cargo test --offline -q -p sov-world --test proptests

echo "== safety-invariant nominal acceptance (sites + generated) =="
cargo test --offline -q -p sov-core --test safety_invariants

echo "== bench bins build + perf_matrix smoke =="
cargo build --offline --release -p sov-bench --bins
./target/release/perf_matrix --smoke

echo "== pipeline_matrix smoke (front-end-lane cells; exits non-zero on =="
echo "== checksum mismatch or an idle lane in the d3 w4 drive cell)     =="
./target/release/pipeline_matrix --smoke

echo "== scenario_matrix smoke (generated scenarios × faults, safety =="
echo "== invariants per frame; proves worker-lane JSON invariance)   =="
./target/release/scenario_matrix --smoke --workers 3

echo "All checks passed."
