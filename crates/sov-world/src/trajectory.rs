//! Ground-truth routes along the lane graph.
//!
//! A [`Route`] concatenates lanes into one continuous arclength
//! parameterization, so the vehicle model can answer "where should I be at
//! arclength `s`" and the evaluation harness can compute cross-track error
//! against ground truth.

use crate::map::{LaneId, LaneMap, UnknownLaneError};
use sov_math::Pose2;

/// A contiguous sequence of lanes traversed start-to-end.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    lane_ids: Vec<LaneId>,
    /// Cumulative arclength at the start of each lane, plus total at end.
    offsets: Vec<f64>,
    /// Per-lane speed limits sampled at lane starts.
    speed_limits: Vec<f64>,
    /// Poses cached at lane boundaries for continuity checks.
    total_length: f64,
}

/// Error building a route.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// Route must contain at least one lane.
    Empty,
    /// A lane id was not present in the map.
    UnknownLane(LaneId),
    /// Consecutive lanes are not connected in the map.
    Disconnected(LaneId, LaneId),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "route must contain at least one lane"),
            Self::UnknownLane(id) => write!(f, "route references unknown {id}"),
            Self::Disconnected(a, b) => write!(f, "{a} is not connected to {b}"),
        }
    }
}

impl std::error::Error for RouteError {}

impl From<UnknownLaneError> for RouteError {
    fn from(e: UnknownLaneError) -> Self {
        Self::UnknownLane(e.0)
    }
}

impl Route {
    /// Builds a route through the given lane ids, validating connectivity.
    ///
    /// # Errors
    ///
    /// Returns a [`RouteError`] if the list is empty, references an unknown
    /// lane, or contains a pair of consecutive lanes that are not connected.
    pub fn through(map: &LaneMap, lane_ids: Vec<LaneId>) -> Result<Self, RouteError> {
        if lane_ids.is_empty() {
            return Err(RouteError::Empty);
        }
        let mut offsets = Vec::with_capacity(lane_ids.len() + 1);
        let mut speed_limits = Vec::with_capacity(lane_ids.len());
        offsets.push(0.0);
        for (i, &id) in lane_ids.iter().enumerate() {
            let lane = map.lane(id).ok_or(RouteError::UnknownLane(id))?;
            if i > 0 {
                let prev = map
                    .lane(lane_ids[i - 1])
                    .ok_or(RouteError::UnknownLane(lane_ids[i - 1]))?;
                if !prev.successors().contains(&id) {
                    return Err(RouteError::Disconnected(prev.id(), id));
                }
            }
            speed_limits.push(lane.speed_limit_mps());
            offsets.push(offsets[i] + lane.length_m());
        }
        let total_length = *offsets.last().expect("non-empty");
        Ok(Self {
            lane_ids,
            offsets,
            speed_limits,
            total_length,
        })
    }

    /// Total route length in meters.
    #[must_use]
    pub fn length_m(&self) -> f64 {
        self.total_length
    }

    /// Lanes in traversal order.
    #[must_use]
    pub fn lane_ids(&self) -> &[LaneId] {
        &self.lane_ids
    }

    /// The lane active at route arclength `s`, with the within-lane
    /// arclength. `s` is clamped to the route.
    #[must_use]
    pub fn lane_at(&self, s: f64) -> (LaneId, f64) {
        let s = s.clamp(0.0, self.total_length);
        // Find the lane whose [offset, next_offset) contains s.
        let mut idx = match self
            .offsets
            .binary_search_by(|o| o.partial_cmp(&s).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        idx = idx.min(self.lane_ids.len() - 1);
        (self.lane_ids[idx], s - self.offsets[idx])
    }

    /// Ground-truth pose at route arclength `s` (requires the map).
    ///
    /// Returns `None` if the map no longer contains the lane (the route has
    /// outlived its map).
    #[must_use]
    pub fn pose_at(&self, map: &LaneMap, s: f64) -> Option<Pose2> {
        let (lane_id, local_s) = self.lane_at(s);
        Some(map.lane(lane_id)?.pose_at(local_s))
    }

    /// Projects a world position onto the route: returns `(station,
    /// lateral_offset)` of the closest point across all route lanes.
    ///
    /// Returns `None` if the map no longer contains a route lane.
    #[must_use]
    pub fn project(&self, map: &LaneMap, x: f64, y: f64) -> Option<(f64, f64)> {
        let mut best: Option<(f64, f64, f64)> = None; // (station, lateral, |lateral|)
        for (i, &id) in self.lane_ids.iter().enumerate() {
            let lane = map.lane(id)?;
            let (s_local, lateral) = lane.project(x, y);
            let station = self.offsets[i] + s_local;
            if best.is_none_or(|(_, _, d)| lateral.abs() < d) {
                best = Some((station, lateral, lateral.abs()));
            }
        }
        best.map(|(s, l, _)| (s, l))
    }

    /// Speed limit at route arclength `s`.
    #[must_use]
    pub fn speed_limit_at(&self, s: f64) -> f64 {
        let (lane_id, _) = self.lane_at(s);
        let idx = self
            .lane_ids
            .iter()
            .position(|&id| id == lane_id)
            .expect("lane_at returns member lanes");
        self.speed_limits[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::rectangular_loop;

    fn loop_route() -> (LaneMap, Route) {
        let map = rectangular_loop(100.0, 50.0, 2.5, 8.9);
        let route = Route::through(&map, vec![LaneId(0), LaneId(1), LaneId(2), LaneId(3)]).unwrap();
        (map, route)
    }

    #[test]
    fn route_length_sums_lanes() {
        let (_, route) = loop_route();
        assert!((route.length_m() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn lane_at_boundaries() {
        let (_, route) = loop_route();
        assert_eq!(route.lane_at(0.0), (LaneId(0), 0.0));
        let (id, s) = route.lane_at(100.0);
        assert_eq!(id, LaneId(1));
        assert!(s.abs() < 1e-12);
        let (id_end, _) = route.lane_at(299.9);
        assert_eq!(id_end, LaneId(3));
        // Clamped beyond the end.
        let (id_over, s_over) = route.lane_at(1000.0);
        assert_eq!(id_over, LaneId(3));
        assert!((s_over - 50.0).abs() < 1e-9);
    }

    #[test]
    fn pose_at_is_continuous_across_lanes() {
        let (map, route) = loop_route();
        let before = route.pose_at(&map, 99.999).unwrap();
        let after = route.pose_at(&map, 100.001).unwrap();
        assert!(before.distance(&after) < 0.01);
    }

    #[test]
    fn disconnected_route_rejected() {
        let map = rectangular_loop(100.0, 50.0, 2.5, 8.9);
        let err = Route::through(&map, vec![LaneId(0), LaneId(2)]).unwrap_err();
        assert_eq!(err, RouteError::Disconnected(LaneId(0), LaneId(2)));
    }

    #[test]
    fn empty_and_unknown_rejected() {
        let map = rectangular_loop(100.0, 50.0, 2.5, 8.9);
        assert_eq!(Route::through(&map, vec![]).unwrap_err(), RouteError::Empty);
        assert!(matches!(
            Route::through(&map, vec![LaneId(7)]).unwrap_err(),
            RouteError::UnknownLane(LaneId(7))
        ));
    }

    #[test]
    fn speed_limit_lookup() {
        let (_, route) = loop_route();
        assert_eq!(route.speed_limit_at(10.0), 8.9);
    }
}
