//! Visual-Inertial Odometry (Table III: VIO, Sec. VI-A/VI-B).
//!
//! The filter follows the loosely-coupled EKF design the paper builds on
//! (Bloesch et al.): the IMU propagates heading at 240 Hz, the camera
//! front-end supplies frame-to-frame ego-motion increments at 30 FPS, and an
//! EKF tracks `[x, y, θ]` with a covariance that **grows with distance
//! traveled** — the cumulative drift of Sec. VI-B that the GPS–VIO fusion
//! ([`crate::fusion`]) corrects.
//!
//! Two behaviours from the paper are reproduced faithfully:
//!
//! * **Timestamp sensitivity (Fig. 11b).** The filter keeps a short heading
//!   history indexed by *assigned* timestamps. A camera increment is rotated
//!   into the world frame using the heading looked up at the increment's
//!   assigned capture time; when camera and IMU timestamps are out of sync,
//!   the wrong heading is used and the trajectory bends away from truth —
//!   by meters over a single course at 40 ms of offset.
//! * **Keyframe / non-keyframe processing.** Features in keyframes are
//!   extracted afresh; features in other frames are tracked from previous
//!   frames, which is ~50% faster (Sec. V-B3) — the workload pair behind the
//!   runtime-partial-reconfiguration engine.

use sov_math::kalman::Ekf;
use sov_math::matrix::{Matrix, Vector};
use sov_math::{angle, Pose2, SovRng};
use sov_sensors::imu::ImuSample;
use sov_sim::time::SimTime;
use std::collections::VecDeque;

/// Whether a frame is processed by feature *extraction* (keyframe) or
/// feature *tracking* (non-keyframe) — Sec. V-B3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Fresh feature extraction (slower; 20 ms on the paper's FPGA).
    Keyframe,
    /// KLT-style tracking from the previous frame (10 ms, 50% faster).
    Tracked,
}

/// A frame-to-frame ego-motion increment from the visual front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VisualDelta {
    /// Assigned capture time of the previous frame.
    pub t_from: SimTime,
    /// Assigned capture time of this frame.
    pub t_to: SimTime,
    /// Body-frame forward displacement (m).
    pub forward_m: f64,
    /// Body-frame lateral displacement (m, +left).
    pub lateral_m: f64,
    /// Heading change (rad).
    pub dtheta: f64,
    /// Processing kind of this frame.
    pub kind: FrameKind,
}

/// VIO configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VioConfig {
    /// Per-frame translation noise σ (m) injected into the covariance.
    pub trans_sigma_m: f64,
    /// Per-frame rotation noise σ (rad).
    pub rot_sigma_rad: f64,
    /// Gyro propagation noise σ (rad/√s).
    pub gyro_sigma: f64,
    /// Heading-history horizon (s).
    pub history_horizon_s: f64,
}

impl Default for VioConfig {
    fn default() -> Self {
        Self {
            trans_sigma_m: 0.02,
            rot_sigma_rad: 0.002,
            gyro_sigma: 0.003,
            history_horizon_s: 1.0,
        }
    }
}

/// The VIO localization filter.
#[derive(Debug, Clone, PartialEq)]
pub struct VioFilter {
    ekf: Ekf<3>,
    speed_mps: f64,
    last_imu_time: Option<SimTime>,
    /// Heading from pure gyro integration, independent of the visual
    /// updates. Used only for timestamp-indexed lookups, so a camera
    /// timestamp offset maps to a *bounded* ω·δ heading error instead of a
    /// compounding one.
    imu_heading: f64,
    history: VecDeque<(SimTime, f64)>,
    config: VioConfig,
    distance_traveled_m: f64,
}

impl VioFilter {
    /// Creates a filter at the given initial pose with small initial
    /// uncertainty.
    #[must_use]
    pub fn new(initial: Pose2, config: VioConfig) -> Self {
        Self {
            ekf: Ekf::new(
                Vector::from_array([initial.x, initial.y, initial.theta]),
                Matrix::from_diagonal([0.01, 0.01, 1e-4]),
            ),
            speed_mps: 0.0,
            last_imu_time: None,
            imu_heading: initial.theta,
            history: VecDeque::new(),
            config,
            distance_traveled_m: 0.0,
        }
    }

    /// Current pose estimate.
    #[must_use]
    pub fn pose(&self) -> Pose2 {
        let s = self.ekf.state();
        Pose2::new(s[0], s[1], s[2])
    }

    /// Current speed estimate (m/s), derived from visual increments.
    #[must_use]
    pub fn speed_mps(&self) -> f64 {
        self.speed_mps
    }

    /// Current pose covariance (x, y, θ).
    #[must_use]
    pub fn covariance(&self) -> &Matrix<3, 3> {
        self.ekf.covariance()
    }

    /// Total odometric distance integrated so far (m).
    #[must_use]
    pub fn distance_traveled_m(&self) -> f64 {
        self.distance_traveled_m
    }

    /// Mutable access to the underlying EKF, used by the GPS–VIO fusion
    /// layer to apply absolute position updates (Sec. VI-B).
    pub fn ekf_mut(&mut self) -> &mut Ekf<3> {
        &mut self.ekf
    }

    /// Propagates heading with one IMU sample (240 Hz).
    pub fn propagate_imu(&mut self, sample: &ImuSample) {
        let dt = match self.last_imu_time {
            Some(prev) => sample.timestamp.since(prev).as_secs_f64(),
            None => 0.0,
        };
        self.last_imu_time = Some(sample.timestamp);
        if dt > 0.0 {
            let s = *self.ekf.state();
            let theta = angle::wrap(s[2] + sample.yaw_rate * dt);
            let predicted = Vector::from_array([s[0], s[1], theta]);
            let q = self.config.gyro_sigma * self.config.gyro_sigma * dt;
            self.ekf.predict(
                predicted,
                Matrix::identity(),
                Matrix::from_diagonal([0.0, 0.0, q]),
            );
            self.imu_heading = angle::wrap(self.imu_heading + sample.yaw_rate * dt);
        }
        let heading = self.imu_heading;
        self.push_history(sample.timestamp, heading);
    }

    /// Applies one visual ego-motion increment.
    ///
    /// The increment's body-frame translation is rotated into the world
    /// frame using the heading *at the increment's assigned capture time*
    /// (history lookup). Out-of-sync camera timestamps therefore corrupt the
    /// rotation — the Fig. 11b failure mode.
    pub fn visual_update(&mut self, delta: &VisualDelta) {
        let s = *self.ekf.state();
        // Midpoint heading over the frame interval, as assigned timestamps
        // see it.
        let theta_from = self.theta_at(delta.t_from).unwrap_or(s[2]);
        let heading = angle::wrap(theta_from + 0.5 * delta.dtheta);
        let (sin_h, cos_h) = heading.sin_cos();
        let dx_world = cos_h * delta.forward_m - sin_h * delta.lateral_m;
        let dy_world = sin_h * delta.forward_m + cos_h * delta.lateral_m;
        // Heading is re-anchored each frame: the heading at the frame's
        // (assigned) start time plus the visual rotation over the frame.
        // Under correct sync this agrees with the IMU-propagated heading;
        // under camera–IMU desync the anchor is looked up at the wrong time,
        // leaving a persistent ω·δ heading error during turns — the root of
        // the Fig. 11b trajectory divergence. (Adding dtheta to the current
        // state instead would double-count rotation.)
        let theta_next = angle::wrap(theta_from + delta.dtheta);
        let predicted = Vector::from_array([s[0] + dx_world, s[1] + dy_world, theta_next]);
        // Jacobian of the world displacement w.r.t. heading.
        let jac = Matrix::from_rows([[1.0, 0.0, -dy_world], [0.0, 1.0, dx_world], [0.0, 0.0, 1.0]]);
        let tq = self.config.trans_sigma_m * self.config.trans_sigma_m;
        let rq = self.config.rot_sigma_rad * self.config.rot_sigma_rad;
        self.ekf
            .predict(predicted, jac, Matrix::from_diagonal([tq, tq, rq]));
        let dt = delta.t_to.since(delta.t_from).as_secs_f64();
        if dt > 0.0 {
            self.speed_mps = delta.forward_m / dt;
        }
        self.distance_traveled_m +=
            (delta.forward_m * delta.forward_m + delta.lateral_m * delta.lateral_m).sqrt();
    }

    fn push_history(&mut self, t: SimTime, theta: f64) {
        self.history.push_back((t, theta));
        let horizon = self.config.history_horizon_s;
        while let Some(&(front, _)) = self.history.front() {
            if t.as_secs_f64() - front.as_secs_f64() > horizon && self.history.len() > 2 {
                self.history.pop_front();
            } else {
                break;
            }
        }
    }

    /// Heading estimate at assigned time `t` (nearest entry of the
    /// IMU-propagated heading history; only [`Self::propagate_imu`] pushes
    /// entries, so the lookup reflects the IMU timeline — which is exactly
    /// why a camera timestamp offset retrieves the wrong heading).
    fn theta_at(&self, t: SimTime) -> Option<f64> {
        self.history
            .iter()
            .min_by(|a, b| {
                let da = (a.0.as_secs_f64() - t.as_secs_f64()).abs();
                let db = (b.0.as_secs_f64() - t.as_secs_f64()).abs();
                da.partial_cmp(&db).expect("finite")
            })
            .map(|&(_, theta)| theta)
    }
}

/// The visual front-end: turns ground-truth motion into noisy ego-motion
/// increments, with keyframe cadence and a small scale bias (the cumulative
/// drift source).
#[derive(Debug, Clone, PartialEq)]
pub struct VisualFrontEnd {
    /// Multiplicative scale bias on translation (e.g. 1.002 = 0.2% long).
    pub scale_bias: f64,
    /// Translation noise σ per frame (m).
    pub trans_sigma_m: f64,
    /// Rotation noise σ per frame (rad).
    pub rot_sigma_rad: f64,
    /// A keyframe every `keyframe_interval` frames.
    pub keyframe_interval: u64,
    frame_index: u64,
    rng: SovRng,
}

impl VisualFrontEnd {
    /// Creates a front-end with typical parameters.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut rng = SovRng::seed_from_u64(seed ^ 0x56494F);
        // Per-run scale bias of up to ±0.5%.
        let scale_bias = 1.0 + rng.uniform(-0.005, 0.005);
        Self {
            scale_bias,
            trans_sigma_m: 0.01,
            rot_sigma_rad: 0.001,
            keyframe_interval: 5,
            frame_index: 0,
            rng,
        }
    }

    /// Number of frames processed.
    #[must_use]
    pub fn frame_index(&self) -> u64 {
        self.frame_index
    }

    /// Produces the ego-motion increment between two ground-truth poses,
    /// stamped with the *assigned* capture times supplied by the
    /// synchronization layer.
    pub fn measure(
        &mut self,
        true_from: &Pose2,
        true_to: &Pose2,
        t_from_assigned: SimTime,
        t_to_assigned: SimTime,
    ) -> VisualDelta {
        let rel = true_from.between(true_to);
        let kind = if self.frame_index.is_multiple_of(self.keyframe_interval) {
            FrameKind::Keyframe
        } else {
            FrameKind::Tracked
        };
        self.frame_index += 1;
        VisualDelta {
            t_from: t_from_assigned,
            t_to: t_to_assigned,
            forward_m: rel.x * self.scale_bias + self.rng.normal(0.0, self.trans_sigma_m),
            lateral_m: rel.y * self.scale_bias + self.rng.normal(0.0, self.trans_sigma_m),
            dtheta: rel.theta + self.rng.normal(0.0, self.rot_sigma_rad),
            kind,
        }
    }
}

/// Mean depth of the features the front-end tracks (m); sets the scale of
/// the rotation–translation ambiguity.
const MEAN_FEATURE_DEPTH_M: f64 = 12.0;

/// Fraction of the rotation–translation ambiguity that leaks into the
/// front-end's translation estimate when gyro-aided feature compensation
/// uses misaligned timestamps. An unmodeled rotation ε over a frame is
/// first-order indistinguishable from a lateral translation `ε · Z̄`; robust
/// estimation suppresses most, but not all, of it.
const ROTATION_LEAK_GAIN: f64 = 0.15;

/// Drives a VIO filter along a ground-truth trajectory with a configurable
/// camera–IMU timestamp offset, returning `(estimated, truth)` pose pairs
/// per frame — the kernel of the Fig. 11b experiment.
///
/// `camera_offset_ms` shifts the *assigned* camera timestamps relative to
/// the (correct) IMU timeline. The offset corrupts the run through two
/// mechanisms: (1) the filter rotates increments with the heading looked up
/// at the wrong time, and (2) the front-end's gyro-aided feature
/// compensation is misaligned by `ω·δ`, of which a fraction leaks into the
/// translation estimate as `ε·Z̄` lateral bias (rotation–translation
/// ambiguity).
pub fn run_vio_with_offset(
    poses: &[(SimTime, Pose2)],
    yaw_rates: &[f64],
    camera_offset_ms: f64,
    seed: u64,
) -> Vec<(Pose2, Pose2)> {
    assert_eq!(poses.len(), yaw_rates.len(), "one yaw rate per pose sample");
    let mut filter = VioFilter::new(poses[0].1, VioConfig::default());
    let mut frontend = VisualFrontEnd::new(seed);
    let mut out = Vec::new();
    // IMU runs at every sample; camera every 8th (30 FPS vs 240 Hz).
    for i in 1..poses.len() {
        let (t, truth) = poses[i];
        let sample = ImuSample {
            timestamp: t,
            yaw_rate: yaw_rates[i],
            accel_forward: 0.0,
            accel_lateral: 0.0,
        };
        filter.propagate_imu(&sample);
        if i % 8 == 0 && i >= 8 {
            let (t_prev, prev_truth) = poses[i - 8];
            let offset = camera_offset_ms * 1e-3;
            let assign =
                |time: SimTime| SimTime::from_secs_f64((time.as_secs_f64() + offset).max(0.0));
            let mut delta = frontend.measure(&prev_truth, &truth, assign(t_prev), assign(t));
            // Rotation–translation ambiguity leak: misaligned gyro
            // compensation of ε = ω·δ radians appears as lateral
            // translation ε·Z̄ in the solved increment.
            let epsilon = yaw_rates[i] * offset;
            delta.lateral_m += ROTATION_LEAK_GAIN * epsilon * MEAN_FEATURE_DEPTH_M;
            filter.visual_update(&delta);
            out.push((filter.pose(), truth));
        }
    }
    out
}

/// Final-position error (m) of a [`run_vio_with_offset`] run.
#[must_use]
pub fn final_error_m(trace: &[(Pose2, Pose2)]) -> f64 {
    trace.last().map_or(0.0, |(est, truth)| est.distance(truth))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground truth: a course with sustained turning (quarter circles),
    /// sampled at 240 Hz.
    fn turning_course(duration_s: f64) -> (Vec<(SimTime, Pose2)>, Vec<f64>) {
        let dt = 1.0 / 240.0;
        let n = (duration_s / dt) as usize;
        let mut poses = Vec::with_capacity(n);
        let mut rates = Vec::with_capacity(n);
        let mut pose = Pose2::identity();
        let v = 5.6;
        for i in 0..n {
            let t = i as f64 * dt;
            // Mostly-turning course (a winding tourist loop): one straight
            // stretch every three segments.
            let omega = if ((t / 3.0) as u64).is_multiple_of(3) {
                0.0
            } else {
                0.4
            };
            pose = pose.step_unicycle(v, omega, dt);
            poses.push((SimTime::from_secs_f64(t), pose));
            rates.push(omega);
        }
        (poses, rates)
    }

    #[test]
    fn synced_vio_tracks_well() {
        let (poses, rates) = turning_course(30.0);
        let trace = run_vio_with_offset(&poses, &rates, 0.0, 1);
        let err = final_error_m(&trace);
        let dist = 5.6 * 30.0;
        assert!(err < 0.02 * dist, "synced error {err} m over {dist} m");
    }

    #[test]
    fn unsynced_vio_drifts_hard() {
        let (poses, rates) = turning_course(30.0);
        let synced = final_error_m(&run_vio_with_offset(&poses, &rates, 0.0, 2));
        let off20 = final_error_m(&run_vio_with_offset(&poses, &rates, 20.0, 2));
        let off40 = final_error_m(&run_vio_with_offset(&poses, &rates, 40.0, 2));
        assert!(
            off20 > synced,
            "20 ms offset must hurt: {off20} vs {synced}"
        );
        assert!(off40 > off20, "more offset, more error: {off40} vs {off20}");
        assert!(
            off40 > 1.0,
            "40 ms offset should cost meters, got {off40} m"
        );
    }

    #[test]
    fn covariance_grows_with_distance() {
        let (poses, rates) = turning_course(20.0);
        let mut filter = VioFilter::new(poses[0].1, VioConfig::default());
        let mut frontend = VisualFrontEnd::new(3);
        let mut early_var = None;
        for i in 1..poses.len() {
            let (t, truth) = poses[i];
            filter.propagate_imu(&ImuSample {
                timestamp: t,
                yaw_rate: rates[i],
                accel_forward: 0.0,
                accel_lateral: 0.0,
            });
            if i % 8 == 0 && i >= 8 {
                let (tp, pp) = poses[i - 8];
                let d = frontend.measure(&pp, &truth, tp, t);
                filter.visual_update(&d);
            }
            if i == 240 {
                early_var = Some(filter.covariance()[(0, 0)]);
            }
        }
        let late_var = filter.covariance()[(0, 0)];
        assert!(
            late_var > early_var.unwrap() * 2.0,
            "drift covariance must grow: {late_var} vs {early_var:?}"
        );
        assert!(filter.distance_traveled_m() > 100.0);
    }

    #[test]
    fn keyframe_cadence() {
        let mut fe = VisualFrontEnd::new(4);
        let a = Pose2::identity();
        let b = Pose2::new(0.2, 0.0, 0.0);
        let kinds: Vec<FrameKind> = (0..10)
            .map(|i| {
                fe.measure(
                    &a,
                    &b,
                    SimTime::from_millis(i * 33),
                    SimTime::from_millis((i + 1) * 33),
                )
                .kind
            })
            .collect();
        assert_eq!(kinds[0], FrameKind::Keyframe);
        assert_eq!(kinds[5], FrameKind::Keyframe);
        assert_eq!(kinds[1], FrameKind::Tracked);
        assert_eq!(
            kinds.iter().filter(|k| **k == FrameKind::Keyframe).count(),
            2
        );
    }

    #[test]
    fn speed_estimate_from_visual_deltas() {
        let mut filter = VioFilter::new(Pose2::identity(), VioConfig::default());
        filter.visual_update(&VisualDelta {
            t_from: SimTime::ZERO,
            t_to: SimTime::from_millis(100),
            forward_m: 0.56,
            lateral_m: 0.0,
            dtheta: 0.0,
            kind: FrameKind::Keyframe,
        });
        assert!((filter.speed_mps() - 5.6).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one yaw rate per pose")]
    fn mismatched_inputs_panic() {
        let _ = run_vio_with_offset(&[(SimTime::ZERO, Pose2::identity())], &[], 0.0, 0);
    }
}
