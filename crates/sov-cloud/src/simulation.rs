//! The cloud simulation service (Fig. 1): regression-gating updates before
//! they reach vehicles.
//!
//! Before a new model or configuration is pushed to the fleet, the cloud
//! replays deployment scenarios against it and compares safety and
//! performance against the incumbent. A candidate is released only if it
//! passes every gate on every site.

use sov_core::config::VehicleConfig;
use sov_core::sov::{DriveOutcome, Sov};
use sov_world::scenario::Scenario;

/// Safety/performance gates a candidate must pass. Collision, latency and
/// localization gates apply per site; the proactive-time gate applies to
/// the **fleet average**, matching how the paper reports the statistic
/// (">90% of the time" across deployments — a single pedestrian-crossing
/// wait can dominate one short site window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReleaseGates {
    /// No collisions, ever.
    pub forbid_collisions: bool,
    /// Minimum fleet-wide proactive-time fraction.
    pub min_proactive_fraction: f64,
    /// Maximum acceptable mean computing latency (ms).
    pub max_mean_computing_ms: f64,
    /// Maximum acceptable fused localization error at end of run (m).
    pub max_localization_error_m: f64,
}

impl Default for ReleaseGates {
    fn default() -> Self {
        Self {
            forbid_collisions: true,
            min_proactive_fraction: 0.9,
            max_mean_computing_ms: 250.0,
            max_localization_error_m: 3.0,
        }
    }
}

/// Result of simulating one site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteResult {
    /// Site name.
    pub site: &'static str,
    /// Drive outcome.
    pub outcome: DriveOutcome,
    /// Proactive-time fraction.
    pub proactive_fraction: f64,
    /// Mean computing latency (ms).
    pub mean_computing_ms: f64,
    /// Final localization error (m).
    pub localization_error_m: f64,
    /// Which gate failed, if any.
    pub failed_gate: Option<&'static str>,
}

impl SiteResult {
    /// Whether every gate passed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failed_gate.is_none()
    }
}

/// A full regression run across sites.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionReport {
    /// Per-site results.
    pub sites: Vec<SiteResult>,
    /// The fleet-average proactive gate threshold used.
    pub min_proactive_fraction: f64,
}

impl RegressionReport {
    /// Fleet-average proactive-time fraction.
    #[must_use]
    pub fn fleet_proactive_fraction(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        self.sites.iter().map(|s| s.proactive_fraction).sum::<f64>() / self.sites.len() as f64
    }

    /// Whether the candidate may be released to the fleet: every per-site
    /// gate passes and the fleet stays proactive on average.
    #[must_use]
    pub fn release_approved(&self) -> bool {
        !self.sites.is_empty()
            && self.sites.iter().all(SiteResult::passed)
            && self.fleet_proactive_fraction() >= self.min_proactive_fraction
    }
}

/// Replays every deployment site against `config` with the given gates.
#[must_use]
pub fn regression_run(
    config: &VehicleConfig,
    gates: &ReleaseGates,
    frames: u64,
    seed: u64,
) -> RegressionReport {
    let sites = Scenario::all_sites(seed)
        .into_iter()
        .map(|scenario| {
            let mut sov = Sov::new(config.clone(), seed);
            let report = sov.drive(&scenario, frames).expect("frames > 0");
            let mean_ms = report.computing.mean();
            let failed_gate =
                if gates.forbid_collisions && report.outcome == DriveOutcome::Collision {
                    Some("collision")
                } else if mean_ms > gates.max_mean_computing_ms {
                    Some("mean-computing-latency")
                } else if report.final_localization_error_m > gates.max_localization_error_m {
                    Some("localization-error")
                } else {
                    None
                };
            SiteResult {
                site: scenario.name,
                outcome: report.outcome,
                proactive_fraction: report.proactive_fraction(),
                mean_computing_ms: mean_ms,
                localization_error_m: report.final_localization_error_m,
                failed_gate,
            }
        })
        .collect();
    RegressionReport {
        sites,
        min_proactive_fraction: gates.min_proactive_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployed_config_passes_release_gates() {
        let report = regression_run(
            &VehicleConfig::perceptin_pod(),
            &ReleaseGates::default(),
            200,
            42,
        );
        assert_eq!(report.sites.len(), 5);
        for s in &report.sites {
            assert!(s.passed(), "{} failed gate {:?}", s.site, s.failed_gate);
        }
        assert!(report.release_approved());
    }

    #[test]
    fn mobile_soc_candidate_is_rejected_on_latency() {
        let report = regression_run(
            &VehicleConfig::mobile_soc_variant(),
            &ReleaseGates::default(),
            150,
            42,
        );
        assert!(!report.release_approved());
        assert!(report
            .sites
            .iter()
            .any(|s| s.failed_gate == Some("mean-computing-latency")));
    }

    #[test]
    fn empty_report_is_not_approved() {
        let report = RegressionReport {
            sites: vec![],
            min_proactive_fraction: 0.9,
        };
        assert!(!report.release_approved());
    }

    #[test]
    fn fleet_proactive_gate_tolerates_one_busy_site() {
        // Seed 3 puts a long pedestrian wait on the Fribourg window; the
        // fleet average still clears the 90% bar.
        let report = regression_run(
            &VehicleConfig::perceptin_pod(),
            &ReleaseGates::default(),
            200,
            3,
        );
        assert!(report.fleet_proactive_fraction() > 0.9);
        assert!(report.release_approved());
    }
}
