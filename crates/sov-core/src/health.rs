//! Health monitoring and graceful degradation.
//!
//! The paper's deployed vehicles survive sensor loss because the
//! architecture is redundant by construction: GPS–VIO fusion tolerates
//! losing either localization modality (Sec. VI), and the radar+sonar
//! reactive path keeps the vehicle safe when the camera-based proactive
//! pipeline is late or blind (Sec. IV). This module makes that argument
//! explicit as a **degradation state machine** driven by per-sensor
//! stale-data watchdogs and a computing-deadline watchdog:
//!
//! ```text
//! Nominal → DegradedLocalization   (GPS lost → VIO-only fusion fallback)
//!         → ReactiveOnly           (camera stalled or compute past
//!                                   deadline → radar+sonar envelope)
//!         → SafeStop               (reactive envelope itself lost)
//! ```
//!
//! Downgrades are immediate — a missing safety input must bite within one
//! control tick. Upgrades (recovery) require the inputs to stay healthy
//! for a hold-down period so a flapping sensor cannot bounce the vehicle
//! between modes.

use sov_sim::time::{SimDuration, SimTime};

/// Operating mode of the vehicle, ordered from most to least capable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradationMode {
    /// Every subsystem healthy: full proactive driving.
    Nominal = 0,
    /// GNSS lost or rejected: localization rides on VIO alone (the
    /// paper's fusion fallback), speed trimmed to bound drift.
    DegradedLocalization = 1,
    /// Proactive perception unavailable (camera stalled, or computing
    /// latency repeatedly past its deadline): creep inside the radar+sonar
    /// reactive envelope.
    ReactiveOnly = 2,
    /// The reactive envelope itself is gone: brake to a stop and hold.
    SafeStop = 3,
}

impl DegradationMode {
    /// All modes, most-capable first (index = discriminant).
    pub const ALL: [DegradationMode; 4] = [
        DegradationMode::Nominal,
        DegradationMode::DegradedLocalization,
        DegradationMode::ReactiveOnly,
        DegradationMode::SafeStop,
    ];

    /// Short name used by reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DegradationMode::Nominal => "nominal",
            DegradationMode::DegradedLocalization => "degraded-localization",
            DegradationMode::ReactiveOnly => "reactive-only",
            DegradationMode::SafeStop => "safe-stop",
        }
    }
}

/// A stale-data watchdog for one sensor feed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Watchdog {
    last_seen: SimTime,
    timeout: SimDuration,
}

impl Watchdog {
    /// A watchdog considering the feed fresh as of `now`, stale after
    /// `timeout` without data.
    #[must_use]
    pub fn new(now: SimTime, timeout: SimDuration) -> Self {
        Self {
            last_seen: now,
            timeout,
        }
    }

    /// Records a delivery from the feed.
    pub fn feed(&mut self, t: SimTime) {
        if t > self.last_seen {
            self.last_seen = t;
        }
    }

    /// Whether the feed has been silent longer than its timeout.
    #[must_use]
    pub fn stale(&self, now: SimTime) -> bool {
        now.since(self.last_seen) > self.timeout
    }

    /// Time since the last delivery.
    #[must_use]
    pub fn silence(&self, now: SimTime) -> SimDuration {
        now.since(self.last_seen)
    }
}

/// Watchdog timeouts and deadline thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Camera feed timeout (camera runs at 30 FPS; a few missed frames
    /// are tolerated before the proactive path is declared blind).
    pub camera_timeout: SimDuration,
    /// GNSS feed timeout (10 Hz nominal).
    pub gps_timeout: SimDuration,
    /// Radar feed timeout (20 Hz nominal).
    pub radar_timeout: SimDuration,
    /// Sonar feed timeout (20 Hz nominal).
    pub sonar_timeout: SimDuration,
    /// Computing-latency deadline per control frame; the paper's latency
    /// requirement analysis (Fig. 3) allows ~300 ms at micromobility
    /// speed.
    pub compute_deadline: SimDuration,
    /// Consecutive deadline overruns before the proactive path is
    /// considered unusable (tail latency, not mean, is what breaks
    /// safety).
    pub max_consecutive_overruns: u32,
    /// Consecutive healthy control ticks required before re-entering a
    /// more capable mode.
    pub recovery_hold_ticks: u32,
    /// EWMA smoothing factor, per camera-frame slot, for the delivered
    /// frame-sequence drop rate.
    pub camera_drop_alpha: f64,
    /// Drop rate above which the proactive path is declared unreliable
    /// even though frames still trickle in. Intermittent loss starves
    /// detection without ever tripping the stall watchdog; past this
    /// rate the camera no longer counts as healthy.
    pub max_camera_drop_rate: f64,
    /// Sequence gaps at least this many frames long are stalls — the
    /// watchdog's job — and reset the drop tracker instead of poisoning
    /// it (a recovered stall must not masquerade as a high drop rate).
    pub camera_drop_reset_gap: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            camera_timeout: SimDuration::from_millis(350),
            gps_timeout: SimDuration::from_millis(450),
            radar_timeout: SimDuration::from_millis(250),
            sonar_timeout: SimDuration::from_millis(250),
            compute_deadline: SimDuration::from_millis(300),
            max_consecutive_overruns: 3,
            recovery_hold_ticks: 8,
            camera_drop_alpha: 0.15,
            max_camera_drop_rate: 0.35,
            camera_drop_reset_gap: 12,
        }
    }
}

/// Sensor-feed freshness flags observed at one control tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthInputs {
    /// Camera delivering frames.
    pub camera_ok: bool,
    /// GNSS delivering usable fixes.
    pub gps_ok: bool,
    /// Radar delivering scans.
    pub radar_ok: bool,
    /// Sonar delivering readings.
    pub sonar_ok: bool,
    /// Proactive compute chain meeting its deadline.
    pub compute_ok: bool,
}

/// One mode change, for reports and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeTransition {
    /// When the transition happened.
    pub at: SimTime,
    /// Mode left.
    pub from: DegradationMode,
    /// Mode entered.
    pub to: DegradationMode,
}

/// The health monitor: watchdogs + degradation state machine.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthMonitor {
    config: HealthConfig,
    camera: Watchdog,
    gps: Watchdog,
    radar: Watchdog,
    sonar: Watchdog,
    consecutive_overruns: u32,
    deadline_misses: u64,
    /// Last camera frame-sequence number delivered, if any.
    camera_last_seq: Option<u64>,
    /// EWMA of the per-slot camera loss indicator (1 = every frame
    /// missing, 0 = every frame delivered).
    camera_drop_rate: f64,
    mode: DegradationMode,
    healthy_streak: u32,
    /// When the vehicle last left `Nominal` (recovery stopwatch).
    degraded_since: Option<SimTime>,
    transitions: Vec<ModeTransition>,
}

impl HealthMonitor {
    /// A monitor with every feed considered fresh at `now`.
    #[must_use]
    pub fn new(config: HealthConfig, now: SimTime) -> Self {
        Self {
            camera: Watchdog::new(now, config.camera_timeout),
            gps: Watchdog::new(now, config.gps_timeout),
            radar: Watchdog::new(now, config.radar_timeout),
            sonar: Watchdog::new(now, config.sonar_timeout),
            config,
            consecutive_overruns: 0,
            deadline_misses: 0,
            camera_last_seq: None,
            camera_drop_rate: 0.0,
            mode: DegradationMode::Nominal,
            healthy_streak: 0,
            degraded_since: None,
            transitions: Vec::new(),
        }
    }

    /// Records a camera frame delivery without sequence accounting
    /// (feeds only the stall watchdog).
    pub fn camera_seen(&mut self, t: SimTime) {
        self.camera.feed(t);
    }

    /// Records a camera frame delivery carrying its driver-visible
    /// frame-sequence number.
    ///
    /// A gap in delivered sequence numbers is the one observable trace
    /// an intermittently dropping camera leaves: the feed never goes
    /// silent long enough for the stall watchdog, yet detection runs on
    /// a fraction of the frames. The monitor keeps an EWMA of the
    /// per-slot loss indicator and declares the camera unhealthy past
    /// [`HealthConfig::max_camera_drop_rate`]. Stall-sized gaps (at
    /// least [`HealthConfig::camera_drop_reset_gap`] frames) reset the
    /// tracker — a recovered stall is the watchdog's finding, not a
    /// drop-rate one.
    pub fn camera_delivery(&mut self, t: SimTime, seq: u64) {
        self.camera.feed(t);
        if let Some(prev) = self.camera_last_seq {
            let gap = seq.saturating_sub(prev.saturating_add(1));
            if gap >= self.config.camera_drop_reset_gap {
                self.camera_drop_rate = 0.0;
            } else {
                let a = self.config.camera_drop_alpha;
                for _ in 0..gap {
                    self.camera_drop_rate = a + (1.0 - a) * self.camera_drop_rate;
                }
                self.camera_drop_rate *= 1.0 - a;
            }
        }
        self.camera_last_seq = Some(seq);
    }

    /// Current camera drop-rate estimate (EWMA over frame slots).
    #[must_use]
    pub fn camera_drop_rate(&self) -> f64 {
        self.camera_drop_rate
    }

    /// Records a usable GNSS fix delivery.
    pub fn gps_seen(&mut self, t: SimTime) {
        self.gps.feed(t);
    }

    /// Records a radar scan delivery.
    pub fn radar_seen(&mut self, t: SimTime) {
        self.radar.feed(t);
    }

    /// Records a sonar reading delivery.
    pub fn sonar_seen(&mut self, t: SimTime) {
        self.sonar.feed(t);
    }

    /// Records one control frame's computing latency against the
    /// deadline.
    pub fn compute_latency(&mut self, latency: SimDuration) {
        if latency > self.config.compute_deadline {
            self.deadline_misses += 1;
            self.consecutive_overruns += 1;
        } else {
            self.consecutive_overruns = 0;
        }
    }

    /// Computing frames that missed the deadline so far.
    #[must_use]
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses
    }

    /// The current mode.
    #[must_use]
    pub fn mode(&self) -> DegradationMode {
        self.mode
    }

    /// Whether the camera feed is currently stale.
    #[must_use]
    pub fn camera_stale(&self, now: SimTime) -> bool {
        self.camera.stale(now)
    }

    /// Every mode change so far.
    #[must_use]
    pub fn transitions(&self) -> &[ModeTransition] {
        &self.transitions
    }

    /// The feed freshness as of `now`.
    #[must_use]
    pub fn inputs(&self, now: SimTime) -> HealthInputs {
        HealthInputs {
            camera_ok: !self.camera.stale(now)
                && self.camera_drop_rate <= self.config.max_camera_drop_rate,
            gps_ok: !self.gps.stale(now),
            radar_ok: !self.radar.stale(now),
            sonar_ok: !self.sonar.stale(now),
            compute_ok: self.consecutive_overruns < self.config.max_consecutive_overruns,
        }
    }

    /// The mode the inputs warrant, ignoring hysteresis. Table-driven:
    /// worst applicable row wins.
    #[must_use]
    pub fn target_mode(inputs: HealthInputs) -> DegradationMode {
        if !inputs.radar_ok && !inputs.sonar_ok {
            // No reactive envelope at all: nothing can guarantee safety.
            DegradationMode::SafeStop
        } else if !inputs.camera_ok || !inputs.compute_ok {
            // Proactive path blind or too late: fall back to the
            // radar+sonar envelope (Sec. IV).
            DegradationMode::ReactiveOnly
        } else if !inputs.gps_ok {
            // Localization loses GNSS: VIO-only fusion (Sec. VI).
            DegradationMode::DegradedLocalization
        } else {
            DegradationMode::Nominal
        }
    }

    /// Advances the state machine at a control tick. Downgrades apply
    /// immediately; upgrades require `recovery_hold_ticks` consecutive
    /// healthy assessments. Returns the (possibly unchanged) mode, plus
    /// the completed recovery duration when the vehicle just returned to
    /// `Nominal`.
    pub fn assess(&mut self, now: SimTime) -> (DegradationMode, Option<SimDuration>) {
        let target = Self::target_mode(self.inputs(now));
        let mut recovered = None;
        if target > self.mode {
            // Worse: degrade now.
            if self.mode == DegradationMode::Nominal {
                self.degraded_since = Some(now);
            }
            self.transitions.push(ModeTransition {
                at: now,
                from: self.mode,
                to: target,
            });
            self.mode = target;
            self.healthy_streak = 0;
        } else if target < self.mode {
            // Better: hold down before trusting it.
            self.healthy_streak += 1;
            if self.healthy_streak >= self.config.recovery_hold_ticks {
                self.transitions.push(ModeTransition {
                    at: now,
                    from: self.mode,
                    to: target,
                });
                self.mode = target;
                self.healthy_streak = 0;
                if target == DegradationMode::Nominal {
                    if let Some(since) = self.degraded_since.take() {
                        recovered = Some(now.since(since));
                    }
                }
            }
        } else {
            self.healthy_streak = 0;
        }
        (self.mode, recovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_OK: HealthInputs = HealthInputs {
        camera_ok: true,
        gps_ok: true,
        radar_ok: true,
        sonar_ok: true,
        compute_ok: true,
    };

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn target_mode_table() {
        // Table-driven: every single-fault row and the compound rows.
        let rows: &[(HealthInputs, DegradationMode)] = &[
            (ALL_OK, DegradationMode::Nominal),
            (
                HealthInputs {
                    gps_ok: false,
                    ..ALL_OK
                },
                DegradationMode::DegradedLocalization,
            ),
            (
                HealthInputs {
                    camera_ok: false,
                    ..ALL_OK
                },
                DegradationMode::ReactiveOnly,
            ),
            (
                HealthInputs {
                    compute_ok: false,
                    ..ALL_OK
                },
                DegradationMode::ReactiveOnly,
            ),
            // Camera loss dominates GPS loss.
            (
                HealthInputs {
                    camera_ok: false,
                    gps_ok: false,
                    ..ALL_OK
                },
                DegradationMode::ReactiveOnly,
            ),
            // One reactive sensor alone keeps the envelope alive.
            (
                HealthInputs {
                    radar_ok: false,
                    ..ALL_OK
                },
                DegradationMode::Nominal,
            ),
            (
                HealthInputs {
                    sonar_ok: false,
                    ..ALL_OK
                },
                DegradationMode::Nominal,
            ),
            // Both gone: stop.
            (
                HealthInputs {
                    radar_ok: false,
                    sonar_ok: false,
                    ..ALL_OK
                },
                DegradationMode::SafeStop,
            ),
            (
                HealthInputs {
                    camera_ok: false,
                    radar_ok: false,
                    sonar_ok: false,
                    ..ALL_OK
                },
                DegradationMode::SafeStop,
            ),
        ];
        for &(inputs, expected) in rows {
            assert_eq!(
                HealthMonitor::target_mode(inputs),
                expected,
                "inputs {inputs:?}"
            );
        }
    }

    #[test]
    fn watchdog_goes_stale_and_recovers() {
        let mut w = Watchdog::new(ms(0), SimDuration::from_millis(100));
        assert!(!w.stale(ms(100)));
        assert!(w.stale(ms(101)));
        w.feed(ms(150));
        assert!(!w.stale(ms(200)));
        assert_eq!(w.silence(ms(250)), SimDuration::from_millis(100));
    }

    #[test]
    fn downgrade_is_immediate() {
        let mut m = HealthMonitor::new(HealthConfig::default(), ms(0));
        // Camera silent past its timeout while the rest stays fresh.
        m.gps_seen(ms(380));
        m.radar_seen(ms(380));
        m.sonar_seen(ms(380));
        let (mode, _) = m.assess(ms(400));
        assert_eq!(mode, DegradationMode::ReactiveOnly);
        assert_eq!(m.transitions().len(), 1);
    }

    #[test]
    fn recovery_requires_hold_down() {
        let config = HealthConfig {
            recovery_hold_ticks: 3,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(config, ms(0));
        // GPS silent → degraded localization at t=500 ms.
        m.camera_seen(ms(480));
        m.radar_seen(ms(480));
        m.sonar_seen(ms(480));
        let (mode, _) = m.assess(ms(500));
        assert_eq!(mode, DegradationMode::DegradedLocalization);
        // GPS returns; the next two healthy ticks must NOT yet upgrade.
        for tick in 1..=2u64 {
            let t = ms(500 + tick * 100);
            m.camera_seen(t);
            m.gps_seen(t);
            m.radar_seen(t);
            m.sonar_seen(t);
            let (mode, rec) = m.assess(t);
            assert_eq!(mode, DegradationMode::DegradedLocalization, "tick {tick}");
            assert!(rec.is_none());
        }
        // Third healthy tick: recovery, with the stopwatch measured from
        // the original downgrade.
        let t = ms(800);
        m.camera_seen(t);
        m.gps_seen(t);
        m.radar_seen(t);
        m.sonar_seen(t);
        let (mode, rec) = m.assess(t);
        assert_eq!(mode, DegradationMode::Nominal);
        assert_eq!(rec, Some(SimDuration::from_millis(300)));
    }

    #[test]
    fn flapping_sensor_resets_the_streak() {
        let config = HealthConfig {
            recovery_hold_ticks: 2,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(config, ms(0));
        let keep_reactive_alive = |m: &mut HealthMonitor, t: SimTime| {
            m.camera_seen(t);
            m.radar_seen(t);
            m.sonar_seen(t);
        };
        keep_reactive_alive(&mut m, ms(480));
        assert_eq!(m.assess(ms(500)).0, DegradationMode::DegradedLocalization);
        // One healthy tick...
        keep_reactive_alive(&mut m, ms(600));
        m.gps_seen(ms(600));
        assert_eq!(m.assess(ms(600)).0, DegradationMode::DegradedLocalization);
        // ...then GPS flaps again: streak resets, still degraded 3 ticks on.
        keep_reactive_alive(&mut m, ms(1200));
        assert_eq!(m.assess(ms(1200)).0, DegradationMode::DegradedLocalization);
        keep_reactive_alive(&mut m, ms(1300));
        m.gps_seen(ms(1300));
        assert_eq!(m.assess(ms(1300)).0, DegradationMode::DegradedLocalization);
        keep_reactive_alive(&mut m, ms(1400));
        m.gps_seen(ms(1400));
        assert_eq!(
            m.assess(ms(1400)).0,
            DegradationMode::Nominal,
            "2-tick hold satisfied"
        );
    }

    #[test]
    fn consecutive_overruns_trip_the_compute_watchdog() {
        let config = HealthConfig {
            max_consecutive_overruns: 3,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(config, ms(0));
        let slow = SimDuration::from_millis(500);
        let fast = SimDuration::from_millis(150);
        m.compute_latency(slow);
        m.compute_latency(slow);
        assert!(m.inputs(ms(0)).compute_ok, "two overruns tolerated");
        m.compute_latency(fast);
        m.compute_latency(slow);
        m.compute_latency(slow);
        assert!(m.inputs(ms(0)).compute_ok, "a fast frame resets the run");
        m.compute_latency(slow);
        assert!(
            !m.inputs(ms(0)).compute_ok,
            "three consecutive overruns trip"
        );
        assert_eq!(m.deadline_misses(), 5);
    }

    #[test]
    fn safe_stop_recovers_stepwise_toward_nominal() {
        let config = HealthConfig {
            recovery_hold_ticks: 1,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(config, ms(0));
        // Everything silent at 600 ms → SafeStop.
        assert_eq!(m.assess(ms(600)).0, DegradationMode::SafeStop);
        // Radar+sonar return but the camera is still dark → ReactiveOnly.
        m.radar_seen(ms(700));
        m.sonar_seen(ms(700));
        assert_eq!(m.assess(ms(700)).0, DegradationMode::ReactiveOnly);
        // Camera returns, GPS still dark → DegradedLocalization.
        m.camera_seen(ms(800));
        m.radar_seen(ms(800));
        m.sonar_seen(ms(800));
        let (mode, rec) = m.assess(ms(800));
        assert_eq!(mode, DegradationMode::DegradedLocalization);
        assert!(rec.is_none(), "not yet back to Nominal");
        // GPS returns → Nominal, recovery measured from the first
        // downgrade.
        m.camera_seen(ms(900));
        m.gps_seen(ms(900));
        m.radar_seen(ms(900));
        m.sonar_seen(ms(900));
        let (mode, rec) = m.assess(ms(900));
        assert_eq!(mode, DegradationMode::Nominal);
        assert_eq!(rec, Some(SimDuration::from_millis(300)));
        assert_eq!(m.transitions().len(), 4);
    }

    /// Delivers camera frames 30 ms apart, skipping sequence numbers
    /// where `dropped` says so, and returns the monitor.
    fn deliver_pattern(m: &mut HealthMonitor, dropped: impl Fn(u64) -> bool, frames: u64) {
        for seq in 0..frames {
            let t = ms(seq * 30);
            m.radar_seen(t);
            m.sonar_seen(t);
            m.gps_seen(t);
            if !dropped(seq) {
                m.camera_delivery(t, seq);
            }
        }
    }

    #[test]
    fn intermittent_camera_drops_trip_without_a_stall() {
        let mut m = HealthMonitor::new(HealthConfig::default(), ms(0));
        // Every other frame lost: the watchdog never sees more than
        // 60 ms of silence (timeout is 350 ms), but detection runs at
        // half rate — the drop tracker must declare the camera unusable.
        deliver_pattern(&mut m, |seq| seq % 2 == 1, 60);
        let t = ms(60 * 30);
        assert!(!m.camera_stale(t), "no stall: the watchdog stays happy");
        assert!(m.camera_drop_rate() > 0.35, "rate {}", m.camera_drop_rate());
        assert!(!m.inputs(t).camera_ok);
        assert_eq!(m.assess(t).0, DegradationMode::ReactiveOnly);
    }

    #[test]
    fn clean_delivery_keeps_the_drop_rate_at_zero() {
        let mut m = HealthMonitor::new(HealthConfig::default(), ms(0));
        deliver_pattern(&mut m, |_| false, 60);
        assert_eq!(m.camera_drop_rate(), 0.0);
        assert!(m.inputs(ms(60 * 30)).camera_ok);
    }

    #[test]
    fn drop_rate_decays_after_the_fault_clears() {
        let mut m = HealthMonitor::new(HealthConfig::default(), ms(0));
        deliver_pattern(&mut m, |seq| seq < 60 && seq % 2 == 1, 120);
        // Sixty clean frames later the estimate has decayed to nothing.
        assert!(m.camera_drop_rate() < 0.01, "rate {}", m.camera_drop_rate());
        assert!(m.inputs(ms(120 * 30)).camera_ok);
    }

    #[test]
    fn stall_sized_gaps_reset_the_tracker_instead_of_tripping_it() {
        let mut m = HealthMonitor::new(HealthConfig::default(), ms(0));
        m.camera_delivery(ms(0), 0);
        // A 150-frame stall (5 s): the watchdog's finding, not the drop
        // tracker's. The first frame after recovery must not carry a
        // poisoned drop estimate into the recovered mode.
        m.camera_delivery(ms(151 * 30), 151);
        assert_eq!(m.camera_drop_rate(), 0.0);
        assert!(m.inputs(ms(151 * 30)).camera_ok);
    }
}
