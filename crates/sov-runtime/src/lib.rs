//! Deterministic intra-frame data parallelism (Sec. VI, Fig. 4).
//!
//! The paper's LiDAR case study shows that the real bottleneck of the
//! perception stack is *within* a frame: irregular point-cloud kernels and
//! image processing dominated by memory traffic and redundant data
//! movement. Task-level pipelining (Sec. IV, `sov_core::executor`) overlaps
//! whole stages; this crate supplies the complementary layer — data
//! parallelism *inside* each stage — plus the allocation discipline that
//! makes a steady-state control tick free of heap traffic:
//!
//! * [`pool`] — a std-only persistent [`pool::WorkerPool`] whose
//!   `parallel_for` / `parallel_map_reduce` use **fixed chunking and an
//!   ordered merge**, so results are bit-identical to serial execution for
//!   every worker count. Determinism is a hard invariant of this
//!   repository: fault draws and `DriveReport`s must not change when the
//!   pool is enabled or resized.
//! * [`arena`] — a per-frame [`arena::FrameArena`] of reusable typed
//!   buffers: kernels borrow scratch vectors instead of allocating, and
//!   recycle them at frame end with their capacity intact.
//!
//! The perception (`sov-perception`) and LiDAR (`sov-lidar`) hot kernels
//! accept an optional pool and arena; `sov-core` re-exports this crate as
//! `sov_core::pool` / `sov_core::arena` and threads a [`PerfContext`]
//! through `Sov::drive_with_plan`.

#![deny(missing_docs)]

pub mod arena;
pub mod pool;

use std::sync::Arc;

/// The performance context threaded through the hot path: an optional
/// worker pool (serial when absent) plus the frame arena.
///
/// Cloning is cheap: the pool is shared, the arena is per-clone (arenas
/// are deliberately not `Sync`; each thread of control owns its own).
#[derive(Debug, Default)]
pub struct PerfContext {
    /// Worker pool; `None` runs every kernel serially (the reference
    /// execution that all pooled runs must match bit for bit).
    pub pool: Option<Arc<pool::WorkerPool>>,
    /// Reusable per-frame scratch buffers.
    pub arena: arena::FrameArena,
}

impl PerfContext {
    /// A serial context: no pool, fresh arena.
    #[must_use]
    pub fn serial() -> Self {
        Self::default()
    }

    /// A context backed by a pool with `workers` parallel lanes.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        Self {
            pool: Some(Arc::new(pool::WorkerPool::new(workers))),
            arena: arena::FrameArena::new(),
        }
    }

    /// The pool, if any, as a borrowed option (the form kernels accept).
    #[must_use]
    pub fn pool(&self) -> Option<&pool::WorkerPool> {
        self.pool.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_context_has_no_pool() {
        let ctx = PerfContext::serial();
        assert!(ctx.pool().is_none());
    }

    #[test]
    fn worker_context_reports_lanes() {
        let ctx = PerfContext::with_workers(3);
        assert_eq!(ctx.pool().unwrap().lanes(), 3);
    }
}
