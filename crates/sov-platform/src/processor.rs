//! Per-task execution profiles on the four candidate platforms.
//!
//! Calibration sources (all from the paper):
//!
//! * Fig. 6a/6b: depth estimation, detection and localization latency and
//!   energy on a Coffee Lake CPU, a GTX 1060 GPU, a TX2, and the Zynq FPGA.
//! * Sec. V-A: TX2's cumulative perception latency is 844.2 ms.
//! * Sec. V-B2/Fig. 8: localization is 31 ms on the GPU and 24 ms on the
//!   FPGA; scene understanding is 77 ms on the GPU once localization moves
//!   off it.
//! * Sec. V-B3: keyframe feature extraction is 20 ms on the FPGA, tracked
//!   frames 10 ms ("50% faster").
//! * Sec. V-C: planning averages 3 ms; the Apollo EM planner takes 100 ms
//!   (33×); localization median 25 ms with σ = 14 ms; EKF fusion and radar
//!   spatial synchronization run in ~1 ms on the CPU (100× lighter than
//!   KCF).
//!
//! Absolute numbers are the paper's measurements; the simulation reproduces
//! the *relative* structure (orderings, ratios, bottleneck shifts), which is
//! what the reproduction band calls for.

use sov_sim::latency::LatencyModel;

/// A compute platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Platform {
    /// Intel Coffee Lake desktop CPU (3.0 GHz, 9 MB LLC).
    CoffeeLakeCpu,
    /// Nvidia GTX 1060 discrete GPU.
    Gtx1060Gpu,
    /// Nvidia Jetson TX2 mobile SoC.
    JetsonTx2,
    /// Xilinx Zynq UltraScale+ embedded FPGA.
    ZynqFpga,
}

impl Platform {
    /// All platforms, in the paper's Fig. 6 order.
    pub const ALL: [Platform; 4] = [
        Platform::CoffeeLakeCpu,
        Platform::Gtx1060Gpu,
        Platform::JetsonTx2,
        Platform::ZynqFpga,
    ];

    /// Short display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Platform::CoffeeLakeCpu => "CPU",
            Platform::Gtx1060Gpu => "GPU",
            Platform::JetsonTx2 => "TX2",
            Platform::ZynqFpga => "FPGA",
        }
    }

    /// Active power draw while executing (W). The GPU figure includes the
    /// host CPU coordinating it (Table I's 118 W dynamic server draw covers
    /// CPU+GPU).
    #[must_use]
    pub fn active_power_w(&self) -> f64 {
        match self {
            Platform::CoffeeLakeCpu => 80.0,
            Platform::Gtx1060Gpu => 120.0,
            Platform::JetsonTx2 => 15.0,
            Platform::ZynqFpga => 6.0,
        }
    }
}

/// An on-vehicle processing task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// ELAS-style stereo depth estimation.
    DepthEstimation,
    /// DNN object detection (YOLO-class).
    ObjectDetection,
    /// VIO localization, keyframe (feature extraction).
    LocalizationKeyframe,
    /// VIO localization, non-keyframe (feature tracking).
    LocalizationTracked,
    /// KCF visual tracking (fallback tracker).
    KcfTracking,
    /// Radar spatial synchronization (Sec. VI-B).
    SpatialSync,
    /// Lane-granularity MPC planning.
    MpcPlanning,
    /// Apollo-style EM planning (DP + QP).
    EmPlanning,
    /// GPS–VIO EKF fusion step.
    EkfFusion,
}

impl Task {
    /// The three perception tasks of Fig. 6.
    pub const FIG6_TASKS: [Task; 3] = [
        Task::DepthEstimation,
        Task::ObjectDetection,
        Task::LocalizationKeyframe,
    ];

    /// Short display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Task::DepthEstimation => "depth-estimation",
            Task::ObjectDetection => "object-detection",
            Task::LocalizationKeyframe => "localization (keyframe)",
            Task::LocalizationTracked => "localization (tracked)",
            Task::KcfTracking => "kcf-tracking",
            Task::SpatialSync => "spatial-sync",
            Task::MpcPlanning => "mpc-planning",
            Task::EmPlanning => "em-planning",
            Task::EkfFusion => "ekf-fusion",
        }
    }

    /// Execution profile of this task on `platform`.
    #[must_use]
    pub fn profile(&self, platform: Platform) -> ExecutionProfile {
        use Platform::*;
        // (mean ms, std ms) per platform, calibrated as documented above.
        let (mean_ms, std_ms) = match (self, platform) {
            (Task::DepthEstimation, CoffeeLakeCpu) => (320.0, 40.0),
            (Task::DepthEstimation, Gtx1060Gpu) => (26.0, 4.0),
            (Task::DepthEstimation, JetsonTx2) => (180.0, 25.0),
            (Task::DepthEstimation, ZynqFpga) => (60.0, 8.0),

            (Task::ObjectDetection, CoffeeLakeCpu) => (1_200.0, 150.0),
            (Task::ObjectDetection, Gtx1060Gpu) => (48.0, 8.0),
            (Task::ObjectDetection, JetsonTx2) => (550.0, 60.0),
            (Task::ObjectDetection, ZynqFpga) => (160.0, 20.0),

            (Task::LocalizationKeyframe, CoffeeLakeCpu) => (60.0, 18.0),
            (Task::LocalizationKeyframe, Gtx1060Gpu) => (31.0, 12.0),
            // TX2 localization runs on its ARM CPU (Fig. 6 caption).
            (Task::LocalizationKeyframe, JetsonTx2) => (114.0, 25.0),
            // FPGA: 20 ms keyframe extraction; 25 ms median with variation
            // (σ≈14 ms from scene complexity, Sec. V-C).
            (Task::LocalizationKeyframe, ZynqFpga) => (27.0, 14.0),

            (Task::LocalizationTracked, CoffeeLakeCpu) => (30.0, 8.0),
            (Task::LocalizationTracked, Gtx1060Gpu) => (18.0, 6.0),
            (Task::LocalizationTracked, JetsonTx2) => (60.0, 12.0),
            // 10 ms: "50% faster" than the 20 ms keyframe path (Sec. V-B3).
            (Task::LocalizationTracked, ZynqFpga) => (14.0, 6.0),

            (Task::KcfTracking, CoffeeLakeCpu) => (100.0, 15.0),
            (Task::KcfTracking, Gtx1060Gpu) => (20.0, 4.0),
            (Task::KcfTracking, JetsonTx2) => (70.0, 12.0),
            (Task::KcfTracking, ZynqFpga) => (35.0, 6.0),

            // "Our spatial synchronization finishes on the CPU in 1 ms,
            // 100× more lightweight than KCF."
            (Task::SpatialSync, CoffeeLakeCpu) => (1.0, 0.2),
            (Task::SpatialSync, Gtx1060Gpu) => (1.5, 0.3),
            (Task::SpatialSync, JetsonTx2) => (3.0, 0.5),
            (Task::SpatialSync, ZynqFpga) => (1.0, 0.2),

            // "Planning is relatively insignificant ... 3 ms in the
            // average case."
            (Task::MpcPlanning, CoffeeLakeCpu) => (3.0, 0.8),
            (Task::MpcPlanning, Gtx1060Gpu) => (4.0, 1.0),
            (Task::MpcPlanning, JetsonTx2) => (8.0, 2.0),
            (Task::MpcPlanning, ZynqFpga) => (5.0, 1.0),

            // "On our platform, the EM planner takes 100 ms, 33× more
            // expensive than our planner."
            (Task::EmPlanning, CoffeeLakeCpu) => (100.0, 15.0),
            (Task::EmPlanning, Gtx1060Gpu) => (90.0, 15.0),
            (Task::EmPlanning, JetsonTx2) => (260.0, 40.0),
            (Task::EmPlanning, ZynqFpga) => (150.0, 20.0),

            // "The EKF fusion algorithm executes in about 1 ms, much more
            // lightweight than the VIO localization algorithm (24 ms)."
            (Task::EkfFusion, CoffeeLakeCpu) => (1.0, 0.2),
            (Task::EkfFusion, Gtx1060Gpu) => (2.0, 0.4),
            (Task::EkfFusion, JetsonTx2) => (2.5, 0.5),
            (Task::EkfFusion, ZynqFpga) => (0.5, 0.1),
        };
        ExecutionProfile {
            latency: LatencyModel::normal_millis(mean_ms, std_ms),
            mean_ms,
            power_w: platform.active_power_w(),
        }
    }
}

/// Latency distribution plus power of one (task, platform) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionProfile {
    /// Latency distribution.
    pub latency: LatencyModel,
    /// Mean latency (ms) — convenience copy of the distribution mean.
    mean_ms: f64,
    /// Power while executing (W).
    pub power_w: f64,
}

impl ExecutionProfile {
    /// Mean latency in milliseconds.
    #[must_use]
    pub fn mean_latency_ms(&self) -> f64 {
        self.mean_ms
    }

    /// Mean energy per invocation in joules (`P × t`).
    #[must_use]
    pub fn mean_energy_j(&self) -> f64 {
        self.power_w * self.mean_ms / 1_000.0
    }
}

/// The FPGA resource footprint of the localization accelerator (Sec. V-B2):
/// "about 200K LUTs, 120K registers, 600 BRAMs, 800 DSPs, with less than
/// 6 W power".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalizationAcceleratorFootprint {
    /// Look-up tables.
    pub luts: u32,
    /// Registers.
    pub registers: u32,
    /// Block RAMs.
    pub brams: u32,
    /// DSP slices.
    pub dsps: u32,
    /// Power bound (W).
    pub power_w: u32,
}

impl LocalizationAcceleratorFootprint {
    /// The paper's reported footprint.
    pub const PAPER: Self = Self {
        luts: 200_000,
        registers: 120_000,
        brams: 600,
        dsps: 800,
        power_w: 6,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx2_cumulative_perception_matches_paper() {
        // Sec. V-A: "a cumulative latency of 844.2 ms for perception alone".
        let total: f64 = Task::FIG6_TASKS
            .iter()
            .map(|t| t.profile(Platform::JetsonTx2).mean_latency_ms())
            .sum();
        assert!((total - 844.0).abs() < 10.0, "TX2 cumulative {total} ms");
    }

    #[test]
    fn fpga_beats_gpu_only_for_localization() {
        // Sec. V-B2: "the embedded FPGA is faster than the GPU only for
        // localization".
        let faster = |t: Task| {
            t.profile(Platform::ZynqFpga).mean_latency_ms()
                < t.profile(Platform::Gtx1060Gpu).mean_latency_ms()
        };
        assert!(faster(Task::LocalizationKeyframe));
        assert!(faster(Task::LocalizationTracked));
        assert!(!faster(Task::DepthEstimation));
        assert!(!faster(Task::ObjectDetection));
    }

    #[test]
    fn tx2_slower_than_gpu_everywhere() {
        for t in Task::FIG6_TASKS {
            assert!(
                t.profile(Platform::JetsonTx2).mean_latency_ms()
                    > t.profile(Platform::Gtx1060Gpu).mean_latency_ms(),
                "{} should be slower on TX2",
                t.name()
            );
        }
    }

    #[test]
    fn tx2_energy_advantage_is_marginal_or_negative() {
        // Fig. 6b: TX2 has "only marginal, sometimes even worse, energy
        // reduction compared to the GPU due to the long latency".
        let det_tx2 = Task::ObjectDetection
            .profile(Platform::JetsonTx2)
            .mean_energy_j();
        let det_gpu = Task::ObjectDetection
            .profile(Platform::Gtx1060Gpu)
            .mean_energy_j();
        assert!(
            det_tx2 > det_gpu,
            "TX2 detection energy {det_tx2} vs GPU {det_gpu}"
        );
        // FPGA is the clear energy winner for localization.
        let loc_fpga = Task::LocalizationKeyframe
            .profile(Platform::ZynqFpga)
            .mean_energy_j();
        let loc_gpu = Task::LocalizationKeyframe
            .profile(Platform::Gtx1060Gpu)
            .mean_energy_j();
        assert!(loc_fpga < loc_gpu / 5.0);
    }

    #[test]
    fn em_planner_is_33x_mpc() {
        let em = Task::EmPlanning
            .profile(Platform::CoffeeLakeCpu)
            .mean_latency_ms();
        let mpc = Task::MpcPlanning
            .profile(Platform::CoffeeLakeCpu)
            .mean_latency_ms();
        assert!((em / mpc - 33.3).abs() < 1.0, "ratio {}", em / mpc);
    }

    #[test]
    fn spatial_sync_is_100x_lighter_than_kcf() {
        let kcf = Task::KcfTracking
            .profile(Platform::CoffeeLakeCpu)
            .mean_latency_ms();
        let sync = Task::SpatialSync
            .profile(Platform::CoffeeLakeCpu)
            .mean_latency_ms();
        assert!((kcf / sync - 100.0).abs() < 1.0);
    }

    #[test]
    fn tracked_frames_50_percent_faster_on_fpga() {
        let key = Task::LocalizationKeyframe.profile(Platform::ZynqFpga);
        let tracked = Task::LocalizationTracked.profile(Platform::ZynqFpga);
        // Sec. V-B3 quotes the kernel times 20 ms vs 10 ms; profile means
        // include the non-accelerated residue.
        assert!(tracked.mean_latency_ms() < key.mean_latency_ms() * 0.6);
    }

    #[test]
    fn latency_samples_respect_distribution() {
        let mut rng = sov_math::SovRng::seed_from_u64(1);
        let p = Task::LocalizationKeyframe.profile(Platform::ZynqFpga);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| p.latency.sample(&mut rng).as_millis_f64())
            .sum::<f64>()
            / f64::from(n);
        assert!(
            (mean - p.mean_latency_ms()).abs() < 2.0,
            "sampled mean {mean}"
        );
    }

    #[test]
    fn footprint_constants() {
        let fp = LocalizationAcceleratorFootprint::PAPER;
        assert_eq!(fp.luts, 200_000);
        assert_eq!(fp.power_w, 6);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = Platform::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
