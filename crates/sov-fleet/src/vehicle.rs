//! Per-vehicle serving state machine — the body of the sharded fleet tick.
//!
//! Each [`FleetVehicle`] owns everything its per-tick [`step`]
//! (`FleetVehicle::step`) touches: pose, battery, duty, the current
//! assignment and its accumulators. A step reads only shared immutable
//! state (the [`RouteTable`] and [`StepParams`]) besides the vehicle
//! itself, which is what makes the fleet tick shardable with no
//! synchronization: chunks of the vehicle array can run on any worker in
//! any order and produce the same bytes as a serial sweep.
//!
//! The lookahead control kernel borrows its scratch buffer from a
//! per-thread [`FrameArena`], so after one warm-up tick per worker the
//! steady-state fleet tick performs zero heap allocation
//! ([`scratch_stats`] exposes the counters the tests assert on).

use crate::graph::{FleetPos, RouteField, RouteTable};
use crate::request::RideRequest;
use crate::sim::FleetFaultPlan;
use sov_runtime::arena::{ArenaStats, FrameArena};
use sov_sim::time::SimDuration;
use sov_vehicle::battery::Battery;
use std::sync::Arc;

thread_local! {
    /// Per-thread scratch pool for the control kernel. Worker-local state
    /// never feeds back into vehicle outputs, so it cannot break the
    /// serial/sharded byte-identity invariant.
    static SCRATCH: FrameArena = FrameArena::new();
}

/// Allocation counters of the calling thread's control-kernel scratch
/// arena (see [`FrameArena::stats`]).
#[must_use]
pub fn scratch_stats() -> ArenaStats {
    SCRATCH.with(FrameArena::stats)
}

/// Zeroes the calling thread's scratch counters — warm up, reset, run a
/// tick, assert `allocations == 0`.
pub fn reset_scratch_stats() {
    SCRATCH.with(FrameArena::reset_stats);
}

/// What a vehicle is doing this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Duty {
    /// Available for dispatch.
    Idle,
    /// Driving empty to a pickup.
    ToPickup,
    /// Carrying a passenger to the drop-off.
    Onboard,
    /// On a charging stall until full (the Eq. 2 availability cost made
    /// explicit: a charging vehicle serves no rides).
    Charging,
}

/// An accepted ride being served.
///
/// Carries the compiled route fields for both legs so the per-tick
/// advance never recomputes routing: `to_origin` is dropped at pickup
/// (that leg is over), `to_dest` lives for the ride.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// The request id.
    pub request_id: u64,
    /// Tick the request arrived on.
    pub request_tick: u64,
    /// Tick the passenger was picked up on (meaningful once
    /// [`Duty::Onboard`]).
    pub pickup_tick: u64,
    /// Pickup position.
    pub origin: FleetPos,
    /// Drop-off position.
    pub dest: FleetPos,
    /// Shortest origin → destination distance (meters).
    pub direct_m: f64,
    /// Route field toward the pickup lane; `None` once picked up.
    pub to_origin: Option<Arc<RouteField>>,
    /// Route field toward the drop-off lane.
    pub to_dest: Arc<RouteField>,
}

impl Assignment {
    /// Reconstructs the original request (for deterministic requeue after
    /// a stall timeout).
    #[must_use]
    pub fn to_request(&self) -> RideRequest {
        RideRequest {
            id: self.request_id,
            tick: self.request_tick,
            origin: self.origin,
            dest: self.dest,
            direct_m: self.direct_m,
        }
    }
}

/// A completed ride, recorded by the vehicle that served it and drained
/// into the fleet report on the serial merge phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RideEvent {
    /// The request id.
    pub request_id: u64,
    /// Ticks between request arrival and pickup.
    pub wait_ticks: u64,
    /// Ticks between pickup and drop-off.
    pub travel_ticks: u64,
    /// Shortest origin → destination distance (meters).
    pub direct_m: f64,
}

/// Immutable per-tick parameters shared by every vehicle step.
#[derive(Debug, Clone, Copy)]
pub struct StepParams<'a> {
    /// Compiled routing tables.
    pub table: &'a RouteTable,
    /// Current tick index.
    pub tick: u64,
    /// Tick length (seconds).
    pub dt_s: f64,
    /// Electrical load while driving (kW): base + autonomy.
    pub drive_load_kw: f64,
    /// Electrical load while idle or stalled (kW): the autonomy stack
    /// stays powered between rides.
    pub idle_load_kw: f64,
    /// Charging stall power (kW).
    pub charge_rate_kw: f64,
    /// State of charge below which an off-duty vehicle heads to charge.
    pub reserve_soc: f64,
    /// Lookahead samples of the control kernel per driving tick.
    pub lookahead: u32,
    /// Optional stall-fault plan.
    pub fault: Option<&'a FleetFaultPlan>,
    /// Consecutive stalled ticks after which a not-yet-picked-up ride is
    /// returned for requeue (`None` disables the coupling). Onboard rides
    /// are never returned — the passenger is already in the pod.
    pub stall_requeue_ticks: Option<u64>,
}

/// One vehicle of the fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetVehicle {
    /// Vehicle id == index in the fleet array (dispatch tie-break key).
    pub id: u32,
    /// Current network position.
    pub pos: FleetPos,
    /// Battery state.
    pub battery: Battery,
    duty: Duty,
    assignment: Option<Assignment>,
    /// Consecutive stalled ticks ending at the current tick.
    stall_run: u64,
    /// Whether the most recent step found this vehicle stalled — a
    /// stalled-but-idle vehicle is not dispatchable.
    stalled_now: bool,
    /// A ride abandoned by the stall-timeout coupling, awaiting the
    /// serial merge's requeue (at most one per tick).
    pub returned: Option<Assignment>,
    /// Completed rides awaiting the serial merge (drained every tick).
    pub completed: Vec<RideEvent>,
    /// Total distance driven (meters).
    pub odometer_m: f64,
    /// Total energy drawn from the battery (kWh).
    pub energy_kwh: f64,
    /// Accumulated lookahead curvature (radians) — the control kernel's
    /// output, folded into the fleet checksum.
    pub control_effort: f64,
    /// Ticks spent driving (to pickup or onboard).
    pub driving_ticks: u64,
    /// Ticks spent on a charging stall.
    pub charging_ticks: u64,
    /// Ticks lost to injected stall faults.
    pub stalled_ticks: u64,
}

impl FleetVehicle {
    /// Creates an idle, fully charged vehicle at `pos`.
    #[must_use]
    pub fn new(id: u32, pos: FleetPos, capacity_kwh: f64) -> Self {
        // One ride can complete per tick; reserving up front keeps the
        // steady-state tick free of event-buffer growth.
        let completed = Vec::with_capacity(2);
        Self {
            id,
            pos,
            battery: Battery::full(capacity_kwh),
            duty: Duty::Idle,
            assignment: None,
            stall_run: 0,
            stalled_now: false,
            returned: None,
            completed,
            odometer_m: 0.0,
            energy_kwh: 0.0,
            control_effort: 0.0,
            driving_ticks: 0,
            charging_ticks: 0,
            stalled_ticks: 0,
        }
    }

    /// Current duty.
    #[must_use]
    pub fn duty(&self) -> Duty {
        self.duty
    }

    /// The ride being served, if any.
    #[must_use]
    pub fn assignment(&self) -> Option<&Assignment> {
        self.assignment.as_ref()
    }

    /// Whether the dispatcher may assign a ride to this vehicle.
    ///
    /// Idle and not stalled as of the last step: a frozen pod cannot
    /// start driving toward a pickup.
    #[must_use]
    pub fn is_available(&self) -> bool {
        self.duty == Duty::Idle && !self.stalled_now
    }

    /// Whether the most recent step found this vehicle stall-faulted.
    #[must_use]
    pub fn currently_stalled(&self) -> bool {
        self.stalled_now
    }

    /// Accepts a ride (dispatcher only), carrying the compiled route
    /// fields for both legs.
    ///
    /// # Panics
    ///
    /// Panics if the vehicle is not available, or (debug builds) if a
    /// field routes to the wrong lane.
    pub fn assign(
        &mut self,
        request: &RideRequest,
        tick: u64,
        to_origin: Arc<RouteField>,
        to_dest: Arc<RouteField>,
    ) {
        assert!(self.is_available(), "dispatching to a busy vehicle");
        debug_assert_eq!(to_origin.dest(), request.origin.lane);
        debug_assert_eq!(to_dest.dest(), request.dest.lane);
        self.assignment = Some(Assignment {
            request_id: request.id,
            request_tick: request.tick,
            pickup_tick: tick,
            origin: request.origin,
            dest: request.dest,
            direct_m: request.direct_m,
            to_origin: Some(to_origin),
            to_dest,
        });
        self.duty = Duty::ToPickup;
    }

    /// Advances the vehicle by one tick. Touches only `self` plus the
    /// shared immutable `params` — the sharding contract.
    pub fn step(&mut self, p: &StepParams<'_>) {
        if p.fault.is_some_and(|f| f.stalled(self.id, p.tick)) {
            self.stalled_now = true;
            self.stalled_ticks += 1;
            self.stall_run += 1;
            self.drain(p.idle_load_kw, p.dt_s);
            // Per-ride fault coupling: a pod frozen past the timeout on
            // its way to a pickup gives the ride back for requeue. The
            // trigger is a pure function of the fault plan and the tick,
            // so it cannot perturb serial/sharded byte-identity.
            if let Some(limit) = p.stall_requeue_ticks {
                if self.duty == Duty::ToPickup && self.stall_run >= limit {
                    self.returned = self.assignment.take();
                    self.duty = Duty::Idle;
                }
            }
            return;
        }
        self.stalled_now = false;
        self.stall_run = 0;
        match self.duty {
            Duty::Charging => {
                self.charging_ticks += 1;
                self.battery
                    .recharge(p.charge_rate_kw, SimDuration::from_secs_f64(p.dt_s));
                if self.battery.is_full() {
                    self.duty = Duty::Idle;
                }
            }
            Duty::Idle => {
                self.drain(p.idle_load_kw, p.dt_s);
                if self.battery.soc() < p.reserve_soc {
                    self.duty = Duty::Charging;
                }
            }
            Duty::ToPickup | Duty::Onboard => {
                self.driving_ticks += 1;
                self.drain(p.drive_load_kw, p.dt_s);
                let budget = p.table.speed_limit(self.pos.lane) * p.dt_s;
                let a = self
                    .assignment
                    .as_ref()
                    .expect("driving implies an assignment");
                let (target, field) = if self.duty == Duty::ToPickup {
                    (
                        a.origin,
                        a.to_origin
                            .as_ref()
                            .expect("pickup field lives until pickup"),
                    )
                } else {
                    (a.dest, &a.to_dest)
                };
                let adv = p.table.advance_with(&mut self.pos, target, budget, field);
                self.odometer_m += adv.moved_m;
                self.control_kernel(p);
                if adv.arrived {
                    self.on_arrival(p);
                }
            }
        }
    }

    /// Handles reaching the current target: pickup → onboard, or drop-off
    /// → record the ride and go idle (or charge if below reserve).
    fn on_arrival(&mut self, p: &StepParams<'_>) {
        if self.duty == Duty::ToPickup {
            let a = self.assignment.as_mut().expect("arrived with assignment");
            a.pickup_tick = p.tick;
            // The pickup leg is over; release its route field.
            a.to_origin = None;
            self.duty = Duty::Onboard;
        } else {
            let a = self.assignment.take().expect("arrived with assignment");
            self.completed.push(RideEvent {
                request_id: a.request_id,
                wait_ticks: a.pickup_tick - a.request_tick,
                travel_ticks: p.tick - a.pickup_tick,
                direct_m: a.direct_m,
            });
            self.duty = if self.battery.soc() < p.reserve_soc {
                Duty::Charging
            } else {
                Duty::Idle
            };
        }
    }

    /// Drains the battery at `load_kw` for one tick, crediting the energy
    /// actually delivered (clamped by the remaining charge).
    fn drain(&mut self, load_kw: f64, dt_s: f64) {
        let before = self.battery.remaining_kwh();
        let _ = self
            .battery
            .drain(load_kw, SimDuration::from_secs_f64(dt_s));
        self.energy_kwh += before - self.battery.remaining_kwh();
    }

    /// Lookahead control kernel: samples poses along the current lane at
    /// 0.5 m spacing and accumulates the absolute heading change — the
    /// per-vehicle compute that the sharded tick parallelizes. Scratch
    /// comes from the per-thread arena, so steady state allocates nothing.
    fn control_kernel(&mut self, p: &StepParams<'_>) {
        let lane_len = p.table.lane_length(self.pos.lane);
        let effort = SCRATCH.with(|arena| {
            let mut headings: Vec<f64> = arena.take();
            for k in 0..p.lookahead {
                let s = (self.pos.s + 0.5 * f64::from(k + 1)).min(lane_len);
                headings.push(
                    p.table
                        .pose(FleetPos {
                            lane: self.pos.lane,
                            s,
                        })
                        .theta,
                );
            }
            let mut effort = 0.0;
            for w in headings.windows(2) {
                effort += sov_math::angle::diff(w[1], w[0]).abs();
            }
            arena.recycle(headings);
            effort
        });
        self.control_effort += effort;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RideGen;
    use sov_world::map::grid_network;

    fn setup() -> (RouteTable, FleetVehicle) {
        let table = RouteTable::new(&grid_network(3, 3, 50.0, 2.5, 8.0));
        let pos = table.sample(0.1);
        (table, FleetVehicle::new(0, pos, 6.0))
    }

    fn params<'a>(table: &'a RouteTable, tick: u64) -> StepParams<'a> {
        StepParams {
            table,
            tick,
            dt_s: 1.0,
            drive_load_kw: 0.775,
            idle_load_kw: 0.175,
            charge_rate_kw: 6.0,
            reserve_soc: 0.15,
            lookahead: 8,
            fault: None,
            stall_requeue_ticks: None,
        }
    }

    fn some_request(table: &RouteTable) -> RideRequest {
        let mut gen = RideGen::new(1, 1.0, 100.0);
        let mut cache = crate::graph::RouteCache::new(table, usize::MAX);
        let mut out = Vec::new();
        let mut tick = 0;
        while out.is_empty() {
            gen.generate(tick, table, &mut cache, &mut out);
            tick += 1;
        }
        out[0]
    }

    fn assign(v: &mut FleetVehicle, table: &RouteTable, req: &RideRequest, tick: u64) {
        v.assign(
            req,
            tick,
            Arc::new(table.field_to(req.origin.lane)),
            Arc::new(table.field_to(req.dest.lane)),
        );
    }

    #[test]
    fn serves_a_ride_end_to_end() {
        let (table, mut v) = setup();
        let req = some_request(&table);
        assign(&mut v, &table, &req, 5);
        assert_eq!(v.duty(), Duty::ToPickup);
        assert!(!v.is_available());
        let mut tick = 5;
        while v.completed.is_empty() {
            v.step(&params(&table, tick));
            tick += 1;
            assert!(tick < 10_000, "ride never completed");
        }
        let e = v.completed[0];
        assert_eq!(e.request_id, req.id);
        assert!(v.duty() == Duty::Idle || v.duty() == Duty::Charging);
        assert!(v.odometer_m >= req.direct_m - 1e-6);
        assert!(v.energy_kwh > 0.0);
        assert!(v.driving_ticks > 0);
        // The last step ran at tick − 1: wait + travel spans arrival → drop.
        assert_eq!(
            e.wait_ticks + e.travel_ticks,
            (tick - 1) - req.tick,
            "wait + travel accounts for every tick since arrival"
        );
    }

    #[test]
    fn idle_vehicle_drains_and_eventually_charges() {
        let (table, mut v) = setup();
        let mut ticks = 0u64;
        while v.duty() != Duty::Charging {
            v.step(&params(&table, ticks));
            ticks += 1;
            assert!(ticks < 200_000, "never reached the reserve threshold");
        }
        // 6 kWh × 85% at 0.175 kW ≈ 29.1 h ≈ 104.9 k ticks.
        assert!(ticks > 100_000);
        // Charging at 6 kW refills within ~1 h of ticks.
        let mut charge_ticks = 0u64;
        while v.duty() == Duty::Charging {
            v.step(&params(&table, ticks + charge_ticks));
            charge_ticks += 1;
            assert!(charge_ticks < 10_000, "never finished charging");
        }
        assert!(v.battery.is_full());
        assert_eq!(v.duty(), Duty::Idle);
        assert_eq!(v.charging_ticks, charge_ticks);
    }

    #[test]
    fn stalled_vehicle_does_not_move() {
        let (table, mut v) = setup();
        let req = some_request(&table);
        assign(&mut v, &table, &req, 0);
        let plan = FleetFaultPlan {
            seed: 1,
            from_tick: 0,
            until_tick: 100,
            fraction: 1.0,
        };
        let before = v.pos;
        let mut p = params(&table, 0);
        p.fault = Some(&plan);
        v.step(&p);
        assert_eq!(v.pos, before);
        assert_eq!(v.stalled_ticks, 1);
        assert!(v.energy_kwh > 0.0, "stalled vehicles still draw idle load");
    }

    #[test]
    #[should_panic(expected = "busy vehicle")]
    fn double_dispatch_rejected() {
        let (table, mut v) = setup();
        let req = some_request(&table);
        assign(&mut v, &table, &req, 0);
        assign(&mut v, &table, &req, 0);
    }

    #[test]
    fn stall_timeout_returns_the_ride_exactly_once() {
        let (table, mut v) = setup();
        let req = some_request(&table);
        assign(&mut v, &table, &req, 0);
        let plan = FleetFaultPlan {
            seed: 1,
            from_tick: 0,
            until_tick: 1000,
            fraction: 1.0,
        };
        let mut p = params(&table, 0);
        p.fault = Some(&plan);
        p.stall_requeue_ticks = Some(5);
        // Four stalled ticks: still holding the ride.
        for tick in 0..4 {
            p.tick = tick;
            v.step(&p);
            assert!(v.returned.is_none(), "returned before the timeout");
            assert_eq!(v.duty(), Duty::ToPickup);
        }
        // Fifth consecutive stall crosses the threshold: ride comes back.
        p.tick = 4;
        v.step(&p);
        let returned = v.returned.take().expect("timeout must return the ride");
        assert_eq!(returned.to_request(), req);
        assert_eq!(v.duty(), Duty::Idle);
        assert!(v.assignment().is_none());
        assert!(
            !v.is_available(),
            "still stalled: must not be dispatchable this tick"
        );
        // Further stalled ticks do not return anything else.
        p.tick = 5;
        v.step(&p);
        assert!(v.returned.is_none());
    }

    #[test]
    fn onboard_rides_survive_stall_timeouts() {
        let (table, mut v) = setup();
        let req = some_request(&table);
        assign(&mut v, &table, &req, 0);
        // Drive (fault-free) until pickup.
        let mut p = params(&table, 0);
        let mut tick = 0;
        while v.duty() == Duty::ToPickup {
            p.tick = tick;
            v.step(&p);
            tick += 1;
            assert!(tick < 10_000, "never reached the pickup");
        }
        assert_eq!(v.duty(), Duty::Onboard);
        // Stall far past the timeout: the passenger stays aboard.
        let plan = FleetFaultPlan {
            seed: 1,
            from_tick: tick,
            until_tick: tick + 50,
            fraction: 1.0,
        };
        p.fault = Some(&plan);
        p.stall_requeue_ticks = Some(5);
        for _ in 0..50 {
            p.tick = tick;
            v.step(&p);
            tick += 1;
        }
        assert!(v.returned.is_none(), "onboard rides must never requeue");
        assert_eq!(v.duty(), Duty::Onboard);
        // Stall run resets once the fault clears; the ride completes.
        p.fault = None;
        while v.completed.is_empty() {
            p.tick = tick;
            v.step(&p);
            tick += 1;
            assert!(tick < 10_000, "ride never completed after the stall");
        }
        assert_eq!(v.completed[0].request_id, req.id);
    }

    #[test]
    fn interrupted_stall_runs_do_not_accumulate() {
        let (table, mut v) = setup();
        let req = some_request(&table);
        assign(&mut v, &table, &req, 0);
        // Alternate stalled / clear ticks: the consecutive-run counter
        // resets every clear tick, so a timeout of 2 never fires.
        let plan = FleetFaultPlan {
            seed: 1,
            from_tick: 0,
            until_tick: 1000,
            fraction: 1.0,
        };
        let mut p = params(&table, 0);
        p.stall_requeue_ticks = Some(2);
        for tick in 0..40 {
            p.tick = tick;
            p.fault = (tick % 2 == 0).then_some(&plan);
            v.step(&p);
            assert!(v.returned.is_none(), "interrupted runs must not trigger");
        }
        assert_eq!(v.duty(), Duty::ToPickup);
    }
}
