//! Property-based tests for the sensor models.

use sov_math::{Pose2, SovRng};
use sov_sensors::camera::{Camera, Intrinsics, StereoRig};
use sov_sensors::sync::{SyncConfig, SyncStrategy, Synchronizer};
use sov_testkit::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hardware_sync_error_bounded_by_jitter(seed in 0u64..2_000, k in 0u64..10_000) {
        let cfg = SyncConfig { seed, ..SyncConfig::default() };
        let jitter = cfg.hardware_jitter_ms;
        let sync = Synchronizer::new(SyncStrategy::HardwareAssisted, cfg);
        let mut rng = SovRng::seed_from_u64(seed);
        let cam = sync.camera_sample(k, &mut rng);
        let imu = sync.imu_sample(k, &mut rng);
        prop_assert!(cam.timestamp_error_ms().abs() <= jitter + 0.5);
        prop_assert!(imu.timestamp_error_ms().abs() <= jitter + 1e-9);
    }

    #[test]
    fn software_sync_always_stamps_late(seed in 0u64..2_000, k in 0u64..1_000) {
        let sync = Synchronizer::new(
            SyncStrategy::SoftwareOnly,
            SyncConfig { seed, ..SyncConfig::default() },
        );
        let mut rng = SovRng::seed_from_u64(seed ^ 1);
        // Arrival-time stamping can never be earlier than the capture.
        prop_assert!(sync.camera_sample(k, &mut rng).timestamp_error_ms() > 0.0);
        prop_assert!(sync.imu_sample(k, &mut rng).timestamp_error_ms() > 0.0);
    }

    #[test]
    fn camera_triggers_are_strictly_increasing(seed in 0u64..2_000, k in 0u64..10_000) {
        for strategy in [SyncStrategy::SoftwareOnly, SyncStrategy::HardwareAssisted] {
            let sync = Synchronizer::new(strategy, SyncConfig { seed, ..SyncConfig::default() });
            let t0 = sync.camera_trigger(sov_sensors::sync::CameraId::FrontLeft, k);
            let t1 = sync.camera_trigger(sov_sensors::sync::CameraId::FrontLeft, k + 1);
            prop_assert!(t1 > t0);
        }
    }

    #[test]
    fn projection_depth_matches_geometry(
        x in 1.0f64..50.0,
        y in -3.0f64..3.0,
        z in 0.0f64..3.0,
        vx in -10.0f64..10.0,
        vtheta in -3.0f64..3.0,
    ) {
        let cam = Camera::new(Intrinsics::hd1080(), 0.0, 1.2, 60.0, 0.0).unwrap();
        let vehicle = Pose2::new(vx, 0.0, vtheta);
        let (wx, wy) = vehicle.transform_point(x, y);
        if let Some((_, depth)) = cam.project(&vehicle, wx, wy, z) {
            prop_assert!((depth - x).abs() < 1e-9, "depth {depth} vs forward {x}");
        }
    }

    #[test]
    fn stereo_depth_from_disparity_roundtrip(
        x in 2.0f64..50.0,
        y in -2.0f64..2.0,
        z in 0.5f64..3.0,
    ) {
        let rig = StereoRig::new(Intrinsics::hd1080(), 0.12, 1.2, 60.0, 0.0).unwrap();
        let vehicle = Pose2::identity();
        let left = rig.left().project(&vehicle, x, y, z);
        let right = rig.right().project(&vehicle, x, y, z);
        if let (Some(((ul, _), depth)), Some(((ur, _), _))) = (left, right) {
            let est = rig.depth_from_disparity(ul - ur).expect("positive disparity");
            prop_assert!((est - depth).abs() < 1e-6);
        }
    }
}
