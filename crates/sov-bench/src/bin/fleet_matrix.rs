//! Fleet-scale serving throughput matrix (DESIGN.md §14).
//!
//! Drives the sharded `sov-fleet` workload — seeded Poisson demand over
//! the street grid, deterministic nearest-available dispatch, per-vehicle
//! battery/charging state — across fleet size × worker-lane count and
//! reports serving throughput with the tail of the rider experience:
//!
//! * **rides/sec** (wall-clock) and the real-time factor per cell;
//! * **wait and travel time** at p50/p99/p99.9/max via [`Summary`];
//! * **fleet economics**: utilization, charging fraction, energy and
//!   pro-rated TCO per ride, and the Eq. 2 driving time lost to the
//!   autonomy load.
//!
//! The headline invariant is the DESIGN.md §8 argument applied to the
//! fleet tick: chunk boundaries are part of the workload (never derived
//! from the worker count) and the merge is serial in vehicle id order, so
//! every sharded cell's [`FleetReport`] must be **byte-identical** to the
//! serial reference — gated here per cell, before any percentile query
//! (percentiles sort in place, which `PartialEq` would see).
//!
//! Wall-clock fields (`wall_s`, `rides_per_sec`, `realtime_factor`) are
//! measured as-is and vary run to run; every simulated field is
//! deterministic and checksum-witnessed. The throughput gate — the
//! widest-swept worker cell must beat serial on the largest fleet — is
//! enforced only when `host_cores >= 3`; a sequential host cannot overlap
//! the lanes it does not have, so there it prints a warning instead.
//!
//! Flags: `--json PATH` writes the matrix (the committed baseline is
//! `BENCH_fleet.json`); `--smoke` shrinks the sweep for CI; `--seed N`
//! reseeds the demand stream.

use sov_fleet::sim::{FleetConfig, FleetReport, FleetSim};
use sov_math::stats::Summary;
use sov_runtime::pool::WorkerPool;
use std::time::Instant;

/// Full sweep: `(fleet size, ticks)`. The largest cell serves ≥ 100k ride
/// requests (4000 vehicles × 6000 s at the calibrated demand rate) — the
/// scale claim the committed baseline witnesses.
const FULL_FLEETS: [(u32, u64); 3] = [(100, 4000), (1000, 4000), (4000, 6000)];
const FULL_WORKERS: [usize; 4] = [0, 2, 4, 8];

/// CI smoke sweep: one small fleet, serial vs one pool.
const SMOKE_FLEETS: [(u32, u64); 1] = [(400, 600)];
const SMOKE_WORKERS: [usize; 2] = [0, 2];

/// One timed run of the matrix. `workers == 0` is the serial reference.
struct Cell {
    workers: usize,
    wall_s: f64,
    rides_per_sec: f64,
    realtime_factor: f64,
    matches_serial: bool,
}

/// The deterministic per-fleet facts, read off the serial reference
/// report (identical in every cell by the byte-identity gate).
struct FleetRow {
    fleet: u32,
    ticks: u64,
    report: FleetReport,
    /// Wait/travel `[p50, p99, p99.9, max]` in seconds, taken from
    /// clones so the gated report keeps its pre-sort state.
    wait: [f64; 4],
    travel: [f64; 4],
    cells: Vec<Cell>,
}

/// `[p50, p99, p99.9, max]` — the four points every latency column
/// reports (the pipeline-matrix convention).
fn quad(s: &mut Summary) -> [f64; 4] {
    [s.percentile(50.0), s.p99(), s.p999(), s.max()]
}

fn quad_json(q: [f64; 4]) -> String {
    format!(
        "{{\"p50\": {:.3}, \"p99\": {:.3}, \"p999\": {:.3}, \"max\": {:.3}}}",
        q[0], q[1], q[2], q[3]
    )
}

fn run_cell(cfg: &FleetConfig, workers: usize) -> (FleetReport, f64) {
    let pool = (workers > 0).then(|| WorkerPool::new(workers));
    let mut sim = FleetSim::new(cfg.clone());
    let t0 = Instant::now();
    let report = sim.run(pool.as_ref());
    (report, t0.elapsed().as_secs_f64())
}

fn run_fleet(seed: u64, fleet: u32, ticks: u64, workers: &[usize]) -> FleetRow {
    let cfg = FleetConfig {
        seed,
        ticks,
        ..FleetConfig::perceptin_fleet(fleet)
    };
    let mut cells = Vec::with_capacity(workers.len());
    let mut reference: Option<FleetReport> = None;
    for &w in workers {
        let (report, wall_s) = run_cell(&cfg, w);
        // Byte-identity gate: compare before any percentile query.
        let matches_serial = reference.as_ref().is_none_or(|r| *r == report);
        cells.push(Cell {
            workers: w,
            wall_s,
            rides_per_sec: report.rides_completed as f64 / wall_s,
            realtime_factor: ticks as f64 * cfg.tick_s / wall_s,
            matches_serial,
        });
        if reference.is_none() {
            reference = Some(report);
        }
    }
    let report = reference.expect("at least one worker cell swept");
    let wait = quad(&mut report.wait_s.clone());
    let travel = quad(&mut report.travel_s.clone());
    FleetRow {
        fleet,
        ticks,
        report,
        wait,
        travel,
        cells,
    }
}

/// The gate cell for a fleet: workers = 4 when swept (the ISSUE gate),
/// otherwise the widest sharded cell.
fn gate_cell(row: &FleetRow) -> &Cell {
    row.cells
        .iter()
        .find(|c| c.workers == 4)
        .or_else(|| row.cells.iter().max_by_key(|c| c.workers))
        .expect("cells are never empty")
}

fn main() {
    sov_bench::banner(
        "Fleet matrix",
        "Sharded ride serving: fleet size × workers, byte-identical reports",
    );
    let args: Vec<String> = std::env::args().collect();
    let seed = sov_bench::seed_from_args();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());
    let host_cores = std::thread::available_parallelism().map_or(0, std::num::NonZero::get);

    let (fleets, workers): (&[(u32, u64)], &[usize]) = if smoke {
        (&SMOKE_FLEETS, &SMOKE_WORKERS)
    } else {
        (&FULL_FLEETS, &FULL_WORKERS)
    };
    println!(
        "sweeping {} fleet size(s) × {} worker count(s) on {host_cores} core(s), seed {seed}",
        fleets.len(),
        workers.len(),
    );

    let rows: Vec<FleetRow> = fleets
        .iter()
        .map(|&(fleet, ticks)| run_fleet(seed, fleet, ticks, workers))
        .collect();

    let mut identical = true;
    for row in &rows {
        sov_bench::section(&format!(
            "fleet {} × {} ticks — {} requests, {} rides, util {:.2}, wait p50/p99 {:.0}/{:.0} s",
            row.fleet,
            row.ticks,
            row.report.requests,
            row.report.rides_completed,
            row.report.utilization,
            row.wait[0],
            row.wait[1],
        ));
        println!(
            "{:>7} | {:>8} | {:>9} | {:>8} | {:>16} | {:>5}",
            "workers", "wall s", "rides/s", "sim×", "checksum", "ident"
        );
        for c in &row.cells {
            if !c.matches_serial {
                identical = false;
            }
            println!(
                "{:>7} | {:>8.2} | {:>9.1} | {:>7.0}× | {:016x} | {:>5}{}",
                c.workers,
                c.wall_s,
                c.rides_per_sec,
                c.realtime_factor,
                row.report.checksum,
                c.matches_serial,
                if c.matches_serial {
                    ""
                } else {
                    "  REPORT DIVERGED FROM SERIAL"
                },
            );
        }
        println!(
            "economics: {:.3} kWh/ride, ${:.2}/ride, {:.2} h Eq. 2 driving time lost, charging {:.3}",
            row.report.energy_per_ride_kwh,
            row.report.cost_per_ride_usd,
            row.report.autonomy_time_lost_h,
            row.report.charging_fraction,
        );
    }

    // --- acceptance -------------------------------------------------------
    let widest = rows.last().expect("at least one fleet swept");
    let serial = widest.cells.first().expect("serial cell swept first");
    let gate = gate_cell(widest);
    let gate_ok = gate.rides_per_sec > serial.rides_per_sec;
    sov_bench::section("acceptance");
    println!(
        "sharded reports byte-identical to serial in every cell: {}",
        if identical { "PASS" } else { "FAIL" },
    );
    if host_cores >= 3 {
        println!(
            "throughput gate: fleet {} workers {} at {:.1} rides/s > serial {:.1}: {}",
            widest.fleet,
            gate.workers,
            gate.rides_per_sec,
            serial.rides_per_sec,
            if gate_ok { "PASS" } else { "FAIL" },
        );
    } else {
        // One visible line, not a failure: without at least three cores
        // the sharded tick cannot overlap its chunks, so the wall-clock
        // half is informational. The determinism half above still gates.
        println!(
            "warning: host_cores = {host_cores} < 3 — throughput gate informational only \
             (workers {} at {:.1} rides/s vs serial {:.1})",
            gate.workers, gate.rides_per_sec, serial.rides_per_sec,
        );
    }

    if let Some(path) = json_path {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"seed\": {seed},\n  \"host_cores\": {host_cores},\n  \"smoke\": {smoke},\n"
        ));
        out.push_str(concat!(
            "  \"caveats\": [\n",
            "    \"wall_s, rides_per_sec and realtime_factor are wall-clock and vary run to run\",\n",
            "    \"every simulated field is deterministic: byte-identical across worker counts, witnessed by the checksum\",\n",
            "    \"the throughput gate is enforced only when host_cores >= 3\"\n",
            "  ],\n"
        ));
        out.push_str("  \"fleets\": [\n");
        let fleet_rows: Vec<String> = rows
            .iter()
            .map(|r| {
                let cells: Vec<String> = r
                    .cells
                    .iter()
                    .map(|c| {
                        format!(
                            concat!(
                                "      {{\"workers\": {}, \"wall_s\": {:.3}, ",
                                "\"rides_per_sec\": {:.1}, \"realtime_factor\": {:.1}, ",
                                "\"matches_serial\": {}}}"
                            ),
                            c.workers,
                            c.wall_s,
                            c.rides_per_sec,
                            c.realtime_factor,
                            c.matches_serial,
                        )
                    })
                    .collect();
                format!(
                    concat!(
                        "    {{\"fleet\": {}, \"ticks\": {}, \"requests\": {}, ",
                        "\"rides_completed\": {}, \"rides_in_progress\": {}, ",
                        "\"rides_unserved\": {}, \"peak_queue\": {}, ",
                        "\"wait_s\": {}, \"travel_s\": {}, ",
                        "\"utilization\": {:.4}, \"charging_fraction\": {:.4}, ",
                        "\"distance_km\": {:.1}, \"energy_kwh\": {:.2}, ",
                        "\"energy_per_ride_kwh\": {:.4}, \"cost_per_ride_usd\": {:.3}, ",
                        "\"autonomy_time_lost_h\": {:.3}, \"checksum\": \"{:016x}\",\n",
                        "     \"cells\": [\n{}\n     ]}}"
                    ),
                    r.fleet,
                    r.ticks,
                    r.report.requests,
                    r.report.rides_completed,
                    r.report.rides_in_progress,
                    r.report.rides_unserved,
                    r.report.peak_queue,
                    quad_json(r.wait),
                    quad_json(r.travel),
                    r.report.utilization,
                    r.report.charging_fraction,
                    r.report.distance_km,
                    r.report.energy_kwh,
                    r.report.energy_per_ride_kwh,
                    r.report.cost_per_ride_usd,
                    r.report.autonomy_time_lost_h,
                    r.report.checksum,
                    cells.join(",\n"),
                )
            })
            .collect();
        out.push_str(&fleet_rows.join(",\n"));
        out.push_str(&format!(
            concat!(
                "\n  ],\n  \"throughput_gate\": {{\"fleet\": {}, \"workers\": {}, ",
                "\"serial_rides_per_sec\": {:.1}, \"sharded_rides_per_sec\": {:.1}, ",
                "\"sharded_beats_serial\": {}, \"enforced\": {}}},\n"
            ),
            widest.fleet,
            gate.workers,
            serial.rides_per_sec,
            gate.rides_per_sec,
            gate_ok,
            host_cores >= 3,
        ));
        out.push_str(&format!("  \"reports_identical\": {identical}\n}}\n"));
        std::fs::write(&path, out).expect("write JSON report");
        println!("\nwrote {path}");
    }

    if !identical {
        eprintln!("determinism violation: sharded fleet report diverged from serial");
        std::process::exit(1);
    }
    if host_cores >= 3 && !gate_ok {
        eprintln!("throughput gate: sharded fleet tick must beat serial on a multicore host");
        std::process::exit(1);
    }
    println!(
        "\nall {} cells byte-identical to their serial reference.",
        rows.iter().map(|r| r.cells.len()).sum::<usize>()
    );
}
