//! Fig. 9 / Sec. V-B3 — the runtime partial reconfiguration engine.
//!
//! Simulates the decoupled Tx/FIFO/Rx/ICAP engine cycle by cycle and
//! compares it against the stock CPU-driven path, including the
//! feature-extraction ↔ feature-tracking swap scenario that motivates RPR.

use sov_platform::rpr::{RprConfig, RprEngine, RprFootprint, RprPath};

fn main() {
    sov_bench::banner(
        "Fig. 9 / Sec. V-B3",
        "Runtime partial reconfiguration engine",
    );
    let engine = RprEngine::default();
    println!(
        "{:>14} | {:>18} | {:>14} | {:>12} | {:>10}",
        "bitstream", "path", "time", "MB/s", "energy"
    );
    println!(
        "{:->14}-+-{:->18}-+-{:->14}-+-{:->12}-+-{:->10}",
        "", "", "", "", ""
    );
    for size_mb in [1u64, 4, 10] {
        let bytes = size_mb * 1024 * 1024;
        for (label, path) in [
            ("CPU-driven (stock)", RprPath::CpuDriven),
            ("decoupled engine", RprPath::DecoupledEngine),
        ] {
            let r = engine.reconfigure(bytes, path);
            println!(
                "{:>12}MB | {:>18} | {:>14} | {:>12.1} | {:>8.1}mJ",
                size_mb,
                label,
                format!("{}", r.duration),
                r.throughput_mbps(),
                r.energy_j * 1000.0
            );
        }
    }
    sov_bench::section("localization bitstream swap (keyframe ↔ tracked frame)");
    let swap = engine.reconfigure(1024 * 1024, RprPath::DecoupledEngine);
    println!(
        "  1 MB partial bitstream: {} and {:.1} mJ per swap (paper: <3 ms, 2.1 mJ)",
        swap.duration,
        swap.energy_j * 1000.0
    );
    println!(
        "  peak FIFO occupancy: {} B (paper: a 128 B FIFO is sufficient)",
        swap.peak_fifo_occupancy
    );
    sov_bench::section("resources");
    let fp = RprFootprint::PAPER;
    println!(
        "  engine footprint: {} FFs, {} LUTs (paper: ~400/~400)",
        fp.ffs, fp.luts
    );
    sov_bench::section("FIFO-depth ablation");
    for fifo in [8usize, 32, 128, 512] {
        let cfg = RprConfig {
            fifo_bytes: fifo,
            tx_burst_bytes: fifo.min(64),
            ..RprConfig::default()
        };
        let r = RprEngine::new(cfg).reconfigure(4 * 1024 * 1024, RprPath::DecoupledEngine);
        println!("  FIFO {fifo:>4} B → {:>7.1} MB/s", r.throughput_mbps());
    }
}
