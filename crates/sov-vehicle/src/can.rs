//! Controller Area Network model.
//!
//! Control commands travel from the on-vehicle server to the ECU over the
//! CAN bus (Fig. 7); the paper measures `T_data ≈ 1 ms`. The model here is
//! frame-level: classical CAN 2.0 at 500 kbit/s, 8-byte payloads, priority
//! arbitration by identifier (lower id wins), non-preemptive transmission.
//! The reactive path's emergency frames use a lower (higher-priority)
//! identifier than the proactive path's commands, so an override is never
//! queued behind routine traffic.

use sov_sim::time::{SimDuration, SimTime};
use std::collections::BinaryHeap;

/// CAN identifier (lower value = higher priority, as on a real bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CanId(pub u16);

impl CanId {
    /// Identifier used by reactive-path emergency frames.
    pub const REACTIVE_OVERRIDE: CanId = CanId(0x010);
    /// Identifier used by proactive-path control commands.
    pub const CONTROL_COMMAND: CanId = CanId(0x100);
    /// Identifier used by telemetry/log frames.
    pub const TELEMETRY: CanId = CanId(0x400);
}

/// One CAN frame.
#[derive(Debug, Clone, PartialEq)]
pub struct CanFrame {
    /// Arbitration identifier.
    pub id: CanId,
    /// Payload (up to 8 bytes for classical CAN).
    pub data: Vec<u8>,
    /// When the frame was enqueued.
    pub enqueued_at: SimTime,
}

/// Error for invalid frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameTooLargeError(pub usize);

impl std::fmt::Display for FrameTooLargeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CAN payload of {} bytes exceeds the 8-byte classical CAN limit",
            self.0
        )
    }
}

impl std::error::Error for FrameTooLargeError {}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Pending {
    id: CanId,
    seq: u64,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the lowest id (highest
        // priority) pops first, FIFO within an id.
        other
            .id
            .cmp(&self.id)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A delivered frame with its bus latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery {
    /// The frame.
    pub frame: CanFrame,
    /// Delivery time at the receiver.
    pub delivered_at: SimTime,
}

impl Delivery {
    /// Bus latency (queueing + transmission).
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.delivered_at.since(self.frame.enqueued_at)
    }
}

/// The CAN bus.
#[derive(Debug, Clone)]
pub struct CanBus {
    bitrate_bps: f64,
    queue: BinaryHeap<Pending>,
    frames: Vec<Option<CanFrame>>,
    next_seq: u64,
    /// Time at which the bus becomes free.
    busy_until: SimTime,
}

impl CanBus {
    /// A 500 kbit/s classical CAN bus (typical automotive control bus).
    #[must_use]
    pub fn new_500kbps() -> Self {
        Self::with_bitrate(500_000.0)
    }

    /// A bus with the given bitrate.
    ///
    /// # Panics
    ///
    /// Panics if the bitrate is not positive.
    #[must_use]
    pub fn with_bitrate(bitrate_bps: f64) -> Self {
        assert!(bitrate_bps > 0.0, "bitrate must be positive");
        Self {
            bitrate_bps,
            queue: BinaryHeap::new(),
            frames: Vec::new(),
            next_seq: 0,
            busy_until: SimTime::ZERO,
        }
    }

    /// On-wire time of a frame: ~44 overhead bits + 8·payload bits, plus
    /// worst-case stuffing (~20%).
    #[must_use]
    pub fn frame_time(&self, payload_len: usize) -> SimDuration {
        let bits = (44.0 + 8.0 * payload_len as f64) * 1.2;
        SimDuration::from_secs_f64(bits / self.bitrate_bps)
    }

    /// Enqueues a frame at time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`FrameTooLargeError`] if the payload exceeds 8 bytes.
    pub fn send(
        &mut self,
        id: CanId,
        data: Vec<u8>,
        now: SimTime,
    ) -> Result<(), FrameTooLargeError> {
        if data.len() > 8 {
            return Err(FrameTooLargeError(data.len()));
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Pending { id, seq });
        if self.frames.len() <= seq as usize {
            self.frames.resize(seq as usize + 1, None);
        }
        self.frames[seq as usize] = Some(CanFrame {
            id,
            data,
            enqueued_at: now,
        });
        Ok(())
    }

    /// Delivers all queued frames, arbitrating by priority, starting no
    /// earlier than `now`. Returns deliveries in bus order.
    pub fn deliver_all(&mut self, now: SimTime) -> Vec<Delivery> {
        let mut out = Vec::new();
        let mut clock = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        while let Some(pending) = self.queue.pop() {
            let frame = self.frames[pending.seq as usize]
                .take()
                .expect("frame stored at send()");
            // Transmission cannot start before the frame exists.
            if frame.enqueued_at > clock {
                clock = frame.enqueued_at;
            }
            clock += self.frame_time(frame.data.len());
            out.push(Delivery {
                frame,
                delivered_at: clock,
            });
        }
        self.busy_until = clock;
        out
    }

    /// Number of frames waiting.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl Default for CanBus {
    fn default() -> Self {
        Self::new_500kbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_latency_well_under_1ms() {
        let mut bus = CanBus::new_500kbps();
        bus.send(
            CanId::CONTROL_COMMAND,
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            SimTime::ZERO,
        )
        .unwrap();
        let deliveries = bus.deliver_all(SimTime::ZERO);
        assert_eq!(deliveries.len(), 1);
        let lat = deliveries[0].latency().as_millis_f64();
        // Paper: T_data ≈ 1 ms end-to-end (incl. software); wire time for
        // one frame is a fraction of that.
        assert!(lat < 1.0, "frame latency {lat} ms");
        assert!(lat > 0.1, "frame latency {lat} ms should be non-trivial");
    }

    #[test]
    fn arbitration_prefers_low_ids() {
        let mut bus = CanBus::new_500kbps();
        bus.send(CanId::TELEMETRY, vec![0; 8], SimTime::ZERO)
            .unwrap();
        bus.send(CanId::CONTROL_COMMAND, vec![0; 8], SimTime::ZERO)
            .unwrap();
        bus.send(CanId::REACTIVE_OVERRIDE, vec![0; 8], SimTime::ZERO)
            .unwrap();
        let order: Vec<CanId> = bus
            .deliver_all(SimTime::ZERO)
            .into_iter()
            .map(|d| d.frame.id)
            .collect();
        assert_eq!(
            order,
            vec![
                CanId::REACTIVE_OVERRIDE,
                CanId::CONTROL_COMMAND,
                CanId::TELEMETRY
            ]
        );
    }

    #[test]
    fn fifo_within_same_id() {
        let mut bus = CanBus::new_500kbps();
        for i in 0..5u8 {
            bus.send(CanId::CONTROL_COMMAND, vec![i], SimTime::ZERO)
                .unwrap();
        }
        let payloads: Vec<u8> = bus
            .deliver_all(SimTime::ZERO)
            .into_iter()
            .map(|d| d.frame.data[0])
            .collect();
        assert_eq!(payloads, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn queueing_delay_accumulates() {
        let mut bus = CanBus::new_500kbps();
        for _ in 0..10 {
            bus.send(CanId::TELEMETRY, vec![0; 8], SimTime::ZERO)
                .unwrap();
        }
        let deliveries = bus.deliver_all(SimTime::ZERO);
        let first = deliveries.first().unwrap().latency();
        let last = deliveries.last().unwrap().latency();
        assert!(last > first * 5, "later frames queue behind earlier ones");
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut bus = CanBus::new_500kbps();
        let err = bus
            .send(CanId::TELEMETRY, vec![0; 9], SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, FrameTooLargeError(9));
        assert_eq!(bus.pending(), 0);
    }

    #[test]
    fn bus_stays_busy_across_calls() {
        let mut bus = CanBus::new_500kbps();
        bus.send(CanId::TELEMETRY, vec![0; 8], SimTime::ZERO)
            .unwrap();
        let d1 = bus.deliver_all(SimTime::ZERO);
        // A frame sent immediately after must wait for the bus to free.
        bus.send(CanId::TELEMETRY, vec![0; 8], SimTime::ZERO)
            .unwrap();
        let d2 = bus.deliver_all(SimTime::ZERO);
        assert!(d2[0].delivered_at > d1[0].delivered_at);
    }
}
