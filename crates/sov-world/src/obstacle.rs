//! Dynamic and static obstacles.
//!
//! Obstacles are what the perception module must detect (Sec. IV) and the
//! reactive path must stop for (Sec. V). Each obstacle has a class, a
//! footprint, and a simple scripted motion model; the scenario layer decides
//! when obstacles appear.

use sov_math::Pose2;
use sov_sim::time::SimTime;
use std::fmt;

/// Object classes produced by the detection DNN (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObstacleClass {
    /// A walking person.
    Pedestrian,
    /// A cyclist or scooter rider.
    Cyclist,
    /// Another vehicle.
    Vehicle,
    /// A static object (cone, barrier, parked cart).
    StaticObject,
}

impl ObstacleClass {
    /// Typical footprint radius (m) used for collision checks.
    #[must_use]
    pub fn radius_m(&self) -> f64 {
        match self {
            Self::Pedestrian => 0.3,
            Self::Cyclist => 0.6,
            Self::Vehicle => 1.2,
            Self::StaticObject => 0.5,
        }
    }
}

impl fmt::Display for ObstacleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Self::Pedestrian => "pedestrian",
            Self::Cyclist => "cyclist",
            Self::Vehicle => "vehicle",
            Self::StaticObject => "static",
        };
        write!(f, "{s}")
    }
}

/// Identifier of an obstacle within a [`crate::scenario::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObstacleId(pub u32);

/// An obstacle with a scripted constant-velocity motion model.
#[derive(Debug, Clone, PartialEq)]
pub struct Obstacle {
    /// Identifier.
    pub id: ObstacleId,
    /// Class label (ground truth; the detector may mislabel it).
    pub class: ObstacleClass,
    /// Pose at `spawn_time`.
    pub initial_pose: Pose2,
    /// World-frame velocity (vx, vy) in m/s.
    pub velocity: (f64, f64),
    /// Time at which the obstacle appears in the world.
    pub spawn_time: SimTime,
    /// Optional time at which it disappears (cleared the road).
    pub despawn_time: Option<SimTime>,
}

impl Obstacle {
    /// Creates a static obstacle present from `spawn_time` onwards.
    #[must_use]
    pub fn fixed(id: ObstacleId, class: ObstacleClass, pose: Pose2, spawn_time: SimTime) -> Self {
        Self {
            id,
            class,
            initial_pose: pose,
            velocity: (0.0, 0.0),
            spawn_time,
            despawn_time: None,
        }
    }

    /// Creates a moving obstacle.
    #[must_use]
    pub fn moving(
        id: ObstacleId,
        class: ObstacleClass,
        pose: Pose2,
        velocity: (f64, f64),
        spawn_time: SimTime,
    ) -> Self {
        Self {
            id,
            class,
            initial_pose: pose,
            velocity,
            spawn_time,
            despawn_time: None,
        }
    }

    /// Sets the despawn time (builder-style).
    #[must_use]
    pub fn until(mut self, despawn_time: SimTime) -> Self {
        self.despawn_time = Some(despawn_time);
        self
    }

    /// Whether the obstacle exists at time `t`.
    #[must_use]
    pub fn is_active(&self, t: SimTime) -> bool {
        t >= self.spawn_time && self.despawn_time.is_none_or(|d| t < d)
    }

    /// Ground-truth pose at time `t` (constant-velocity extrapolation from
    /// spawn). Returns `None` if inactive.
    #[must_use]
    pub fn pose_at(&self, t: SimTime) -> Option<Pose2> {
        if !self.is_active(t) {
            return None;
        }
        let dt = t.since(self.spawn_time).as_secs_f64();
        Some(Pose2::new(
            self.initial_pose.x + self.velocity.0 * dt,
            self.initial_pose.y + self.velocity.1 * dt,
            self.initial_pose.theta,
        ))
    }

    /// Speed magnitude in m/s.
    #[must_use]
    pub fn speed(&self) -> f64 {
        (self.velocity.0.powi(2) + self.velocity.1.powi(2)).sqrt()
    }

    /// Collision-check radius (class footprint).
    #[must_use]
    pub fn radius_m(&self) -> f64 {
        self.class.radius_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sov_sim::time::SimDuration;

    #[test]
    fn static_obstacle_never_moves() {
        let o = Obstacle::fixed(
            ObstacleId(0),
            ObstacleClass::StaticObject,
            Pose2::new(5.0, 0.0, 0.0),
            SimTime::ZERO,
        );
        let later = SimTime::ZERO + SimDuration::from_secs(100);
        assert_eq!(o.pose_at(later).unwrap(), Pose2::new(5.0, 0.0, 0.0));
        assert_eq!(o.speed(), 0.0);
    }

    #[test]
    fn moving_obstacle_extrapolates() {
        let o = Obstacle::moving(
            ObstacleId(1),
            ObstacleClass::Pedestrian,
            Pose2::new(0.0, 0.0, 0.0),
            (1.0, -0.5),
            SimTime::from_millis(1000),
        );
        let t = SimTime::from_millis(3000);
        let p = o.pose_at(t).unwrap();
        assert!((p.x - 2.0).abs() < 1e-12);
        assert!((p.y + 1.0).abs() < 1e-12);
        assert!((o.speed() - (1.25f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn spawn_and_despawn_window() {
        let o = Obstacle::fixed(
            ObstacleId(2),
            ObstacleClass::Vehicle,
            Pose2::identity(),
            SimTime::from_millis(100),
        )
        .until(SimTime::from_millis(200));
        assert!(!o.is_active(SimTime::from_millis(50)));
        assert!(o.is_active(SimTime::from_millis(150)));
        assert!(!o.is_active(SimTime::from_millis(200)));
        assert!(o.pose_at(SimTime::from_millis(250)).is_none());
    }

    #[test]
    fn class_radii_ordering() {
        assert!(ObstacleClass::Vehicle.radius_m() > ObstacleClass::Pedestrian.radius_m());
        assert_eq!(format!("{}", ObstacleClass::Cyclist), "cyclist");
    }
}
