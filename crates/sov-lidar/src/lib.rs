//! LiDAR point-cloud substrate (Sec. III-D: the LiDAR-vs-camera case
//! study).
//!
//! The paper's argument for abandoning LiDAR rests on the *irregularity* of
//! point-cloud processing: sparse points arbitrarily spread across 3-D
//! space force irregular kernels (neighbor search) whose data-reuse pattern
//! varies wildly within and across clouds (Fig. 4a), defeating conventional
//! memory hierarchies and inflating off-chip traffic by orders of magnitude
//! over the all-reuse-captured optimum (Fig. 4b).
//!
//! To reproduce that argument we implement the four PCL workloads the paper
//! measures, from scratch:
//!
//! * [`cloud`] — point clouds and a synthetic street-scene generator (our
//!   stand-in for Velodyne captures).
//! * [`kdtree`] — a kd-tree with nearest-neighbor / radius queries, with an
//!   instrumented traversal that reports every node and point touched.
//! * [`registration`] — ICP **localization** (planar rigid alignment).
//! * [`recognition`] — normal estimation + keypoint matching.
//! * [`reconstruction`] — voxel-grid surface reconstruction.
//! * [`segmentation`] — Euclidean clustering.
//! * [`soa`] — the structure-of-arrays cloud layout that realizes the
//!   Fig. 4b traffic reduction (single-coordinate kernels read a third
//!   of the bytes; voxel binning becomes a sort of a compact key array).
//! * [`traffic`] — drives the four algorithms' memory-access streams
//!   through `sov-platform`'s LLC model to regenerate Fig. 4a/4b.
//!
//! # Example
//!
//! ```
//! use sov_lidar::cloud::PointCloud;
//! use sov_lidar::kdtree::KdTree;
//! use sov_math::SovRng;
//!
//! let mut rng = SovRng::seed_from_u64(1);
//! let cloud = PointCloud::synthetic_street_scene(500, 0, &mut rng);
//! let tree = KdTree::build(&cloud);
//! let (idx, _) = tree.nearest(&[0.0, 0.0, 0.0]).unwrap();
//! assert!(idx < cloud.len());
//! ```

#![deny(missing_docs)]

pub mod cloud;
pub mod kdtree;
pub mod recognition;
pub mod reconstruction;
pub mod registration;
pub mod segmentation;
pub mod soa;
pub mod traffic;

pub use cloud::PointCloud;
pub use kdtree::KdTree;
pub use soa::PointCloudSoA;
