//! Per-frame reusable buffers for the drive loop's hot path.
//!
//! Re-export of [`sov_runtime::arena`]; see that module for the design.
//! `Sov::drive_with_plan` threads a [`FrameArena`] through every control
//! tick so the steady-state obstacle/detection buffers never re-allocate.

pub use sov_runtime::arena::{ArenaStats, FrameArena};
