//! Rigid transforms: planar poses ([`Pose2`]) and spatial poses ([`Pose3`]).
//!
//! The vehicle in the paper maneuvers at lane granularity on a locally planar
//! road network, so most of the workspace reasons in [`Pose2`]. [`Pose3`] is
//! used where full attitude matters (IMU propagation, camera extrinsics).

use crate::angle;
use crate::matrix::Vector;
use crate::quaternion::Quaternion;

/// A planar rigid pose `(x, y, θ)` in meters / radians.
///
/// # Example
///
/// ```
/// use sov_math::Pose2;
///
/// let origin = Pose2::new(1.0, 2.0, std::f64::consts::FRAC_PI_2);
/// let p = origin.transform_point(1.0, 0.0); // one meter "forward"
/// assert!((p.0 - 1.0).abs() < 1e-12);
/// assert!((p.1 - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose2 {
    /// X position (m).
    pub x: f64,
    /// Y position (m).
    pub y: f64,
    /// Heading (rad), wrapped to `(-π, π]`.
    pub theta: f64,
}

impl Pose2 {
    /// Creates a pose, wrapping the heading.
    #[must_use]
    pub fn new(x: f64, y: f64, theta: f64) -> Self {
        Self {
            x,
            y,
            theta: angle::wrap(theta),
        }
    }

    /// The identity pose at the origin.
    #[must_use]
    pub fn identity() -> Self {
        Self::default()
    }

    /// Euclidean distance between the positions of two poses.
    #[must_use]
    pub fn distance(&self, other: &Self) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Transforms a point from this pose's local frame into the world frame.
    #[must_use]
    pub fn transform_point(&self, lx: f64, ly: f64) -> (f64, f64) {
        let (s, c) = self.theta.sin_cos();
        (self.x + c * lx - s * ly, self.y + s * lx + c * ly)
    }

    /// Transforms a world-frame point into this pose's local frame.
    #[must_use]
    pub fn inverse_transform_point(&self, wx: f64, wy: f64) -> (f64, f64) {
        let (s, c) = self.theta.sin_cos();
        let dx = wx - self.x;
        let dy = wy - self.y;
        (c * dx + s * dy, -s * dx + c * dy)
    }

    /// Composes two poses: applies `other` in this pose's local frame.
    #[must_use]
    pub fn compose(&self, other: &Self) -> Self {
        let (x, y) = self.transform_point(other.x, other.y);
        Self::new(x, y, self.theta + other.theta)
    }

    /// The inverse pose such that `p.compose(&p.inverse()) == identity`.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let (s, c) = self.theta.sin_cos();
        Self::new(
            -(c * self.x + s * self.y),
            s * self.x - c * self.y,
            -self.theta,
        )
    }

    /// The relative pose taking `self` to `other` (`self⁻¹ ∘ other`).
    #[must_use]
    pub fn between(&self, other: &Self) -> Self {
        self.inverse().compose(other)
    }

    /// Advances the pose along a unicycle model with forward speed `v` (m/s)
    /// and yaw rate `omega` (rad/s) for `dt` seconds.
    ///
    /// Uses the exact arc solution rather than Euler integration, so the
    /// result is accurate for large `dt`.
    #[must_use]
    pub fn step_unicycle(&self, v: f64, omega: f64, dt: f64) -> Self {
        if omega.abs() < 1e-9 {
            let (s, c) = self.theta.sin_cos();
            Self::new(self.x + v * c * dt, self.y + v * s * dt, self.theta)
        } else {
            let r = v / omega;
            let theta_next = self.theta + omega * dt;
            Self::new(
                self.x + r * (theta_next.sin() - self.theta.sin()),
                self.y - r * (theta_next.cos() - self.theta.cos()),
                theta_next,
            )
        }
    }

    /// Heading unit vector `(cos θ, sin θ)`.
    #[must_use]
    pub fn heading_vector(&self) -> (f64, f64) {
        let (s, c) = self.theta.sin_cos();
        (c, s)
    }
}

/// A spatial rigid pose: rotation (unit quaternion) plus translation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose3 {
    /// Attitude (body → world rotation).
    pub rotation: Quaternion,
    /// Position in the world frame (m).
    pub translation: Vector<3>,
}

impl Pose3 {
    /// Creates a pose from rotation and translation.
    #[must_use]
    pub fn new(rotation: Quaternion, translation: Vector<3>) -> Self {
        Self {
            rotation,
            translation,
        }
    }

    /// The identity pose.
    #[must_use]
    pub fn identity() -> Self {
        Self::default()
    }

    /// Lifts a planar pose into 3-D (z = 0, roll = pitch = 0).
    #[must_use]
    pub fn from_pose2(p: &Pose2) -> Self {
        Self {
            rotation: Quaternion::from_yaw(p.theta),
            translation: Vector::from_array([p.x, p.y, 0.0]),
        }
    }

    /// Projects onto the ground plane as a planar pose.
    #[must_use]
    pub fn to_pose2(&self) -> Pose2 {
        Pose2::new(
            self.translation[0],
            self.translation[1],
            self.rotation.yaw(),
        )
    }

    /// Transforms a body-frame point to the world frame.
    #[must_use]
    pub fn transform_point(&self, p: &Vector<3>) -> Vector<3> {
        self.rotation.rotate(p) + self.translation
    }

    /// Transforms a world-frame point to the body frame.
    #[must_use]
    pub fn inverse_transform_point(&self, p: &Vector<3>) -> Vector<3> {
        self.rotation.conjugate().rotate(&(*p - self.translation))
    }

    /// Composes with another pose expressed in this pose's frame.
    #[must_use]
    pub fn compose(&self, other: &Self) -> Self {
        Self {
            rotation: self.rotation.mul(&other.rotation).normalize(),
            translation: self.transform_point(&other.translation),
        }
    }

    /// The inverse pose.
    #[must_use]
    pub fn inverse(&self) -> Self {
        let inv_rot = self.rotation.conjugate();
        Self {
            rotation: inv_rot,
            translation: inv_rot.rotate(&self.translation).scale(-1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn pose2_compose_inverse_is_identity() {
        let p = Pose2::new(3.0, -2.0, 0.8);
        let id = p.compose(&p.inverse());
        assert!(id.x.abs() < 1e-12 && id.y.abs() < 1e-12 && id.theta.abs() < 1e-12);
    }

    #[test]
    fn pose2_between_recovers_relative() {
        let a = Pose2::new(1.0, 1.0, 0.3);
        let rel = Pose2::new(2.0, 0.5, -0.2);
        let b = a.compose(&rel);
        let recovered = a.between(&b);
        assert!((recovered.x - rel.x).abs() < 1e-12);
        assert!((recovered.y - rel.y).abs() < 1e-12);
        assert!((recovered.theta - rel.theta).abs() < 1e-12);
    }

    #[test]
    fn transform_point_roundtrip() {
        let p = Pose2::new(5.0, -1.0, 1.1);
        let (wx, wy) = p.transform_point(2.0, 3.0);
        let (lx, ly) = p.inverse_transform_point(wx, wy);
        assert!((lx - 2.0).abs() < 1e-12 && (ly - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unicycle_straight_line() {
        let p = Pose2::new(0.0, 0.0, 0.0).step_unicycle(5.6, 0.0, 2.0);
        assert!((p.x - 11.2).abs() < 1e-12);
        assert!(p.y.abs() < 1e-12);
    }

    #[test]
    fn unicycle_quarter_circle() {
        // v = r·ω: a quarter turn of radius 10.
        let r = 10.0;
        let omega = 0.5;
        let dt = FRAC_PI_2 / omega;
        let p = Pose2::new(0.0, 0.0, 0.0).step_unicycle(r * omega, omega, dt);
        assert!((p.x - r).abs() < 1e-9);
        assert!((p.y - r).abs() < 1e-9);
        assert!((p.theta - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn pose3_roundtrip_through_pose2() {
        let p2 = Pose2::new(1.5, -0.5, 0.7);
        let p3 = Pose3::from_pose2(&p2);
        let back = p3.to_pose2();
        assert!((back.x - p2.x).abs() < 1e-12);
        assert!((back.theta - p2.theta).abs() < 1e-12);
    }

    #[test]
    fn pose3_compose_inverse() {
        let p = Pose3::new(
            Quaternion::from_axis_angle([0.1, 0.9, 0.3], 0.6),
            Vector::from_array([1.0, 2.0, 3.0]),
        );
        let id = p.compose(&p.inverse());
        assert!(id.translation.norm() < 1e-12);
        assert!((id.rotation.w.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pose3_point_roundtrip() {
        let p = Pose3::new(
            Quaternion::from_axis_angle([0.0, 0.0, 1.0], 0.4),
            Vector::from_array([-2.0, 1.0, 0.5]),
        );
        let pt = Vector::from_array([3.0, -1.0, 2.0]);
        let back = p.inverse_transform_point(&p.transform_point(&pt));
        assert!(back.approx_eq(&pt, 1e-12));
    }
}
