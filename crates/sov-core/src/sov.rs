//! The closed-loop Systems-on-a-Vehicle.
//!
//! [`Sov::drive`] runs a complete vehicle through a deployment scenario at
//! the 10 Hz control rate:
//!
//! * the **proactive path** — camera/VIO/GPS fusion → detection + radar
//!   tracking → MPC planning — produces control commands that reach the ECU
//!   only after the frame's sampled computing latency plus the CAN-bus
//!   delay (the full Fig. 2 chain), and
//! * the **reactive path** — radar/sonar minimum range fed straight into
//!   the ECU — overrides the actuator whenever an object gets inside the
//!   4.1 m envelope (Sec. IV), which is what keeps the vehicle safe when
//!   the proactive path is too slow or the detector misses an object.
//!
//! The report records how the drive went and the latency/engagement
//! statistics the paper quotes ("our deployed vehicles stay in the
//! proactive path for over 90% of the time").
//!
//! [`Sov::drive_with_plan`] additionally injects a [`FaultPlan`] —
//! camera stalls, GPS outages, ghost radar returns, CAN losses, compute
//! overruns — and a [`HealthMonitor`](crate::health::HealthMonitor)
//! degrades the vehicle through the modes of
//! [`DegradationMode`](crate::health::DegradationMode) instead of letting
//! a silent sensor drive the vehicle into an obstacle.

use crate::config::VehicleConfig;
use crate::health::{DegradationMode, HealthConfig, HealthMonitor};
use crate::pipeline::LatencyPipeline;
use crate::pool::PerfContext;
use crate::safety::{SafetyChecker, SafetyConfig, SafetyReport};
use crate::tail::{DeadlineMonitor, TailReport};
use crate::FrameArena;
use sov_fault::{FaultKind, FaultPlan};
use sov_math::stats::Summary;
use sov_math::{angle, SovRng};
use sov_perception::detection::{Detection, Detector, DetectorProfile};
use sov_perception::frontend::{EgoMotionRequest, FrontEnd, FrontEndOutput};
use sov_perception::fusion::{FixOutcome, FusionConfig, GpsVioFusion};
use sov_perception::vio::{VioConfig, VioFilter};
use sov_planning::mpc::MpcPlanner;
use sov_planning::{Planner, PlanningInput, PlanningObstacle};
use sov_runtime::ledger::{FrameSample, LatencyLedger, StageSample};
use sov_runtime::queue::{ring, RingReceiver, RingSender};
use sov_runtime::LaneOccupancy;
use sov_sensors::camera::{Camera, CameraFrame, Intrinsics, StereoRig};
use sov_sensors::gps::{GnssQuality, GpsConfig, GpsReceiver};
use sov_sensors::radar::RadarArray;
use sov_sensors::sonar::SonarArray;
use sov_sensors::sync::Synchronizer;
use sov_sim::time::{SimDuration, SimTime};
use sov_vehicle::battery::Battery;
use sov_vehicle::dynamics::{ControlCommand, VehicleState};
use sov_vehicle::ecu::Ecu;
use sov_world::obstacle::{ObstacleClass, ObstacleId};
use sov_world::scenario::{Scenario, World};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// How a drive ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriveOutcome {
    /// The route was completed or the frame budget expired while moving.
    Completed,
    /// The vehicle ended the run stationary (e.g. held by the reactive
    /// override or a blocked lane).
    Stopped,
    /// Ground-truth contact with an obstacle — a safety failure.
    Collision,
}

/// Errors starting a drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SovError {
    /// `max_frames` was zero.
    NoFrames,
}

impl fmt::Display for SovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoFrames => write!(f, "drive requires at least one frame"),
        }
    }
}

impl std::error::Error for SovError {}

/// Statistics of one drive.
///
/// `PartialEq` is exact (bitwise on every float) over every *simulated*
/// field: the determinism tests assert that a pool-enabled drive produces
/// a report identical to the serial drive. The [`tail`](Self::tail)
/// breakdown is excluded — it is wall-clock telemetry and legitimately
/// differs between schedules.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// Outcome.
    pub outcome: DriveOutcome,
    /// Control frames executed.
    pub frames: u64,
    /// Ground-truth distance covered (m).
    pub distance_m: f64,
    /// Number of reactive-override engagements.
    pub override_engagements: u64,
    /// Control ticks during which the override was engaged.
    pub override_ticks: u64,
    /// Computing latencies `T_comp` per frame (ms).
    pub computing: Summary,
    /// Closest ground-truth gap to any obstacle observed (m).
    pub min_obstacle_gap_m: f64,
    /// Energy drawn from the battery (kWh).
    pub energy_used_kwh: f64,
    /// Final localization error of the fused estimate (m).
    pub final_localization_error_m: f64,
    /// Mean ground-truth cross-track error against the route (m).
    pub mean_cross_track_error_m: f64,
    /// Control ticks spent in each degradation mode, indexed like
    /// [`DegradationMode::ALL`].
    pub mode_ticks: [u64; 4],
    /// Degradation-mode transitions taken during the drive.
    pub mode_transitions: u64,
    /// Completed recoveries back to [`DegradationMode::Nominal`], in ms
    /// from the first downgrade to re-entering nominal.
    pub recovery_ms: Summary,
    /// Control frames whose computing latency missed the health deadline.
    pub deadline_misses: u64,
    /// Planner→ECU command frames lost to CAN fault injection.
    pub can_frames_lost: u64,
    /// Camera frames deliberately shed by the deadline monitor's
    /// escalation step ([`sov_runtime::ledger::TailPolicy::shed`]).
    /// Simulated (deterministic per seed + policy), so it *is* part of
    /// report equality.
    pub frames_shed: u64,
    /// Per-tick safety-invariant outcome (no-collision, min-gap,
    /// SafeStop-reachability against ground truth; see
    /// [`crate::safety`]).
    pub safety: SafetyReport,
    /// Wall-clock tail-latency breakdown from the drive's
    /// [`LatencyLedger`]: end-to-end control-path latency split into
    /// compute / queue / stall at p50/p99/p99.9/max, plus per-lane
    /// summaries and the tail-policy counters. **Excluded from
    /// `PartialEq`.**
    pub tail: TailReport,
}

impl PartialEq for DriveReport {
    fn eq(&self, other: &Self) -> bool {
        // Every simulated field, bitwise; `tail` deliberately excluded
        // (wall-clock telemetry — the asymmetry it measures is real).
        self.outcome == other.outcome
            && self.frames == other.frames
            && self.distance_m == other.distance_m
            && self.override_engagements == other.override_engagements
            && self.override_ticks == other.override_ticks
            && self.computing == other.computing
            && self.min_obstacle_gap_m == other.min_obstacle_gap_m
            && self.energy_used_kwh == other.energy_used_kwh
            && self.final_localization_error_m == other.final_localization_error_m
            && self.mean_cross_track_error_m == other.mean_cross_track_error_m
            && self.mode_ticks == other.mode_ticks
            && self.mode_transitions == other.mode_transitions
            && self.recovery_ms == other.recovery_ms
            && self.deadline_misses == other.deadline_misses
            && self.can_frames_lost == other.can_frames_lost
            && self.frames_shed == other.frames_shed
            && self.safety == other.safety
    }
}

impl DriveReport {
    /// Fraction of control ticks spent on the proactive path.
    #[must_use]
    pub fn proactive_fraction(&self) -> f64 {
        if self.frames == 0 {
            return 1.0;
        }
        1.0 - self.override_ticks as f64 / self.frames as f64
    }

    /// Fraction of control ticks spent in `mode`.
    #[must_use]
    pub fn mode_fraction(&self, mode: DegradationMode) -> f64 {
        if self.frames == 0 {
            return if mode == DegradationMode::Nominal {
                1.0
            } else {
                0.0
            };
        }
        self.mode_ticks[mode as usize] as f64 / self.frames as f64
    }
}

/// The complete on-vehicle system.
#[derive(Debug)]
pub struct Sov {
    config: VehicleConfig,
    planner: MpcPlanner,
    detector: Detector,
    camera: Camera,
    radars: RadarArray,
    sonars: SonarArray,
    gps: GpsReceiver,
    latency: LatencyPipeline,
    synchronizer: Synchronizer,
    rng: SovRng,
    /// Intra-frame parallelism + per-frame buffer reuse. Defaults to
    /// serial; never affects any computed value (determinism invariant).
    perf: PerfContext,
}

impl Sov {
    /// Builds an SoV for the given configuration and seed.
    #[must_use]
    pub fn new(config: VehicleConfig, seed: u64) -> Self {
        Self {
            planner: MpcPlanner::new(config.mpc),
            detector: Detector::new(DetectorProfile::matched(), seed),
            camera: Camera::new(Intrinsics::hd1080(), 0.0, 1.2, 60.0, 0.5)
                .expect("valid camera constants"),
            radars: RadarArray::perceptin_six(config.radar, seed),
            sonars: SonarArray::perceptin_eight(config.sonar, seed),
            gps: GpsReceiver::new(GpsConfig::default(), seed),
            latency: LatencyPipeline::new(&config, seed),
            synchronizer: Synchronizer::new(config.sync_strategy, config.sync_config.clone()),
            rng: SovRng::seed_from_u64(seed ^ 0x534F56),
            perf: PerfContext::default(),
            config,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &VehicleConfig {
        &self.config
    }

    /// Installs an intra-frame performance context (worker pool + frame
    /// arena). A pool-enabled drive is bit-identical to a serial one —
    /// the pool only changes who computes, never what.
    pub fn set_perf(&mut self, perf: PerfContext) {
        self.perf = perf;
    }

    /// The active performance context (e.g. to inspect
    /// [`ArenaStats`](crate::arena::ArenaStats) after a drive).
    #[must_use]
    pub fn perf(&self) -> &PerfContext {
        &self.perf
    }

    /// Mutable access to the detector, e.g. to deploy a newly trained model
    /// from the cloud (Sec. II-B) or to inject a degraded model in failure
    /// studies.
    pub fn detector_mut(&mut self) -> &mut Detector {
        &mut self.detector
    }

    /// Drives the scenario for up to `max_frames` control frames with no
    /// injected faults.
    ///
    /// # Errors
    ///
    /// Returns [`SovError::NoFrames`] if `max_frames == 0`.
    pub fn drive(&mut self, scenario: &Scenario, max_frames: u64) -> Result<DriveReport, SovError> {
        self.drive_with_plan(scenario, max_frames, &FaultPlan::nominal())
    }

    /// Drives the scenario while injecting the faults scheduled in
    /// `faults`. The health monitor watches every sensor feed and the
    /// computing deadline, and degrades the vehicle (`Nominal →
    /// DegradedLocalization → ReactiveOnly → SafeStop`) rather than let a
    /// dead input steer it; recovery is automatic once the inputs return.
    /// Driving under [`FaultPlan::nominal`] is exactly [`Sov::drive`].
    ///
    /// # Errors
    ///
    /// Returns [`SovError::NoFrames`] if `max_frames == 0`.
    /// When the installed [`PerfContext`] carries `pipeline_depth > 1` and
    /// a pool with at least three lanes, the drive runs on the inter-frame
    /// pipeline: the stereo/VIO visual front-end executes on a sensing
    /// lane (with four or more pool lanes; on the sequencer otherwise),
    /// detection on a perception lane, and MPC planning on a planning lane
    /// — the full three-deep overlap of Fig. 5, with up to `depth` frames
    /// in flight per stage. The sequencer on the calling thread commits
    /// every result in frame order, so the resulting [`DriveReport`] is
    /// **byte-identical** to the serial drive for every depth and worker
    /// count (see [`PipedLanes`] and [`FrontEndRoute`] for the
    /// commit-equivalence argument); a degraded tick drains the pipeline
    /// and serializes until the vehicle recovers to nominal.
    pub fn drive_with_plan(
        &mut self,
        scenario: &Scenario,
        max_frames: u64,
        faults: &FaultPlan,
    ) -> Result<DriveReport, SovError> {
        if max_frames == 0 {
            return Err(SovError::NoFrames);
        }
        let Sov {
            config,
            planner,
            detector,
            camera,
            radars,
            sonars,
            gps,
            latency,
            synchronizer,
            rng,
            perf,
        } = self;
        let perf: &PerfContext = perf;
        // The single pipelining gate: piped mode without a pool (or with
        // fewer than three lanes) normalizes to the serial schedule
        // instead of paying ring overhead with no overlap.
        let depth = perf.effective_pipeline_depth();
        let piped = depth > 1;
        // The visual front-end draws its seed first — before any camera
        // event — on every schedule, preserving the main RNG sequence.
        let frontend = FrontEnd::new(
            rng.next_u64(),
            camera.intrinsics().fx,
            StereoRig::perceptin_default().baseline_m(),
        );
        let env = DriveEnv {
            config,
            camera,
            radars,
            sonars,
            gps,
            latency,
            synchronizer,
            rng,
            perf,
            scenario,
            max_frames,
            faults,
        };
        if !piped {
            return Ok(drive_loop(
                env,
                StageLanes::Inline {
                    detector,
                    planner,
                    frontend,
                },
            ));
        }
        let pool = Arc::clone(perf.pool.as_ref().expect("piped implies a pool"));
        // A fourth lane hosts the visual front-end; with exactly three
        // lanes it stays on the sequencer (still bit-identical — the
        // route only moves *where* `FrontEnd::process` runs).
        let frontend_lane = pool.lanes() >= 4;
        let world = &scenario.world;
        let occupancy = Arc::clone(&perf.occupancy);
        occupancy.reset();
        // Job rings are bounded by the pipeline depth — a full ring is the
        // back-pressure that keeps a stage at most `depth` frames ahead.
        // Done rings hold `2·depth + 4`: with the sensing lane chained in
        // front of the perception lane, up to `depth` frames can sit in
        // each job ring plus one in each lane's hands (`2·depth + 2`
        // total), so this capacity guarantees a lane can always deposit a
        // result without blocking — which is what lets the sequencer
        // block-drain any single done ring without deadlocking the chain.
        let (det_tx, det_job_rx) = ring::<DetJob>(depth);
        let (det_done_tx, det_rx) = ring::<DetDone>(2 * depth + 4);
        let (plan_tx, plan_job_rx) = ring::<PlanJob>(depth);
        let (plan_done_tx, plan_rx) = ring::<PlanDone>(2 * depth + 4);
        let mut stages: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
        let fe_route = if frontend_lane {
            let (fe_tx, fe_job_rx) = ring::<FeJob>(depth);
            let (fe_done_tx, fe_rx) = ring::<FeDone>(2 * depth + 4);
            let occ = Arc::clone(&occupancy);
            let mut frontend = frontend;
            // Sensing lane: owns the visual front-end state. Frames arrive
            // in capture order, the output goes back to the sequencer, and
            // the frame itself is forwarded (not copied) to the perception
            // lane — the FIFO chain preserves the serial frame order end
            // to end.
            stages.push(Box::new(move || {
                while let Some(FeJob {
                    frame,
                    out,
                    req,
                    k,
                    t0,
                }) = fe_job_rx.recv()
                {
                    let t1 = Instant::now();
                    let product = frontend.process(&frame, req.as_ref());
                    let t2 = Instant::now();
                    occ.record(LaneOccupancy::SENSING, t2 - t1);
                    if fe_done_tx
                        .send(FeDone {
                            out: product,
                            k,
                            t0,
                            t1,
                            t2,
                        })
                        .is_err()
                    {
                        break;
                    }
                    // The perception stage's queue clock starts when
                    // sensing hands the frame off.
                    if det_tx
                        .send(DetJob {
                            frame,
                            out,
                            k,
                            t0: t2,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            }));
            FrontEndRoute::Lane {
                fe_tx,
                fe_rx,
                inflight: 0,
            }
        } else {
            FrontEndRoute::Sequencer { frontend, det_tx }
        };
        // Perception lane: owns the detector. Jobs arrive in camera-frame
        // order, so the detector's internal RNG consumes draws in exactly
        // the serial sequence.
        let occ = Arc::clone(&occupancy);
        stages.push(Box::new(move || {
            while let Some(DetJob {
                frame,
                mut out,
                k,
                t0,
            }) = det_job_rx.recv()
            {
                let t1 = Instant::now();
                detector.detect_into(&frame, |id| true_class_of(world, id), &mut out);
                let t2 = Instant::now();
                occ.record(LaneOccupancy::PERCEPTION, t2 - t1);
                if det_done_tx.send(DetDone { out, k, t0, t1, t2 }).is_err() {
                    break;
                }
            }
        }));
        // Planning lane: owns the MPC planner, consumes planning inputs in
        // control-tick order.
        let occ = Arc::clone(&occupancy);
        stages.push(Box::new(move || {
            while let Some(PlanJob { input }) = plan_job_rx.recv() {
                let t1 = Instant::now();
                let plan = planner.plan(&input);
                let t2 = Instant::now();
                occ.record(LaneOccupancy::PLANNING, t2 - t1);
                let PlanningInput { obstacles, .. } = input;
                if plan_done_tx
                    .send(PlanDone {
                        command: plan.command,
                        obstacles,
                        t1,
                        t2,
                    })
                    .is_err()
                {
                    break;
                }
            }
        }));
        let started = Instant::now();
        // Fusion + sequencing stay on the calling thread.
        let report = pool.run_lanes(stages, move || {
            drive_loop(
                env,
                StageLanes::Piped(PipedLanes {
                    frontend: fe_route,
                    det_rx,
                    det_inflight: 0,
                    det_free: Vec::new(),
                    plan_tx,
                    plan_rx,
                    pending: VecDeque::new(),
                    sync_mode: false,
                }),
            )
        });
        occupancy.set_wall(started.elapsed());
        Ok(report)
    }
}

/// Ground-truth class lookup shared by the inline and piped detection
/// paths — it must be the *same* function on both for bit-identity.
fn true_class_of(world: &World, id: ObstacleId) -> ObstacleClass {
    world
        .obstacles
        .iter()
        .find(|o| o.id == id)
        .map_or(ObstacleClass::StaticObject, |o| o.class)
}

/// A camera frame headed to the sensing lane (visual front-end), carrying
/// the detection buffer it will forward to the perception lane and the
/// sequencer-computed ego-motion request.
struct FeJob {
    frame: CameraFrame,
    out: Vec<Detection>,
    req: Option<EgoMotionRequest>,
    /// Camera-frame sequence number, for ledger attribution.
    k: u64,
    /// Dispatch (ring queue-in) stamp.
    t0: Instant,
}

/// The front-end product coming back from the sensing lane. The stamps
/// (`Copy`, like the output) let the sequencer attribute the frame's
/// sensing span without any shared state.
struct FeDone {
    out: FrontEndOutput,
    k: u64,
    /// Dispatch stamp, forwarded from the job.
    t0: Instant,
    /// Compute start on the sensing lane.
    t1: Instant,
    /// Compute end on the sensing lane.
    t2: Instant,
}

/// A camera frame headed to the perception lane plus a reusable output
/// buffer for its detections (buffers circulate: main free-list → lane →
/// back, so steady-state camera frames allocate no detection storage).
struct DetJob {
    frame: CameraFrame,
    out: Vec<Detection>,
    k: u64,
    /// Queue-in stamp (dispatch time; sensing-lane hand-off time when the
    /// front-end runs on its own lane).
    t0: Instant,
}

/// Finished detections coming back from the perception lane.
struct DetDone {
    out: Vec<Detection>,
    k: u64,
    t0: Instant,
    /// Compute start on the perception lane.
    t1: Instant,
    /// Compute end on the perception lane.
    t2: Instant,
}

/// A planning input headed to the planning lane (the dispatch stamp rides
/// in the sequencer-side [`PlanMeta`]).
struct PlanJob {
    input: PlanningInput,
}

/// A finished plan: the command plus the obstacle buffer, returned for
/// recycling into the frame arena.
struct PlanDone {
    command: ControlCommand,
    obstacles: Vec<PlanningObstacle>,
    /// Compute start on the planning lane.
    t1: Instant,
    /// Compute end on the planning lane.
    t2: Instant,
}

/// Sequencing metadata the main thread records when it dispatches a plan.
struct PlanMeta {
    /// When the command reaches the ECU (tick time + computing + CAN).
    arrival: SimTime,
    /// Whether the serial schedule would have offered this command to the
    /// ECU at all (CAN frame not lost, override not engaged at dispatch).
    accept: bool,
    /// `ecu.overrides_engaged_count()` at dispatch; any increase by commit
    /// time means the serial schedule would have flushed the command.
    engage_count: u64,
    /// Control-frame index, for ledger attribution.
    frame: u64,
    /// Dispatch (queue-in) stamp.
    t0: Instant,
    /// Whether this tick planned under a degraded mode (ledger tag).
    degraded: bool,
}

/// The pipelined stage endpoints owned by the event loop (sequencer side).
///
/// # Why deferred commits are exactly serial-equivalent
///
/// The serial schedule calls `ecu.accept_command(cmd, arrival)` at the
/// control tick. The pipelined sequencer calls it later — when the
/// planning lane's result comes back — with the *same* `arrival`, subject
/// to three rules that make the deferral unobservable:
///
/// 1. **Frame order.** Plans commit strictly FIFO, so the ECU's pending
///    queue always holds commands in the serial order.
/// 2. **Arrival barrier.** Before each event iteration advances physics to
///    `t`, every in-flight plan with `arrival <= t` is committed
///    (blocking). A command matures at `arrival + t_mech`, so it can never
///    be promoted by `Ecu::actuation` before it is committed, and a
///    command still in flight (`arrival > t`) could not have matured in
///    the serial schedule either.
/// 3. **Override gate.** `accept` snapshots the override state at
///    dispatch (serial-time ignore), and the commit is skipped if
///    `overrides_engaged_count` increased since dispatch — exactly the
///    commands the serial schedule's engage-flush (`pending.clear()`)
///    would have removed, because an engagement while a command sits
///    unmatured in the serial ECU queue flushes it, and rule 2 rules out
///    the command having matured before any such engagement.
///
/// Eager early commits (absorbing results as they finish) are equally
/// safe: between the serial accept time and the eager commit time the
/// command cannot mature (rule 2) and cannot change other promotions (the
/// ECU promotes FIFO from the front, and all earlier commands are already
/// committed by rule 1), so wall-clock timing never affects the drive.
struct PipedLanes {
    /// Where the visual front-end runs (see [`FrontEndRoute`]).
    frontend: FrontEndRoute,
    det_rx: RingReceiver<DetDone>,
    /// Camera jobs dispatched but not yet absorbed.
    det_inflight: usize,
    /// Detection buffers awaiting reuse (capacity-only scratch).
    det_free: Vec<Vec<Detection>>,
    plan_tx: RingSender<PlanJob>,
    plan_rx: RingReceiver<PlanDone>,
    /// Per-in-flight-plan sequencing metadata, in dispatch (frame) order.
    pending: VecDeque<PlanMeta>,
    /// Degraded operation: every dispatch commits immediately, i.e. the
    /// pipeline is serialized without reordering anything.
    sync_mode: bool,
}

/// Where the visual front-end stage executes on a piped drive.
///
/// # Why lane placement cannot change the drive
///
/// `FrontEnd::process` is the only mutator of the front-end's state and
/// the only consumer of its RNG. Both routes run the *same* calls on the
/// *same* frames in the *same* (capture) order — the lane route merely
/// defers the `VioFilter` update from dispatch to absorb time. That
/// deferral is unobservable because the VIO estimate is only *read* by
/// two event kinds — GPS fix ingestion and the control tick's fused
/// position — and both block-drain the sensing lane first
/// ([`StageLanes::sync_frontend`]); every other event neither reads nor
/// writes VIO state, so absorbing outputs early or late between those
/// barriers commutes.
#[allow(clippy::large_enum_variant)] // one of the two exists per drive
enum FrontEndRoute {
    /// Three-lane pools: the front-end runs on the sequencing thread at
    /// dispatch, exactly like the serial schedule, and detection jobs go
    /// straight to the perception lane.
    Sequencer {
        frontend: FrontEnd,
        det_tx: RingSender<DetJob>,
    },
    /// Four-lane pools: the sensing lane owns the front-end *and* the
    /// perception lane's job ring — each frame is processed, its output
    /// sent back, and the frame forwarded onward without a copy.
    Lane {
        fe_tx: RingSender<FeJob>,
        fe_rx: RingReceiver<FeDone>,
        /// Frames sent to the sensing lane whose outputs have not been
        /// absorbed yet.
        inflight: usize,
    },
}

/// Applies a front-end product to the VIO filter — the single commit
/// point shared by every route, serial or piped.
fn apply_frontend_output(out: &FrontEndOutput, vio: &mut VioFilter) {
    if let Some(delta) = &out.delta {
        vio.visual_update(delta);
    }
}

/// Stall attributed to a blocking absorb: the time the sequencer spent
/// blocked (since `t_r`, the pre-recv stamp) *past* the producing lane's
/// compute end `t2`. A result that was already waiting stalls nothing.
fn stall_past(t_r: Instant, t2: Instant, t3: Instant) -> u64 {
    t3.saturating_duration_since(if t_r > t2 { t_r } else { t2 })
        .as_nanos() as u64
}

impl PipedLanes {
    /// Dispatches one camera frame to the front-end and detector stages.
    #[allow(clippy::too_many_arguments)]
    fn dispatch_camera(
        &mut self,
        frame: CameraFrame,
        req: Option<EgoMotionRequest>,
        k: u64,
        vio: &mut VioFilter,
        last: &mut Vec<Detection>,
        arena: &FrameArena,
        led: &LatencyLedger,
    ) {
        let out = self.det_free.pop().unwrap_or_else(|| arena.take());
        self.det_inflight += 1;
        match &mut self.frontend {
            FrontEndRoute::Sequencer { frontend, det_tx } => {
                let t0 = Instant::now();
                let product = frontend.process(&frame, req.as_ref());
                apply_frontend_output(&product, vio);
                let t2 = Instant::now();
                // Inline on the sequencer: pure compute, no queue/stall.
                led.record_stage(StageSample::from_stamps(
                    LaneOccupancy::SENSING,
                    k,
                    t0,
                    t0,
                    t2,
                    t2,
                    0,
                ));
                det_tx
                    .send(DetJob {
                        frame,
                        out,
                        k,
                        t0: t2,
                    })
                    .unwrap_or_else(|_| unreachable!("perception lane outlives the drive"));
            }
            FrontEndRoute::Lane {
                fe_tx, inflight, ..
            } => {
                *inflight += 1;
                let t0 = Instant::now();
                fe_tx
                    .send(FeJob {
                        frame,
                        out,
                        req,
                        k,
                        t0,
                    })
                    .unwrap_or_else(|_| unreachable!("sensing lane outlives the drive"));
            }
        }
        if self.sync_mode {
            self.sync_frontend(vio, led);
            self.sync_detections(last, led);
        }
    }

    /// Absorbs every finished front-end output without blocking (FIFO, so
    /// the VIO filter consumes increments in capture order).
    fn absorb_ready_frontend(&mut self, vio: &mut VioFilter, led: &LatencyLedger) {
        if let FrontEndRoute::Lane {
            fe_rx, inflight, ..
        } = &mut self.frontend
        {
            while *inflight > 0 {
                match fe_rx.try_recv() {
                    Some(done) => {
                        *inflight -= 1;
                        apply_frontend_output(&done.out, vio);
                        let t3 = Instant::now();
                        led.record_stage(StageSample::from_stamps(
                            LaneOccupancy::SENSING,
                            done.k,
                            done.t0,
                            done.t1,
                            done.t2,
                            t3,
                            0,
                        ));
                    }
                    None => break,
                }
            }
        }
    }

    /// Blocks until every dispatched frame's front-end output has been
    /// applied to the VIO filter — after this, the filter holds exactly
    /// the serial visual-update state.
    fn sync_frontend(&mut self, vio: &mut VioFilter, led: &LatencyLedger) {
        if let FrontEndRoute::Lane {
            fe_rx, inflight, ..
        } = &mut self.frontend
        {
            while *inflight > 0 {
                let t_r = Instant::now();
                let done = fe_rx.recv().expect("sensing lane alive");
                *inflight -= 1;
                apply_frontend_output(&done.out, vio);
                let t3 = Instant::now();
                led.record_stage(StageSample::from_stamps(
                    LaneOccupancy::SENSING,
                    done.k,
                    done.t0,
                    done.t1,
                    done.t2,
                    t3,
                    stall_past(t_r, done.t2, t3),
                ));
            }
        }
    }
    /// Commits the next in-flight plan (FIFO) under the equivalence rules.
    /// `stall` is the barrier time the sequencer spent blocked waiting for
    /// this result (zero when it was absorbed opportunistically); `t3` is
    /// the commit stamp.
    fn commit(
        &mut self,
        done: PlanDone,
        stall: u64,
        t3: Instant,
        ecu: &mut Ecu,
        arena: &FrameArena,
        led: &LatencyLedger,
    ) {
        let meta = self.pending.pop_front().expect("one meta per plan job");
        arena.recycle(done.obstacles);
        if meta.accept && ecu.overrides_engaged_count() == meta.engage_count {
            ecu.accept_command(done.command, meta.arrival);
        }
        let sample = StageSample::from_stamps(
            LaneOccupancy::PLANNING,
            meta.frame,
            meta.t0,
            done.t1,
            done.t2,
            t3,
            stall,
        );
        led.record_stage(sample);
        // The planning stage *is* the control path: dispatch → ECU commit
        // is the end-to-end latency Eq. 1 bounds.
        led.record_frame(FrameSample::from_stage(&sample, meta.degraded));
    }

    /// Blocks until every in-flight plan has committed.
    fn drain_plans(&mut self, ecu: &mut Ecu, arena: &FrameArena, led: &LatencyLedger) {
        while !self.pending.is_empty() {
            let t_r = Instant::now();
            let done = self.plan_rx.recv().expect("planning lane alive");
            let t3 = Instant::now();
            let stall = stall_past(t_r, done.t2, t3);
            self.commit(done, stall, t3, ecu, arena, led);
        }
    }

    /// Absorbs every finished detection without blocking (FIFO, so `last`
    /// ends up holding the newest absorbed frame's detections).
    fn absorb_ready_detections(&mut self, last: &mut Vec<Detection>, led: &LatencyLedger) {
        while self.det_inflight > 0 {
            match self.det_rx.try_recv() {
                Some(done) => {
                    self.det_inflight -= 1;
                    let t3 = Instant::now();
                    led.record_stage(StageSample::from_stamps(
                        LaneOccupancy::PERCEPTION,
                        done.k,
                        done.t0,
                        done.t1,
                        done.t2,
                        t3,
                        0,
                    ));
                    self.det_free.push(std::mem::replace(last, done.out));
                }
                None => break,
            }
        }
    }

    /// Blocks until every dispatched camera frame has been detected; on
    /// return `last` holds the detections of the newest dispatched frame —
    /// exactly the serial `last_detections` state.
    fn sync_detections(&mut self, last: &mut Vec<Detection>, led: &LatencyLedger) {
        while self.det_inflight > 0 {
            let t_r = Instant::now();
            let done = self.det_rx.recv().expect("perception lane alive");
            self.det_inflight -= 1;
            let t3 = Instant::now();
            led.record_stage(StageSample::from_stamps(
                LaneOccupancy::PERCEPTION,
                done.k,
                done.t0,
                done.t1,
                done.t2,
                t3,
                stall_past(t_r, done.t2, t3),
            ));
            self.det_free.push(std::mem::replace(last, done.out));
        }
    }
}

/// The stage components the drive loop routes work through: either owned
/// inline (serial schedule) or behind the pipeline rings.
enum StageLanes<'a> {
    /// Serial: the event loop calls the front-end, detector, and planner
    /// directly.
    Inline {
        detector: &'a mut Detector,
        planner: &'a mut MpcPlanner,
        frontend: FrontEnd,
    },
    /// Pipelined: the front-end, detection, and planning execute on
    /// dedicated pool lanes (the front-end stays on the sequencer when the
    /// pool has only three lanes — see [`FrontEndRoute`]).
    Piped(PipedLanes),
}

impl StageLanes<'_> {
    /// Runs (or dispatches) the per-camera-frame stage work: the visual
    /// front-end (disparity, tracking, ego-motion → VIO) and detection.
    #[allow(clippy::too_many_arguments)] // the sequencer's full per-frame state
    fn camera_frame(
        &mut self,
        frame: CameraFrame,
        req: Option<EgoMotionRequest>,
        k: u64,
        vio: &mut VioFilter,
        last: &mut Vec<Detection>,
        world: &World,
        arena: &FrameArena,
        led: &LatencyLedger,
    ) {
        match self {
            Self::Inline {
                detector, frontend, ..
            } => {
                let t0 = Instant::now();
                detector.detect_into(&frame, |id| true_class_of(world, id), last);
                let t_mid = Instant::now();
                let product = frontend.process(&frame, req.as_ref());
                apply_frontend_output(&product, vio);
                let t1 = Instant::now();
                // Inline stages are pure compute (no rings, no barriers).
                led.record_stage(StageSample::from_stamps(
                    LaneOccupancy::PERCEPTION,
                    k,
                    t0,
                    t0,
                    t_mid,
                    t_mid,
                    0,
                ));
                led.record_stage(StageSample::from_stamps(
                    LaneOccupancy::SENSING,
                    k,
                    t_mid,
                    t_mid,
                    t1,
                    t1,
                    0,
                ));
            }
            Self::Piped(p) => p.dispatch_camera(frame, req, k, vio, last, arena, led),
        }
    }

    /// Runs (or dispatches) planning for one control tick and offers the
    /// command to the ECU (immediately when inline; under the sequencing
    /// rules when piped). `can_lost` marks a lost CAN frame: the plan is
    /// still computed — the planner's state must advance identically —
    /// but the command never reaches the ECU.
    #[allow(clippy::too_many_arguments)] // the sequencer's full per-tick state
    fn plan(
        &mut self,
        input: PlanningInput,
        arrival: SimTime,
        can_lost: bool,
        frame: u64,
        degraded: bool,
        ecu: &mut Ecu,
        arena: &FrameArena,
        led: &LatencyLedger,
    ) {
        match self {
            Self::Inline { planner, .. } => {
                let t0 = Instant::now();
                let plan = planner.plan(&input);
                let PlanningInput { obstacles, .. } = input;
                arena.recycle(obstacles);
                if !can_lost {
                    ecu.accept_command(plan.command, arrival);
                }
                let t3 = Instant::now();
                let sample =
                    StageSample::from_stamps(LaneOccupancy::PLANNING, frame, t0, t0, t3, t3, 0);
                led.record_stage(sample);
                led.record_frame(FrameSample::from_stage(&sample, degraded));
            }
            Self::Piped(p) => {
                let accept = !can_lost && !ecu.override_engaged();
                p.pending.push_back(PlanMeta {
                    arrival,
                    accept,
                    engage_count: ecu.overrides_engaged_count(),
                    frame,
                    t0: Instant::now(),
                    degraded,
                });
                p.plan_tx
                    .send(PlanJob { input })
                    .unwrap_or_else(|_| unreachable!("planning lane outlives the drive"));
                if p.sync_mode {
                    p.drain_plans(ecu, arena, led);
                }
            }
        }
    }

    /// Per-event maintenance: absorbs finished work eagerly and enforces
    /// the arrival barrier (rule 2 of the [`PipedLanes`] equivalence
    /// argument) before the event loop advances physics to `t`.
    fn pump(
        &mut self,
        t: SimTime,
        ecu: &mut Ecu,
        arena: &FrameArena,
        last: &mut Vec<Detection>,
        vio: &mut VioFilter,
        led: &LatencyLedger,
    ) {
        let Self::Piped(p) = self else { return };
        p.absorb_ready_frontend(vio, led);
        p.absorb_ready_detections(last, led);
        while !p.pending.is_empty() {
            match p.plan_rx.try_recv() {
                Some(done) => {
                    let t3 = Instant::now();
                    p.commit(done, 0, t3, ecu, arena, led);
                }
                None => break,
            }
        }
        // The barrier gates on the first meta that would actually enter
        // the ECU queue: a CAN-lost (or engage-skipped) frame never
        // reaches the serial ECU, so it must not head-of-line-block the
        // commit of a later accepted command with an earlier arrival.
        while let Some(i) = p.pending.iter().position(|m| m.accept) {
            if p.pending[i].arrival > t {
                break;
            }
            for _ in 0..=i {
                let t_r = Instant::now();
                let done = p.plan_rx.recv().expect("planning lane alive");
                let t3 = Instant::now();
                let stall = stall_past(t_r, done.t2, t3);
                p.commit(done, stall, t3, ecu, arena, led);
            }
        }
    }

    /// Priority draining of the control-critical path: when the deadline
    /// monitor predicts an Eq. 1 overrun, the sequencer block-drains the
    /// pending plan commits *before* dispatching the next speculative
    /// camera frame, so the planner lane gets the sequencer's attention
    /// (and, on a saturated host, the core) ahead of front-end work.
    /// Output-invariant: commits stay FIFO and only move *earlier* in
    /// wall-clock time, which the eager-commit equivalence rules already
    /// cover — hence bounded-FIFO determinism is preserved.
    fn priority_drain(&mut self, ecu: &mut Ecu, arena: &FrameArena, led: &LatencyLedger) {
        let Self::Piped(p) = self else { return };
        if p.pending.is_empty() {
            return;
        }
        led.note_priority_drain();
        p.drain_plans(ecu, arena, led);
    }

    /// Barrier: after this, `last` holds the serial detection state.
    fn sync_detections(&mut self, last: &mut Vec<Detection>, led: &LatencyLedger) {
        if let Self::Piped(p) = self {
            p.sync_detections(last, led);
        }
    }

    /// Barrier: after this, the VIO filter holds the serial visual-update
    /// state. Must precede any event that *reads* the filter (GPS fix
    /// ingestion, the control tick's fused position).
    fn sync_frontend(&mut self, vio: &mut VioFilter, led: &LatencyLedger) {
        if let Self::Piped(p) = self {
            p.sync_frontend(vio, led);
        }
    }

    /// Health interop: entering a degraded mode drains everything in
    /// flight (in order) and serializes subsequent dispatches; returning
    /// to nominal resumes pipelining.
    fn set_degraded(
        &mut self,
        degraded: bool,
        ecu: &mut Ecu,
        arena: &FrameArena,
        last: &mut Vec<Detection>,
        vio: &mut VioFilter,
        led: &LatencyLedger,
    ) {
        let Self::Piped(p) = self else { return };
        if degraded && !p.sync_mode {
            p.sync_frontend(vio, led);
            p.sync_detections(last, led);
            p.drain_plans(ecu, arena, led);
        }
        p.sync_mode = degraded;
    }

    /// End of drive: drains all in-flight work and returns every pooled
    /// buffer to the arena. Dropping `self` afterwards closes the job
    /// rings, which is what lets the lanes exit.
    fn shutdown(
        &mut self,
        ecu: &mut Ecu,
        arena: &FrameArena,
        last: &mut Vec<Detection>,
        vio: &mut VioFilter,
        led: &LatencyLedger,
    ) {
        let Self::Piped(p) = self else { return };
        p.sync_frontend(vio, led);
        p.sync_detections(last, led);
        p.drain_plans(ecu, arena, led);
        for buf in p.det_free.drain(..) {
            arena.recycle(buf);
        }
    }
}

/// Borrowed pieces of [`Sov`] (minus detector and planner, which live in
/// [`StageLanes`]) plus the drive parameters.
struct DriveEnv<'a> {
    config: &'a VehicleConfig,
    camera: &'a Camera,
    radars: &'a mut RadarArray,
    sonars: &'a mut SonarArray,
    gps: &'a mut GpsReceiver,
    latency: &'a mut LatencyPipeline,
    synchronizer: &'a Synchronizer,
    rng: &'a mut SovRng,
    perf: &'a PerfContext,
    scenario: &'a Scenario,
    max_frames: u64,
    faults: &'a FaultPlan,
}

/// The closed-loop event kernel shared by the serial and pipelined
/// schedules. Every sensing, fusion, health, and bookkeeping statement is
/// common to both paths; only detection and planning route through
/// `lanes`, which is what makes bit-identity auditable.
fn drive_loop(env: DriveEnv<'_>, mut lanes: StageLanes<'_>) -> DriveReport {
    let DriveEnv {
        config,
        camera,
        radars,
        sonars,
        gps,
        latency,
        synchronizer,
        rng,
        perf,
        scenario,
        max_frames,
        faults,
    } = env;
    let dt = config.control_period_s();
    let world = &scenario.world;
    let route_len = world.route.length_m();
    let start_pose = world
        .route
        .pose_at(&world.map, 0.0)
        .expect("route built from this map");
    let mut state = VehicleState {
        pose: start_pose,
        speed_mps: 0.0,
    };
    let mut ecu = Ecu::new(config.ecu, config.vehicle);
    let mut vio = VioFilter::new(start_pose, VioConfig::default());
    let mut fusion = GpsVioFusion::new(FusionConfig::default());
    let mut battery = Battery::full(config.battery.capacity_kwh);
    let mut report = DriveReport {
        outcome: DriveOutcome::Completed,
        frames: 0,
        distance_m: 0.0,
        override_engagements: 0,
        override_ticks: 0,
        computing: Summary::new(),
        min_obstacle_gap_m: f64::INFINITY,
        energy_used_kwh: 0.0,
        final_localization_error_m: 0.0,
        mean_cross_track_error_m: 0.0,
        mode_ticks: [0; 4],
        mode_transitions: 0,
        recovery_ms: Summary::new(),
        deadline_misses: 0,
        can_frames_lost: 0,
        frames_shed: 0,
        safety: SafetyReport::default(),
        tail: TailReport::default(),
    };
    let health_cfg = HealthConfig::default();
    let mut health = HealthMonitor::new(health_cfg, SimTime::ZERO);
    // Tail accounting + the deadline-driven tail policy. The monitor is
    // fed only the *modeled* computing latency — deterministic per seed
    // and schedule-independent — so its verdicts (and any drain/shed they
    // trigger) are identical on serial and piped drives.
    let policy = perf.tail;
    let led = &perf.ledger;
    led.begin(&perf.arena);
    let mut monitor = DeadlineMonitor::new(health_cfg.compute_deadline);
    // Ground-truth invariant checker: shared-path code, so serial and
    // pipelined drives produce bit-identical safety reports.
    let mut safety = SafetyChecker::new(SafetyConfig {
        max_decel_mps2: config.vehicle.max_decel_mps2,
        ..SafetyConfig::default()
    });
    let mut cross_track_sum = 0.0f64;
    let mut station = 0.0f64;
    let cruise = scenario.cruise_speed_mps.min(config.vehicle.max_speed_mps);

    // Multi-rate sensing driven by the discrete-event kernel: radar and
    // sonar at 20 Hz feed the reactive path between control ticks (this
    // is what gives the reactive path its ~30–50 ms response, Sec. IV),
    // the camera runs at 30 FPS, GPS at 10 Hz, control at 10 Hz.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        RadarSonar,
        Camera(u64),
        Gps(u64),
        Control(u64),
    }
    let radar_period = SimDuration::from_millis(50);
    let camera_period = SimDuration::from_secs_f64(1.0 / 30.0);
    let gps_period = SimDuration::from_millis(100);
    let control_period = SimDuration::from_secs_f64(dt);
    let mut queue = sov_sim::event::EventQueue::new();
    // Insertion order fixes same-instant priority: sensors before
    // control, so a control tick always plans on fresh data.
    queue.schedule(SimTime::ZERO, Ev::RadarSonar);
    queue.schedule(SimTime::ZERO, Ev::Camera(0));
    queue.schedule(SimTime::from_millis(50), Ev::Gps(0));
    queue.schedule(SimTime::ZERO, Ev::Control(0));

    // Latest sensor products consumed by the control tick. The
    // detection buffer comes from the frame arena and is refilled in
    // place at the camera rate — no steady-state allocation.
    let mut last_scan: Option<sov_sensors::radar::RadarScan> = None;
    let mut last_detections: Vec<Detection> = perf.arena.take();
    last_detections.clear();
    // Camera-frame bookkeeping for the VIO front-end.
    let mut last_camera_pose = start_pose;
    let mut last_camera_t = SimTime::ZERO;
    // Physics integration cursor.
    let mut physics_t = SimTime::ZERO;
    // Counter for the radar/sonar events' fault draws.
    let mut radar_k: u64 = 0;

    'sim: while let Some((t, ev)) = queue.pop() {
        // Absorb finished pipeline work and commit every plan whose
        // arrival is due — *before* physics advances to `t`, so the
        // ECU promotes commands exactly as the serial schedule would.
        lanes.pump(
            t,
            &mut ecu,
            &perf.arena,
            &mut last_detections,
            &mut vio,
            led,
        );
        // Advance the vehicle to `t` under the ECU's actuation,
        // promoting matured commands along the way.
        while physics_t < t {
            let step = SimDuration::from_millis(10).min(t.since(physics_t));
            let act = ecu.actuation(physics_t);
            let prev = state.pose;
            state = state.step(
                act.net_accel_mps2(),
                act.yaw_rate_rps,
                step.as_secs_f64(),
                &config.vehicle,
            );
            report.distance_m += prev.distance(&state.pose);
            physics_t += step;
        }
        let frac = (station / route_len).clamp(0.0, 1.0);

        match ev {
            Ev::RadarSonar => {
                // ---- Reactive path: straight into the ECU. ----
                let mut scan = radars.scan_all(&state.pose, state.speed_mps, world, t);
                if faults.strikes(FaultKind::RadarGhost, t, radar_k) {
                    // A phantom frontal return: the reactive path and
                    // the planner both see it, causing spurious braking
                    // — the failure is availability, never safety.
                    scan.targets.push(sov_sensors::radar::RadarTarget {
                        truth: sov_world::obstacle::ObstacleId(u32::MAX),
                        range_m: faults.uniform(FaultKind::RadarGhost, radar_k, 2.0, 12.0),
                        azimuth_rad: 0.0,
                        radial_velocity_mps: -state.speed_mps,
                    });
                }
                let sonar_range = if faults.is_active(FaultKind::SonarDropout, t) {
                    None
                } else {
                    let range = sonars.min_frontal_range(&state.pose, world, t);
                    health.sonar_seen(t);
                    range
                };
                health.radar_seen(t);
                radar_k += 1;
                // Brake for obstructions in the vehicle's *swept
                // corridor*: ahead (|azimuth| < 90°) and within ~1.2 m
                // of the path centerline — a pedestrian standing beside
                // the lane must not slam the brakes.
                let radar_frontal = scan
                    .targets
                    .iter()
                    .filter(|tg| {
                        tg.azimuth_rad.abs() < std::f64::consts::FRAC_PI_2
                            && (tg.range_m * tg.azimuth_rad.sin()).abs() < 1.2
                    })
                    .map(|tg| tg.range_m)
                    .fold(f64::INFINITY, f64::min);
                let radar_frontal = radar_frontal.is_finite().then_some(radar_frontal);
                let min_range = match (radar_frontal, sonar_range) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (Some(a), None) => Some(a),
                    (None, b) => b,
                };
                let overrides_before = ecu.overrides_engaged_count();
                ecu.reactive_range(min_range, t);
                report.override_engagements += ecu.overrides_engaged_count() - overrides_before;
                last_scan = Some(scan);
                queue.schedule(t + radar_period, Ev::RadarSonar);
            }
            Ev::Camera(k)
                if faults.is_active(FaultKind::CameraStall, t)
                    || faults.strikes(FaultKind::CameraDrop, t, k) =>
            {
                // The frame never arrives: no detections, no VIO
                // update, and the camera watchdog keeps starving. The
                // camera clock itself keeps ticking.
                queue.schedule(t + camera_period, Ev::Camera(k + 1));
            }
            Ev::Camera(k) if policy.shed && monitor.shed_predicted() => {
                // Adaptive shedding (escalation): with the predicted
                // latency far past the deadline, the lowest-priority
                // pending work — the next speculative camera frame — is
                // dropped before capture. Unlike a fault, a deliberate
                // shed still feeds the camera watchdog: the vehicle is
                // choosing to skip the frame, not losing the sensor.
                // Deterministic: the predicate depends only on the
                // seeded latency model, never on wall-clock time.
                report.frames_shed += 1;
                led.note_shed();
                health.camera_delivery(t, k);
                queue.schedule(t + camera_period, Ev::Camera(k + 1));
            }
            Ev::Camera(k) => {
                // Priority draining: when an Eq. 1 overrun is predicted,
                // the control-critical path (pending plan commits) is
                // drained ahead of this speculative front-end dispatch.
                if policy.drain && monitor.overrun_predicted() {
                    lanes.priority_drain(&mut ecu, &perf.arena, led);
                }
                // The per-frame stage work — visual front-end (disparity,
                // tracking, ego-motion) and detection — runs inline on the
                // serial schedule or on the sensing/perception lanes
                // (FIFO, so each stage's internal state and RNG evolve in
                // exactly the serial frame order). Everything the
                // ego-motion increment needs from sequencer-side state is
                // captured *now*, at dispatch: the synchronizer's
                // timestamp assignment (Sec. VI-A; software-only sync
                // corrupts the increment via the rotation–translation
                // ambiguity leak), the ECU's current yaw rate, and any
                // injected IMU bias.
                let cam_frame = camera.capture(&state.pose, world, &world.landmarks, t, rng);
                let req = (k > 0).then(|| {
                    let offset_ms = synchronizer.camera_imu_offset_ms(k, rng);
                    let shift = SimDuration::from_millis_f64(offset_ms);
                    let yaw_rate = ecu.actuation(t).yaw_rate_rps;
                    let epsilon = yaw_rate * offset_ms * 1e-3;
                    EgoMotionRequest {
                        prev_pose: last_camera_pose,
                        pose: state.pose,
                        t_from: last_camera_t + shift,
                        t_to: t + shift,
                        // Leak × ε × Z̄, plus injected IMU bias leaking
                        // spurious lateral motion into the increment.
                        lateral_bias_m: 0.15 * epsilon * 12.0
                            + faults.magnitude(FaultKind::ImuBiasJump, t, k),
                    }
                });
                lanes.camera_frame(
                    cam_frame,
                    req,
                    k,
                    &mut vio,
                    &mut last_detections,
                    world,
                    &perf.arena,
                    led,
                );
                last_camera_pose = state.pose;
                last_camera_t = t;
                // Delivery carries the frame-sequence number so the
                // monitor can see intermittent drops (sequence gaps)
                // that never starve the stall watchdog.
                health.camera_delivery(t, k);
                queue.schedule(t + camera_period, Ev::Camera(k + 1));
            }
            Ev::Gps(k) if faults.is_active(FaultKind::GpsOutage, t) => {
                // Tunnel/canopy outage: no fix at all. Fusion keeps
                // riding the VIO dead-reckoning (Sec. VI) while the
                // GPS watchdog starves.
                queue.schedule(t + gps_period, Ev::Gps(k + 1));
            }
            Ev::Gps(k) => {
                // Fix ingestion *reads* the VIO estimate: barrier on the
                // sensing lane so the filter is in its serial state.
                lanes.sync_frontend(&mut vio, led);
                let quality = if faults.is_active(FaultKind::GpsMultipath, t) {
                    GnssQuality::Multipath
                } else if scenario.gps_degraded_at(frac) {
                    if k % 2 == 0 {
                        GnssQuality::Multipath
                    } else {
                        GnssQuality::NoFix
                    }
                } else {
                    GnssQuality::Strong
                };
                let fix = gps.fix(t, &state.pose, quality);
                // Only a fix that actually corrected the filter counts
                // as GNSS health: a gated-out (multipath) fix leaves
                // localization running on dead-reckoned VIO, and the
                // watchdog starving on rejections is what demotes the
                // vehicle to DegradedLocalization speed.
                if fusion.ingest_fix(&mut vio, &fix) == FixOutcome::Fused {
                    health.gps_seen(t);
                }
                queue.schedule(t + gps_period, Ev::Gps(k + 1));
            }
            Ev::Control(frame) => {
                report.frames = frame + 1;
                if ecu.override_engaged() {
                    report.override_ticks += 1;
                }
                let complexity = scenario.complexity.at(frac);
                let frame_latency = latency.next_frame(complexity);
                let mut computing = frame_latency.computing();
                // Compute faults stretch this frame's critical path:
                // a constant overrun (throttling/contention) and a
                // per-frame RPR reconfiguration spike (Sec. V-B).
                if let Some(w) = faults.active(FaultKind::StageOverrun, t) {
                    computing += SimDuration::from_millis_f64(w.intensity);
                }
                let spike = faults.magnitude(FaultKind::RprDelaySpike, t, frame);
                if spike > 0.0 {
                    computing += SimDuration::from_millis_f64(spike);
                }
                report.computing.record(computing.as_millis_f64());
                // The overrun predictor sees the same modeled stream on
                // every schedule (bit-identity of the tail policy).
                monitor.observe(computing.as_millis_f64());
                if monitor.overrun_predicted() {
                    led.note_overrun();
                }

                // Degradation state machine: watchdogs + compute
                // deadline decide the operating mode for this tick.
                health.compute_latency(computing);
                let (mode, recovered) = health.assess(t);
                if let Some(d) = recovered {
                    report.recovery_ms.record(d.as_millis_f64());
                }
                report.mode_ticks[mode as usize] += 1;
                let ref_speed = match mode {
                    DegradationMode::Nominal => cruise,
                    // VIO-only localization drifts; trim speed so the
                    // drift stays inside the lane over the outage.
                    DegradationMode::DegradedLocalization => cruise * 0.8,
                    // Creep inside the radar+sonar reactive envelope
                    // (4.1 m engage range ≫ braking distance at 2 m/s).
                    DegradationMode::ReactiveOnly => cruise.min(2.0),
                    DegradationMode::SafeStop => 0.0,
                };
                // Pipeline/health interop: a degraded tick drains the
                // lanes and serializes (nothing is ever reordered); a
                // nominal tick only barriers on the camera frames
                // dispatched before this tick, so the fused position and
                // obstacle merge below see exactly the serial VIO and
                // detection state. Front-end first: the sensing lane
                // feeds the perception lane.
                lanes.set_degraded(
                    mode != DegradationMode::Nominal,
                    &mut ecu,
                    &perf.arena,
                    &mut last_detections,
                    &mut vio,
                    led,
                );
                lanes.sync_frontend(&mut vio, led);
                lanes.sync_detections(&mut last_detections, led);

                // Localization estimate drives the lane-keeping inputs.
                let est = fusion.position(&vio);
                let (est_station, lateral) = world
                    .route
                    .project(&world.map, est.x, est.y)
                    .expect("route lanes exist");
                // Obstacles in *route* coordinates: the radar's
                // vehicle-frame lateral plus the vehicle's own route
                // offset, so maneuver targets and obstacles share a
                // frame.
                let mut obstacles: Vec<PlanningObstacle> = perf.arena.take();
                obstacles.clear();
                if let Some(scan) = last_scan.as_ref() {
                    obstacles.extend(
                        scan.targets
                            .iter()
                            .filter(|tg| tg.azimuth_rad.abs() < 1.2)
                            .map(|tg| PlanningObstacle {
                                station_m: tg.range_m * tg.azimuth_rad.cos(),
                                lateral_m: lateral + tg.range_m * tg.azimuth_rad.sin(),
                                speed_along_mps: (state.speed_mps + tg.radial_velocity_mps)
                                    .max(0.0),
                                radius_m: 0.6,
                            }),
                    );
                }
                // With the proactive perception path degraded the
                // camera detections are stale — plan on radar alone.
                if mode < DegradationMode::ReactiveOnly {
                    for det in &last_detections {
                        let covered = obstacles
                            .iter()
                            .any(|o| (o.station_m - det.depth_m).abs() < 3.0);
                        if !covered {
                            obstacles.push(PlanningObstacle {
                                station_m: det.depth_m,
                                lateral_m: 0.0,
                                speed_along_mps: 0.0,
                                radius_m: det.class.radius_m(),
                            });
                        }
                    }
                }

                let route_pose = world
                    .route
                    .pose_at(&world.map, est_station)
                    .expect("route lanes exist");
                let heading_error = angle::diff(est.theta, route_pose.theta);
                // Lane-change availability from the map's adjacency
                // (the lane-granularity maneuver space of Sec. III-D).
                let (current_lane, _) = world.route.lane_at(est_station);
                let (left_ok, right_ok, lane_width) =
                    world
                        .map
                        .lane(current_lane)
                        .map_or((false, false, 2.5), |l| {
                            (
                                l.left_neighbor().is_some(),
                                l.right_neighbor().is_some(),
                                l.width_m(),
                            )
                        });
                let input = PlanningInput {
                    speed_mps: state.speed_mps,
                    ref_speed_mps: ref_speed,
                    lateral_offset_m: lateral,
                    heading_error_rad: heading_error,
                    obstacles,
                    lane_width_m: lane_width,
                    left_lane_available: left_ok,
                    right_lane_available: right_ok,
                };
                // The command reaches the ECU after computing + CAN —
                // unless the CAN frame is lost, in which case the ECU
                // simply keeps actuating the previous command. On the
                // pipelined schedule the plan is computed on the
                // planning lane and committed by the sequencer under
                // the `PipedLanes` equivalence rules.
                let can_lost = faults.strikes(FaultKind::CanFrameLoss, t, frame);
                if can_lost {
                    report.can_frames_lost += 1;
                }
                let arrival = t + computing + SimDuration::from_millis(1);
                lanes.plan(
                    input,
                    arrival,
                    can_lost,
                    frame,
                    mode != DegradationMode::Nominal,
                    &mut ecu,
                    &perf.arena,
                    led,
                );

                // ---- Bookkeeping (per control tick). ----
                battery.drain(
                    config.battery.base_load_kw + config.power.total_pad_kw(),
                    control_period,
                );
                safety.check_tick(world, &state.pose, state.speed_mps, mode, t, frame);
                if let Some((_, gap)) =
                    world.nearest_frontal_obstacle(&state.pose, t, std::f64::consts::PI)
                {
                    report.min_obstacle_gap_m = report.min_obstacle_gap_m.min(gap);
                    if gap <= 0.05 {
                        report.outcome = DriveOutcome::Collision;
                        break 'sim;
                    }
                }
                let (s_now, true_lateral) = world
                    .route
                    .project(&world.map, state.pose.x, state.pose.y)
                    .expect("route lanes exist");
                cross_track_sum += true_lateral.abs();
                // Monotone progress (projection can jump at corners).
                if s_now > station || (station - s_now) > route_len / 2.0 {
                    station = s_now;
                }
                if report.distance_m >= route_len {
                    break 'sim; // one full loop completed
                }
                if frame + 1 < max_frames {
                    queue.schedule(t + control_period, Ev::Control(frame + 1));
                } else {
                    break 'sim;
                }
            }
        }
    }
    // Drain whatever is still in flight (the drive can end mid-frame)
    // and hand every pooled buffer back to the arena.
    lanes.shutdown(&mut ecu, &perf.arena, &mut last_detections, &mut vio, led);
    perf.arena.recycle(last_detections);
    // Collect the tail breakdown and hand the ledger's buffers back to
    // the arena (allocation-free across drives once warm).
    report.tail = TailReport::collect(led, &perf.arena);
    report.energy_used_kwh = config.battery.capacity_kwh - battery.remaining_kwh();
    report.mode_transitions = health.transitions().len() as u64;
    report.deadline_misses = health.deadline_misses();
    report.mean_cross_track_error_m = cross_track_sum / report.frames.max(1) as f64;
    report.final_localization_error_m = fusion.position(&vio).distance(&state.pose);
    report.safety = safety.finish();
    if report.outcome != DriveOutcome::Collision && state.speed_mps < 0.1 {
        report.outcome = DriveOutcome::Stopped;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_frames() {
        let scenario = Scenario::fishers_indiana(1);
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 1);
        assert_eq!(sov.drive(&scenario, 0).unwrap_err(), SovError::NoFrames);
    }

    #[test]
    fn clear_road_cruise_completes_without_overrides() {
        let mut scenario = Scenario::fishers_indiana(2);
        scenario.world.obstacles.clear();
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 2);
        let report = sov.drive(&scenario, 300).unwrap();
        assert_eq!(report.outcome, DriveOutcome::Completed);
        assert_eq!(report.override_engagements, 0);
        assert!(report.distance_m > 100.0, "covered {} m", report.distance_m);
        assert!(report.proactive_fraction() > 0.99);
    }

    #[test]
    fn planner_stops_for_static_obstacle_without_reactive_help() {
        let scenario = Scenario::fishers_indiana(3);
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 3);
        // Long enough to reach the obstacle at 60 m and wait it out.
        let report = sov.drive(&scenario, 250).unwrap();
        assert_ne!(
            report.outcome,
            DriveOutcome::Collision,
            "gap {}",
            report.min_obstacle_gap_m
        );
        assert!(
            report.min_obstacle_gap_m > 1.0,
            "gap {}",
            report.min_obstacle_gap_m
        );
        // A planned stop keeps the vehicle outside the reactive envelope —
        // the paper's vehicles stay proactive > 90% of the time.
        assert!(
            report.proactive_fraction() > 0.9,
            "proactive {}",
            report.proactive_fraction()
        );
    }

    #[test]
    fn sudden_obstacle_triggers_reactive_override() {
        use sov_math::Pose2;
        use sov_sim::time::SimTime;
        use sov_world::obstacle::{Obstacle, ObstacleId};
        let mut scenario = Scenario::fishers_indiana(8);
        // A pedestrian steps out ~8 m in front of the accelerating vehicle
        // at t = 3 s and clears the road at t = 6 s — close enough that the
        // proactive stop ends inside the reactive envelope.
        scenario.world.obstacles = vec![Obstacle::fixed(
            ObstacleId(0),
            ObstacleClass::Pedestrian,
            Pose2::new(16.0, 0.3, 0.0),
            SimTime::from_millis(3_000),
        )
        .until(SimTime::from_millis(6_000))];
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 8);
        let report = sov.drive(&scenario, 250).unwrap();
        assert_ne!(
            report.outcome,
            DriveOutcome::Collision,
            "gap {}",
            report.min_obstacle_gap_m
        );
        assert!(
            report.min_obstacle_gap_m > 0.05,
            "gap {}",
            report.min_obstacle_gap_m
        );
        assert!(
            report.override_engagements >= 1,
            "reactive path must engage"
        );
        // The override is brief; most of the drive stays proactive.
        let frac = report.proactive_fraction();
        assert!((0.5..1.0).contains(&frac), "proactive {frac}");
    }

    #[test]
    fn localization_stays_accurate_with_fusion() {
        let mut scenario = Scenario::fishers_indiana(4);
        scenario.world.obstacles.clear();
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 4);
        let report = sov.drive(&scenario, 400).unwrap();
        assert!(
            report.final_localization_error_m < 2.0,
            "fused localization error {} m",
            report.final_localization_error_m
        );
    }

    #[test]
    fn latency_statistics_are_recorded() {
        let mut scenario = Scenario::fishers_indiana(5);
        scenario.world.obstacles.clear();
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 5);
        let mut report = sov.drive(&scenario, 200).unwrap();
        assert_eq!(report.computing.len(), report.frames as usize);
        let mean = report.computing.mean();
        assert!((120.0..220.0).contains(&mean), "mean computing {mean} ms");
        assert!(report.computing.p99() > mean);
    }

    #[test]
    fn energy_accounting_matches_power_model() {
        let mut scenario = Scenario::fishers_indiana(6);
        scenario.world.obstacles.clear();
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 6);
        let report = sov.drive(&scenario, 100).unwrap();
        // 10 s at (0.6 + 0.175) kW = 0.775 kW → ≈ 0.00215 kWh.
        let expected = 0.775 * (10.0 / 3600.0);
        assert!(
            (report.energy_used_kwh - expected).abs() < 1e-4,
            "energy {} vs {expected}",
            report.energy_used_kwh
        );
    }

    #[test]
    fn software_sync_localizes_worse_than_hardware() {
        use sov_sensors::sync::SyncStrategy;
        // A winding site (turning is where camera–IMU desync bites).
        let mut scenario = Scenario::fribourg_campus(11);
        scenario.world.obstacles.clear();
        let mut hw = Sov::new(VehicleConfig::perceptin_pod(), 11);
        let sw_config = VehicleConfig {
            sync_strategy: SyncStrategy::SoftwareOnly,
            ..VehicleConfig::perceptin_pod()
        };
        let mut sw = Sov::new(sw_config, 11);
        let r_hw = hw.drive(&scenario, 400).unwrap();
        let r_sw = sw.drive(&scenario, 400).unwrap();
        // GPS fusion bounds both, but the software-sync vehicle leans on it
        // far harder; compare the raw VIO corruption via final error.
        assert!(
            r_sw.final_localization_error_m >= r_hw.final_localization_error_m,
            "software {} vs hardware {}",
            r_sw.final_localization_error_m,
            r_hw.final_localization_error_m
        );
    }

    #[test]
    fn overtakes_slow_vehicle_via_lane_change() {
        // Sec. III-D: maneuvers happen at lane granularity — on the
        // two-lane course the vehicle passes a 1.5 m/s forklift instead of
        // crawling behind it.
        let scenario = Scenario::shenzhen_two_lane(42);
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 42);
        let report = sov.drive(&scenario, 500).unwrap();
        assert_ne!(
            report.outcome,
            DriveOutcome::Collision,
            "gap {}",
            report.min_obstacle_gap_m
        );
        assert!(
            report.min_obstacle_gap_m > 0.5,
            "gap {}",
            report.min_obstacle_gap_m
        );
        // Following the forklift for 50 s would cover ~≤110 m; overtaking
        // restores cruise speed.
        assert!(
            report.distance_m > 150.0,
            "only covered {:.0} m — no overtake",
            report.distance_m
        );
        // Time spent in the outer lane shows up as cross-track offset.
        assert!(report.mean_cross_track_error_m > 0.4, "never left the lane");
    }

    #[test]
    fn flaky_radar_still_drives_safely() {
        use sov_sensors::radar::RadarConfig;
        // Failure injection: 40% of radar scans are unstable. Detection +
        // the remaining stable scans + sonar keep the vehicle safe.
        let scenario = Scenario::fishers_indiana(21);
        let config = VehicleConfig {
            radar: RadarConfig {
                instability_prob: 0.4,
                ..RadarConfig::default()
            },
            ..VehicleConfig::perceptin_pod()
        };
        let mut sov = Sov::new(config, 21);
        let report = sov.drive(&scenario, 250).unwrap();
        assert_ne!(
            report.outcome,
            DriveOutcome::Collision,
            "gap {}",
            report.min_obstacle_gap_m
        );
        assert!(report.min_obstacle_gap_m > 0.05);
    }

    #[test]
    fn pooled_drive_report_is_identical_and_allocation_free() {
        let scenario = Scenario::fishers_indiana(3);
        let mut serial = Sov::new(VehicleConfig::perceptin_pod(), 3);
        let r_serial = serial.drive(&scenario, 200).unwrap();
        let mut pooled = Sov::new(VehicleConfig::perceptin_pod(), 3);
        pooled.set_perf(PerfContext::with_workers(4));
        let r_pooled = pooled.drive(&scenario, 200).unwrap();
        assert_eq!(r_pooled, r_serial, "pool must not change the drive");
        // With the arena warm, a further drive's steady-state control
        // ticks allocate nothing: every buffer comes off the free list.
        pooled.perf().arena.reset_stats();
        let _ = pooled.drive(&scenario, 50).unwrap();
        let stats = pooled.perf().arena.stats();
        assert_eq!(stats.allocations, 0, "steady state must be reuse-only");
        assert!(stats.reuses > 0, "arena must actually be exercised");
    }

    #[test]
    fn pipelined_drive_is_bit_identical_across_depths_and_workers() {
        // The obstacle course exercises planner braking and mode churn;
        // the report's exact `PartialEq` makes this a bitwise check.
        let scenario = Scenario::fishers_indiana(3);
        let mut serial = Sov::new(VehicleConfig::perceptin_pod(), 3);
        let r_serial = serial.drive(&scenario, 200).unwrap();
        // Workers 3 keeps the front-end on the sequencer, 4 gives it its
        // own sensing lane, 8 adds idle lanes — all one bit pattern.
        for depth in 2..=4 {
            for workers in [3, 4, 8] {
                let mut piped = Sov::new(VehicleConfig::perceptin_pod(), 3);
                piped.set_perf(PerfContext::with_pipeline_workers(depth, workers));
                let r = piped.drive(&scenario, 200).unwrap();
                assert_eq!(r, r_serial, "depth {depth} × workers {workers}");
            }
        }
        // Too few lanes for the three stages: bit-identical serial fallback.
        let mut narrow = Sov::new(VehicleConfig::perceptin_pod(), 3);
        narrow.set_perf(PerfContext::with_pipeline_workers(4, 2));
        assert_eq!(narrow.drive(&scenario, 200).unwrap(), r_serial);
    }

    #[test]
    fn pipelined_faulted_drive_matches_serial_through_degradation() {
        use sov_sim::time::SimTime;
        let secs = |s: u64| SimTime::from_millis(s * 1000);
        // Overrides (sudden obstacle) + every commit-order hazard: CAN
        // loss, camera stall (degraded modes drain the pipeline), RPR
        // spikes (non-monotonic command arrivals), GPS outage.
        let scenario = Scenario::fishers_indiana(8);
        let plan = FaultPlan::new(29)
            .with_intensity(FaultKind::CanFrameLoss, secs(1), secs(12), 0.3)
            .with(FaultKind::CameraStall, secs(4), secs(9))
            .with_intensity(FaultKind::RprDelaySpike, secs(2), secs(14), 350.0)
            .with(FaultKind::GpsOutage, secs(6), secs(16));
        let mut serial = Sov::new(VehicleConfig::perceptin_pod(), 8);
        let r_serial = serial.drive_with_plan(&scenario, 200, &plan).unwrap();
        assert!(r_serial.can_frames_lost > 0, "CAN fault must fire");
        assert!(r_serial.mode_transitions > 0, "degradation must fire");
        for depth in [2, 4] {
            let mut piped = Sov::new(VehicleConfig::perceptin_pod(), 8);
            piped.set_perf(PerfContext::with_pipeline(depth));
            let r = piped.drive_with_plan(&scenario, 200, &plan).unwrap();
            assert_eq!(r, r_serial, "depth {depth} under faults");
        }
    }

    #[test]
    fn pipelined_drive_is_allocation_free_in_steady_state() {
        // Both front-end routes: workers 3 (sequencer) and 4 (sensing
        // lane — outputs are `Copy` and frames/buffers circulate, so the
        // extra stage adds no steady-state allocation).
        for workers in [3, 4] {
            let scenario = Scenario::fishers_indiana(3);
            let mut piped = Sov::new(VehicleConfig::perceptin_pod(), 3);
            piped.set_perf(PerfContext::with_pipeline_workers(3, workers));
            let _ = piped.drive(&scenario, 100).unwrap();
            // Warm arena: detection and obstacle buffers all circulate
            // through the rings and back without touching the allocator.
            piped.perf().arena.reset_stats();
            let _ = piped.drive(&scenario, 50).unwrap();
            let stats = piped.perf().arena.stats();
            assert_eq!(stats.allocations, 0, "workers {workers}: must reuse");
            assert!(stats.reuses > 0, "workers {workers}: must exercise arena");
        }
    }

    #[test]
    fn piped_drive_records_busy_time_in_all_three_lanes() {
        let scenario = Scenario::fishers_indiana(3);
        let mut piped = Sov::new(VehicleConfig::perceptin_pod(), 3);
        piped.set_perf(PerfContext::with_pipeline(3));
        let _ = piped.drive(&scenario, 100).unwrap();
        let occ = &piped.perf().occupancy;
        for lane in [
            LaneOccupancy::SENSING,
            LaneOccupancy::PERCEPTION,
            LaneOccupancy::PLANNING,
        ] {
            assert!(
                occ.busy(lane) > std::time::Duration::ZERO,
                "lane {lane} never ran"
            );
        }
        assert!(occ.wall() > std::time::Duration::ZERO);
    }

    #[test]
    fn lidar_variant_burns_more_energy() {
        let mut scenario = Scenario::fishers_indiana(7);
        scenario.world.obstacles.clear();
        let mut pod = Sov::new(VehicleConfig::perceptin_pod(), 7);
        let mut lidar = Sov::new(VehicleConfig::lidar_variant(), 7);
        let e_pod = pod.drive(&scenario, 150).unwrap().energy_used_kwh;
        let e_lidar = lidar.drive(&scenario, 150).unwrap().energy_used_kwh;
        assert!(e_lidar > e_pod * 1.05, "{e_lidar} vs {e_pod}");
    }
}
