//! Offline cloud services for the autonomous-driving infrastructure
//! (Fig. 1, Sec. II-B).
//!
//! "Our cloud workloads include map generation, simulation, and machine
//! learning (ML) model training. Over time, the new ML models, algorithms,
//! and maps are updated to the vehicles, which in turn continuously provide
//! real-world observations and statistics to the cloud tasks."
//!
//! * [`compress`] — the LZSS codec behind the log-compression task that
//!   Sec. VII proposes swapping onto the FPGA via partial reconfiguration.
//! * [`telemetry`] — the vehicle→cloud data path: condensed hourly
//!   operational logs (a few KB, uplinked in real time) versus raw training
//!   data (up to 1 TB/day, stored on the on-vehicle SSD and uploaded
//!   manually at end of day).
//! * [`training`] — environment-specialized detector training: field
//!   observations from a deployment site improve that site's model
//!   (Sec. IV: "different models are specialized/trained using the
//!   deployment environment-specific training data").
//! * [`mapgen`] — map generation/annotation: drive logs reveal where
//!   pedestrians cluster and where GPS degrades, and those observations
//!   become OSM-style semantic annotations (Sec. II-B).
//! * [`simulation`] — the cloud simulation service: candidate model/config
//!   updates are regression-gated by replaying deployment scenarios before
//!   being pushed to vehicles.
//!
//! # Example
//!
//! ```
//! use sov_cloud::telemetry::{DataClass, UplinkPolicy};
//!
//! let policy = UplinkPolicy::perceptin_defaults();
//! // Condensed logs go up in real time; raw camera data must wait for the
//! // end-of-day manual upload.
//! assert!(policy.realtime_allowed(DataClass::CondensedLog { bytes: 4 * 1024 }));
//! assert!(!policy.realtime_allowed(DataClass::RawSensorData { bytes: 6_000_000 }));
//! ```

#![deny(missing_docs)]

pub mod compress;
pub mod mapgen;
pub mod simulation;
pub mod telemetry;
pub mod training;
