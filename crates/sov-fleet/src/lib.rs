//! Fleet-scale ride serving: thousands of vehicles as one sharded,
//! deterministic workload.
//!
//! Every other perf layer in this workspace (arena/SoA kernels, the
//! worker pool, frame pipelining, tail levers) scales a *single* vehicle.
//! This crate adds the deployment axis the paper's economics (Sec. III-B/C,
//! Eq. 2, Table II) are really about: a whole micromobility fleet serving
//! ride demand, where per-vehicle watts and dollars multiply by the fleet
//! size and availability lost to charging is revenue lost.
//!
//! * [`graph`] — [`graph::RouteTable`]: a `LaneMap` compiled to dense
//!   all-pairs shortest-distance tables with deterministic tie-breaking;
//!   `O(log n)` uniform position sampling, `O(1)` distance queries,
//!   exact-arrival `advance` along shortest paths.
//! * [`request`] — [`request::RideGen`]: seeded Poisson ride demand with
//!   origins/destinations uniform by arclength over the network.
//! * [`vehicle`] — [`vehicle::FleetVehicle`]: the per-vehicle serving
//!   state machine (idle → to-pickup → onboard → idle/charging) with
//!   battery accounting and an arena-backed lookahead control kernel.
//! * [`sim`] — [`sim::FleetSim`]: the four-phase tick (serial arrivals,
//!   serial nearest-available dispatch, **sharded** vehicle advance over
//!   `sov-runtime`'s `WorkerPool` with fixed chunking, serial ordered
//!   merge) and the aggregate [`sim::FleetReport`].
//!
//! # Determinism
//!
//! The fleet report is **byte-identical to the serial reference for any
//! worker or shard count**. The argument is the house invariant
//! (DESIGN.md §8/§14) applied to a new job shape: chunk boundaries depend
//! only on fleet size and the configured chunk size; each vehicle step
//! writes nothing but its own vehicle; and every stochastic or
//! order-sensitive phase (demand, dispatch, summary merges, checksum)
//! runs serially in a fixed order. The `fleet_matrix` bench bin and the
//! crate's proptests gate on exactly this property.
//!
//! # Example
//!
//! ```
//! use sov_fleet::sim::{FleetConfig, FleetSim};
//! use sov_runtime::pool::WorkerPool;
//!
//! let cfg = FleetConfig {
//!     ticks: 120,
//!     grid_rows: 4,
//!     grid_cols: 4,
//!     ..FleetConfig::perceptin_fleet(16)
//! };
//! let serial = FleetSim::new(cfg.clone()).run(None);
//! let pool = WorkerPool::new(4);
//! let sharded = FleetSim::new(cfg).run(Some(&pool));
//! assert_eq!(serial, sharded); // byte-identical, any pool size
//! ```

#![deny(missing_docs)]

pub mod graph;
pub mod request;
pub mod sim;
pub mod vehicle;

pub use graph::{FleetPos, RouteTable};
pub use request::{RideGen, RideRequest};
pub use sim::{FleetConfig, FleetFaultPlan, FleetReport, FleetSim};
pub use vehicle::{Duty, FleetVehicle};
