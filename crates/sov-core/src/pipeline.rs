//! The frame-latency model of the proactive path (Sec. IV, Sec. V-C).
//!
//! Each control frame traverses sensing → perception → planning, serialized
//! on the critical path (Fig. 5). Inside perception, localization and scene
//! understanding run in parallel (so perception latency is their max), and
//! detection → tracking is the one serialized pair inside scene
//! understanding.
//!
//! Latencies are drawn from the platform execution profiles of the active
//! [`VehicleConfig`]'s mapping, with:
//!
//! * sensing = the camera pipeline transit of Fig. 12b,
//! * localization alternating keyframe / tracked-frame cost (Sec. V-B3),
//!   scaled by the scenario's **scene complexity** ("in dynamic scenes, new
//!   features can be extracted in every frame, which slows down the
//!   localization algorithm", Sec. V-C),
//! * tracking = radar spatial synchronization when radar is stable, the KCF
//!   fallback otherwise (Table III),
//! * contention when both perception groups share a device (Fig. 8).

use crate::config::VehicleConfig;
use sov_math::SovRng;
use sov_platform::mapping::GPU_CONTENTION_FACTOR;
use sov_platform::processor::{Platform, Task};
use sov_sensors::pipeline::SensorPipeline;
use sov_sim::time::SimDuration;

/// Per-frame latency decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrameLatency {
    /// Sensing stage (camera pipeline transit).
    pub sensing: SimDuration,
    /// VIO localization.
    pub localization: SimDuration,
    /// Stereo depth estimation.
    pub depth: SimDuration,
    /// DNN object detection.
    pub detection: SimDuration,
    /// Tracking (spatial sync or KCF).
    pub tracking: SimDuration,
    /// Planning (MPC).
    pub planning: SimDuration,
    /// Whether this frame was a localization keyframe.
    pub keyframe: bool,
    /// Whether tracking fell back to KCF.
    pub kcf_fallback: bool,
}

impl FrameLatency {
    /// Scene-understanding group latency: depth and detection serialize on
    /// the shared engine; tracking follows detection.
    #[must_use]
    pub fn scene_understanding(&self) -> SimDuration {
        self.depth + self.detection + self.tracking
    }

    /// Perception latency: localization ∥ scene understanding.
    #[must_use]
    pub fn perception(&self) -> SimDuration {
        self.localization.max(self.scene_understanding())
    }

    /// Computing latency `T_comp`: sensing → perception → planning.
    #[must_use]
    pub fn computing(&self) -> SimDuration {
        self.sensing + self.perception() + self.planning
    }

    /// The three coarse pipeline stages in execution order:
    /// `[sensing, perception, planning]` — the lanes of the inter-frame
    /// pipeline (`sov_runtime::pipeline::FramePipeline`).
    #[must_use]
    pub fn stages(&self) -> [SimDuration; 3] {
        [self.sensing, self.perception(), self.planning]
    }

    /// The slowest coarse stage — the reciprocal of the fully-overlapped
    /// pipeline's steady-state throughput (Fig. 5's TLP bound).
    #[must_use]
    pub fn bottleneck(&self) -> SimDuration {
        let [s, p, l] = self.stages();
        s.max(p).max(l)
    }

    /// Steady-state initiation interval of the inter-frame pipeline at the
    /// given depth: how long after frame `k` starts that frame `k + 1` can
    /// start.
    ///
    /// `depth <= 1` is the serial frame schedule — the interval is the full
    /// `T_comp` (Eq. 1). `depth >= 2` overlaps the three coarse stages
    /// across adjacent frames, so the interval collapses to the
    /// [`bottleneck`](Self::bottleneck) stage. Per-frame latency is
    /// **unchanged** either way — pipelining never shortens one frame's
    /// sensing → perception → planning chain, it only starts the next
    /// frame earlier.
    #[must_use]
    pub fn initiation_interval(&self, depth: usize) -> SimDuration {
        if depth <= 1 {
            self.computing()
        } else {
            self.bottleneck()
        }
    }

    /// Model-predicted occupancy of the three pipeline lanes at the given
    /// depth: each stage's duration over the
    /// [`initiation_interval`](Self::initiation_interval), i.e. the
    /// fraction of each beat the lane spends computing once the pipeline
    /// is full. At `depth >= 2` the bottleneck lane's occupancy is exactly
    /// `1.0` and the others are `stage / bottleneck`; at depth 1 the three
    /// occupancies sum to at most `1.0` (the stages time-share one beat).
    #[must_use]
    pub fn lane_occupancy(&self, depth: usize) -> [f64; 3] {
        let ii = self.initiation_interval(depth).as_millis_f64();
        if ii <= 0.0 {
            return [0.0; 3];
        }
        self.stages().map(|s| s.as_millis_f64() / ii)
    }

    /// Pipelined throughput (frames/second) at the given depth, from the
    /// [`initiation_interval`](Self::initiation_interval).
    #[must_use]
    pub fn pipelined_throughput_fps(&self, depth: usize) -> f64 {
        1_000.0 / self.initiation_interval(depth).as_millis_f64()
    }

    /// Throughput gain of the pipelined schedule over the serial one at
    /// the given depth (`>= 1`; equals `1.0` for `depth <= 1`).
    #[must_use]
    pub fn pipeline_speedup(&self, depth: usize) -> f64 {
        self.computing().as_millis_f64() / self.initiation_interval(depth).as_millis_f64()
    }
}

/// The latency-model generator.
#[derive(Debug, Clone)]
pub struct LatencyPipeline {
    mapping_su: Platform,
    mapping_loc: Platform,
    planning_platform: Platform,
    sensing: SensorPipeline,
    rng: SovRng,
    frame_index: u64,
    /// A localization keyframe every N frames (Sec. V-B3).
    keyframe_interval: u64,
    /// Probability a frame's radar is unstable → KCF fallback.
    kcf_fallback_prob: f64,
}

impl LatencyPipeline {
    /// Creates the generator for a vehicle configuration.
    #[must_use]
    pub fn new(config: &VehicleConfig, seed: u64) -> Self {
        Self {
            mapping_su: config.mapping.scene_understanding,
            mapping_loc: config.mapping.localization,
            planning_platform: config.planning_platform,
            sensing: SensorPipeline::camera_default(),
            rng: SovRng::seed_from_u64(seed ^ 0x504950),
            frame_index: 0,
            keyframe_interval: 5,
            kcf_fallback_prob: 0.05,
        }
    }

    /// Number of frames generated so far.
    #[must_use]
    pub fn frames_generated(&self) -> u64 {
        self.frame_index
    }

    /// Generates the next frame's latency decomposition.
    ///
    /// `complexity ∈ [0, 1]` is the scenario's scene complexity at the
    /// vehicle's current position.
    pub fn next_frame(&mut self, complexity: f64) -> FrameLatency {
        let complexity = complexity.clamp(0.0, 1.0);
        let keyframe = self.frame_index.is_multiple_of(self.keyframe_interval)
            // Dynamic scenes force fresh extraction in non-key frames too.
            || self.rng.bernoulli(0.8 * complexity);
        self.frame_index += 1;
        let kcf_fallback = self.rng.bernoulli(self.kcf_fallback_prob);

        let sensing = self
            .sensing
            .transit(sov_sim::time::SimTime::ZERO, &mut self.rng)
            .total_latency();

        let contended = self.mapping_su == self.mapping_loc;
        let contention = if contended {
            GPU_CONTENTION_FACTOR
        } else {
            1.0
        };

        let loc_task = if keyframe {
            Task::LocalizationKeyframe
        } else {
            Task::LocalizationTracked
        };
        let loc_raw = loc_task
            .profile(self.mapping_loc)
            .latency
            .sample(&mut self.rng)
            .as_millis_f64();
        // Scene complexity stretches feature work (Sec. V-C: σ ≈ 14 ms from
        // varying scene complexity).
        let localization =
            SimDuration::from_millis_f64(loc_raw * (0.8 + 0.7 * complexity) * contention);

        let depth = SimDuration::from_millis_f64(
            Task::DepthEstimation
                .profile(self.mapping_su)
                .latency
                .sample(&mut self.rng)
                .as_millis_f64()
                * contention,
        );
        let detection = SimDuration::from_millis_f64(
            Task::ObjectDetection
                .profile(self.mapping_su)
                .latency
                .sample(&mut self.rng)
                .as_millis_f64()
                * contention,
        );
        let tracking_task = if kcf_fallback {
            Task::KcfTracking
        } else {
            Task::SpatialSync
        };
        let tracking = tracking_task
            .profile(Platform::CoffeeLakeCpu)
            .latency
            .sample(&mut self.rng);
        let planning = Task::MpcPlanning
            .profile(self.planning_platform)
            .latency
            .sample(&mut self.rng);
        FrameLatency {
            sensing,
            localization,
            depth,
            detection,
            tracking,
            planning,
            keyframe,
            kcf_fallback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VehicleConfig;

    fn mean_computing_ms(config: &VehicleConfig, frames: usize, seed: u64) -> f64 {
        let mut pipe = LatencyPipeline::new(config, seed);
        (0..frames)
            .map(|_| pipe.next_frame(0.4).computing().as_millis_f64())
            .sum::<f64>()
            / frames as f64
    }

    #[test]
    fn deployed_config_means_164ms() {
        // Sec. V-C: mean computing latency 164 ms.
        let mean = mean_computing_ms(&VehicleConfig::perceptin_pod(), 4000, 1);
        assert!((140.0..190.0).contains(&mean), "mean computing {mean} ms");
    }

    #[test]
    fn sensing_is_about_half_the_latency() {
        // Paper: "sensing, while less-studied, constitutes almost 50% of
        // the SoV latency".
        let mut pipe = LatencyPipeline::new(&VehicleConfig::perceptin_pod(), 2);
        let (mut sens, mut comp) = (0.0, 0.0);
        for _ in 0..3000 {
            let f = pipe.next_frame(0.4);
            sens += f.sensing.as_millis_f64();
            comp += f.computing().as_millis_f64();
        }
        let frac = sens / comp;
        assert!((0.38..0.62).contains(&frac), "sensing fraction {frac}");
    }

    #[test]
    fn planning_is_one_percent() {
        let mut pipe = LatencyPipeline::new(&VehicleConfig::perceptin_pod(), 3);
        let (mut plan, mut comp) = (0.0, 0.0);
        for _ in 0..2000 {
            let f = pipe.next_frame(0.4);
            plan += f.planning.as_millis_f64();
            comp += f.computing().as_millis_f64();
        }
        let frac = plan / comp;
        assert!(frac < 0.04, "planning fraction {frac}");
    }

    #[test]
    fn mobile_soc_variant_is_much_slower() {
        let pod = mean_computing_ms(&VehicleConfig::perceptin_pod(), 1500, 4);
        let tx2 = mean_computing_ms(&VehicleConfig::mobile_soc_variant(), 1500, 4);
        // Sec. V-A: TX2 perception alone is 844 ms.
        assert!(tx2 > pod * 4.0, "TX2 {tx2} ms vs pod {pod} ms");
    }

    #[test]
    fn complexity_slows_localization() {
        let cfg = VehicleConfig::perceptin_pod();
        let mut calm = LatencyPipeline::new(&cfg, 5);
        let mut busy = LatencyPipeline::new(&cfg, 5);
        let n = 2000;
        let calm_loc: f64 = (0..n)
            .map(|_| calm.next_frame(0.1).localization.as_millis_f64())
            .sum::<f64>()
            / f64::from(n);
        let busy_loc: f64 = (0..n)
            .map(|_| busy.next_frame(0.9).localization.as_millis_f64())
            .sum::<f64>()
            / f64::from(n);
        assert!(
            busy_loc > calm_loc * 1.3,
            "busy {busy_loc} vs calm {calm_loc}"
        );
    }

    #[test]
    fn kcf_fallback_creates_latency_tail() {
        let mut pipe = LatencyPipeline::new(&VehicleConfig::perceptin_pod(), 6);
        let mut kcf_frames = Vec::new();
        let mut sync_frames = Vec::new();
        for _ in 0..3000 {
            let f = pipe.next_frame(0.4);
            if f.kcf_fallback {
                kcf_frames.push(f.tracking.as_millis_f64());
            } else {
                sync_frames.push(f.tracking.as_millis_f64());
            }
        }
        assert!(!kcf_frames.is_empty(), "fallback should occur at 5% rate");
        let kcf_mean = kcf_frames.iter().sum::<f64>() / kcf_frames.len() as f64;
        let sync_mean = sync_frames.iter().sum::<f64>() / sync_frames.len() as f64;
        assert!(
            kcf_mean > 50.0 * sync_mean,
            "KCF {kcf_mean} vs sync {sync_mean}"
        );
    }

    #[test]
    fn pipelined_throughput_is_bottleneck_bound_and_latency_is_unchanged() {
        let mut pipe = LatencyPipeline::new(&VehicleConfig::perceptin_pod(), 9);
        let mut speedups = 0.0;
        for _ in 0..2000 {
            let f = pipe.next_frame(0.4);
            // Depth 1 is the serial schedule: interval == T_comp (Eq. 1).
            assert_eq!(f.initiation_interval(1), f.computing());
            assert_eq!(f.initiation_interval(0), f.computing());
            // Deeper pipelines collapse the interval to the slowest stage;
            // per-frame latency (Eq. 1) is untouched by construction.
            let b = f.initiation_interval(3);
            assert_eq!(b, f.bottleneck());
            assert!(b >= f.sensing && b >= f.perception() && b >= f.planning);
            assert!(b <= f.computing());
            assert!((f.pipeline_speedup(2) - f.pipeline_speedup(4)).abs() < 1e-12);
            speedups += f.pipeline_speedup(3);
        }
        // Sensing ≈ perception ≈ half of T_comp on the deployed pod, so
        // overlapping the stages roughly doubles throughput.
        let mean = speedups / 2000.0;
        assert!((1.5..3.0).contains(&mean), "mean pipeline speedup {mean}");
    }

    #[test]
    fn lane_occupancy_saturates_the_bottleneck_when_pipelined() {
        let mut pipe = LatencyPipeline::new(&VehicleConfig::perceptin_pod(), 11);
        for _ in 0..500 {
            let f = pipe.next_frame(0.4);
            let serial = f.lane_occupancy(1);
            // Depth 1: the stages time-share one T_comp beat.
            let sum: f64 = serial.iter().sum();
            assert!(sum <= 1.0 + 1e-12, "serial occupancies sum to {sum}");
            // Depth ≥ 2: the bottleneck lane is fully occupied, the rest
            // proportionally to their stage length.
            let piped = f.lane_occupancy(3);
            let max = piped.iter().fold(0.0f64, |a, &b| a.max(b));
            assert!((max - 1.0).abs() < 1e-12, "bottleneck occupancy {max}");
            for o in piped {
                assert!((0.0..=1.0 + 1e-12).contains(&o));
            }
        }
    }

    #[test]
    fn keyframes_occur_at_interval_in_calm_scenes() {
        let mut pipe = LatencyPipeline::new(&VehicleConfig::perceptin_pod(), 7);
        let keyframes = (0..1000).filter(|_| pipe.next_frame(0.0).keyframe).count();
        assert_eq!(keyframes, 200, "every 5th frame in zero-complexity scenes");
    }
}
