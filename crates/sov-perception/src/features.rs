//! Feature extraction and tracking (Sec. V-B3).
//!
//! "Our localization algorithm relies on salient features; features in key
//! frames are extracted by a feature extraction algorithm (ORB in the
//! paper), whereas features in non-key frames are tracked from previous
//! frames (KLT); the latter executes in 10 ms, 50% faster than the former."
//!
//! This module implements the workload pair for real pixels: a FAST-9
//! corner detector with non-maximum suppression ([`fast_corners`]) as the
//! keyframe extractor, and an NCC-based local patch search
//! ([`track_features`]) as the non-keyframe tracker. The criterion bench
//! `bench_perception` measures both; extraction costs more than tracking,
//! which is exactly the asymmetry the runtime-partial-reconfiguration
//! engine exploits by time-sharing one FPGA region between the two kernels.

use crate::image::{ncc, GrayImage};

/// One detected corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    /// Pixel x.
    pub x: usize,
    /// Pixel y.
    pub y: usize,
    /// FAST score (sum of absolute circle-center differences of the
    /// contiguous arc).
    pub score: f32,
}

/// The 16-pixel Bresenham circle of radius 3 used by FAST.
const CIRCLE: [(isize, isize); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// FAST-9 corner detection with 3×3 non-maximum suppression.
///
/// A pixel is a corner if at least 9 contiguous pixels on the radius-3
/// circle are all brighter than `center + threshold` or all darker than
/// `center − threshold`.
#[must_use]
pub fn fast_corners(image: &GrayImage, threshold: f32) -> Vec<Corner> {
    let (w, h) = (image.width(), image.height());
    if w < 7 || h < 7 {
        return Vec::new();
    }
    let mut scores = vec![0.0f32; w * h];
    for y in 3..h - 3 {
        for x in 3..w - 3 {
            if let Some(score) = fast_score(image, x as isize, y as isize, threshold) {
                scores[y * w + x] = score;
            }
        }
    }
    // Non-maximum suppression over 3×3 neighborhoods.
    let mut corners = Vec::new();
    for y in 3..h - 3 {
        for x in 3..w - 3 {
            let s = scores[y * w + x];
            if s <= 0.0 {
                continue;
            }
            let mut is_max = true;
            'nms: for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = (x as isize + dx) as usize;
                    let ny = (y as isize + dy) as usize;
                    let neighbor = scores[ny * w + nx];
                    if neighbor > s || (neighbor == s && (dy < 0 || (dy == 0 && dx < 0))) {
                        is_max = false;
                        break 'nms;
                    }
                }
            }
            if is_max {
                corners.push(Corner { x, y, score: s });
            }
        }
    }
    corners.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    corners
}

/// FAST-9 test at one pixel; returns the corner score if it passes.
fn fast_score(image: &GrayImage, x: isize, y: isize, threshold: f32) -> Option<f32> {
    let center = image.get(x, y);
    // Classify each circle pixel: +1 brighter, −1 darker, 0 similar.
    let mut classes = [0i8; 16];
    let mut diffs = [0.0f32; 16];
    for (i, &(dx, dy)) in CIRCLE.iter().enumerate() {
        let v = image.get(x + dx, y + dy);
        diffs[i] = (v - center).abs();
        classes[i] = if v > center + threshold {
            1
        } else if v < center - threshold {
            -1
        } else {
            0
        };
    }
    // Longest contiguous arc of one non-zero class (wrap-around).
    for &target in &[1i8, -1] {
        let mut best_run = 0usize;
        let mut run = 0usize;
        let mut best_start = 0usize;
        for i in 0..32 {
            if classes[i % 16] == target {
                if run == 0 {
                    best_start = i;
                }
                run += 1;
                if run > best_run {
                    best_run = run;
                    if best_run >= 16 {
                        break;
                    }
                }
            } else {
                run = 0;
            }
        }
        if best_run >= 9 {
            let score: f32 = (best_start..best_start + best_run.min(16))
                .map(|i| diffs[i % 16])
                .sum();
            return Some(score);
        }
    }
    None
}

/// Tracks feature points from `prev` to `next` by NCC search over a square
/// window; the KLT stand-in used for non-keyframes.
///
/// Returns one entry per input point: the new position, or `None` when the
/// best correlation falls below `min_ncc` (track lost).
#[must_use]
pub fn track_features(
    prev: &GrayImage,
    next: &GrayImage,
    points: &[(usize, usize)],
    patch_size: usize,
    search_radius: isize,
    min_ncc: f64,
) -> Vec<Option<(usize, usize)>> {
    points
        .iter()
        .map(|&(px, py)| {
            let template = prev.patch(px as isize, py as isize, patch_size);
            let mut best: Option<(usize, usize, f64)> = None;
            for dy in -search_radius..=search_radius {
                for dx in -search_radius..=search_radius {
                    let cx = px as isize + dx;
                    let cy = py as isize + dy;
                    if cx < 0 || cy < 0 {
                        continue;
                    }
                    let candidate = next.patch(cx, cy, patch_size);
                    let corr = ncc(&template, &candidate);
                    if best.is_none_or(|(_, _, c)| corr > c) {
                        best = Some((cx as usize, cy as usize, corr));
                    }
                }
            }
            best.and_then(|(x, y, c)| (c >= min_ncc).then_some((x, y)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Draws a bright axis-aligned rectangle on a dark background — crisp
    /// corners for FAST.
    fn rectangle_image(
        w: usize,
        h: usize,
        x0: usize,
        y0: usize,
        x1: usize,
        y1: usize,
    ) -> GrayImage {
        let mut img = GrayImage::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let inside = x >= x0 && x < x1 && y >= y0 && y < y1;
                img.set(x as isize, y as isize, if inside { 0.9 } else { 0.1 });
            }
        }
        img
    }

    #[test]
    fn detects_rectangle_corners() {
        let img = rectangle_image(64, 64, 20, 20, 44, 44);
        let corners = fast_corners(&img, 0.2);
        assert!(!corners.is_empty(), "rectangle corners must fire FAST");
        // Every detection is near one of the four true corners.
        for c in &corners {
            let near =
                [(20, 20), (43, 20), (20, 43), (43, 43)]
                    .iter()
                    .any(|&(tx, ty): &(i32, i32)| {
                        (c.x as i32 - tx).abs() <= 3 && (c.y as i32 - ty).abs() <= 3
                    });
            assert!(near, "spurious corner at ({}, {})", c.x, c.y);
        }
    }

    #[test]
    fn flat_image_has_no_corners() {
        let img = GrayImage::new(64, 64);
        assert!(fast_corners(&img, 0.1).is_empty());
    }

    #[test]
    fn straight_edges_are_not_corners() {
        // A half-plane: edges but no corners inside the detection band.
        let mut img = GrayImage::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                img.set(x, y, if x < 32 { 0.1 } else { 0.9 });
            }
        }
        let corners = fast_corners(&img, 0.2);
        assert!(corners.is_empty(), "an edge alone fired FAST: {corners:?}");
    }

    #[test]
    fn nms_keeps_detections_sparse() {
        let img = rectangle_image(64, 64, 16, 16, 48, 48);
        let corners = fast_corners(&img, 0.2);
        // Without NMS a crisp corner fires on several adjacent pixels; with
        // NMS a handful of detections remain.
        assert!(corners.len() <= 12, "NMS left {} detections", corners.len());
        // Sorted by score, descending.
        for w in corners.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn tracking_recovers_known_shift() {
        let prev = rectangle_image(96, 64, 30, 20, 60, 44);
        let next = rectangle_image(96, 64, 35, 22, 65, 46); // shift (+5, +2)
        let corners = fast_corners(&prev, 0.2);
        assert!(!corners.is_empty());
        let points: Vec<(usize, usize)> = corners.iter().map(|c| (c.x, c.y)).collect();
        let tracked = track_features(&prev, &next, &points, 9, 8, 0.6);
        let mut matched = 0;
        for (i, t) in tracked.iter().enumerate() {
            if let Some((nx, ny)) = t {
                matched += 1;
                let dx = *nx as i32 - points[i].0 as i32;
                let dy = *ny as i32 - points[i].1 as i32;
                assert!(
                    (dx - 5).abs() <= 1 && (dy - 2).abs() <= 1,
                    "shift ({dx}, {dy})"
                );
            }
        }
        assert!(
            matched >= points.len() / 2,
            "only {matched}/{} tracked",
            points.len()
        );
    }

    #[test]
    fn lost_tracks_return_none() {
        let prev = rectangle_image(64, 64, 20, 20, 44, 44);
        let next = GrayImage::new(64, 64); // target vanished
        let tracked = track_features(&prev, &next, &[(20, 20)], 9, 6, 0.6);
        assert_eq!(tracked, vec![None]);
    }

    #[test]
    fn tiny_image_is_safe() {
        let img = GrayImage::new(5, 5);
        assert!(fast_corners(&img, 0.1).is_empty());
    }
}
