//! Angle wrapping and interpolation helpers.
//!
//! The planar pose math in [`crate::se3`], the VIO filter, and the MPC
//! planner all need heading angles normalized to a common branch; this module
//! centralizes that logic.

use std::f64::consts::PI;

/// Wraps an angle (radians) into `(-π, π]`.
///
/// # Example
///
/// ```
/// use std::f64::consts::PI;
/// let wrapped = sov_math::angle::wrap(3.0 * PI);
/// assert!((wrapped - PI).abs() < 1e-12);
/// ```
#[must_use]
pub fn wrap(theta: f64) -> f64 {
    let mut t = theta % (2.0 * PI);
    if t <= -PI {
        t += 2.0 * PI;
    } else if t > PI {
        t -= 2.0 * PI;
    }
    t
}

/// Smallest signed difference `a - b`, wrapped into `(-π, π]`.
#[must_use]
pub fn diff(a: f64, b: f64) -> f64 {
    wrap(a - b)
}

/// Linear interpolation between two angles along the shortest arc.
///
/// `t = 0` yields `a`, `t = 1` yields `b`.
#[must_use]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    wrap(a + diff(b, a) * t)
}

/// Converts degrees to radians.
#[must_use]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * PI / 180.0
}

/// Converts radians to degrees.
#[must_use]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / PI
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_identity_in_range() {
        for &t in &[-3.0, -1.0, 0.0, 1.0, 3.0] {
            assert!((wrap(t) - t).abs() < 1e-12 || t.abs() > PI);
        }
        assert!((wrap(0.5) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn wrap_large_angles() {
        assert!((wrap(2.0 * PI)).abs() < 1e-12);
        assert!((wrap(-2.0 * PI)).abs() < 1e-12);
        assert!((wrap(5.0 * PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn wrap_boundary_is_positive_pi() {
        // -π maps to +π so the range is half-open (-π, π].
        assert!((wrap(-PI) - PI).abs() < 1e-12);
        assert!((wrap(PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn diff_shortest_path() {
        // 350° to 10° should be +20°, not -340°.
        let d = diff(deg_to_rad(10.0), deg_to_rad(350.0));
        assert!((d - deg_to_rad(20.0)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = deg_to_rad(350.0);
        let b = deg_to_rad(10.0);
        assert!((diff(lerp(a, b, 0.0), a)).abs() < 1e-12);
        assert!((diff(lerp(a, b, 1.0), b)).abs() < 1e-12);
        // Midpoint crosses zero.
        assert!(lerp(a, b, 0.5).abs() < 1e-12);
    }

    #[test]
    fn deg_rad_roundtrip() {
        for &d in &[0.0, 45.0, 90.0, -120.0, 359.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-10);
        }
    }
}
