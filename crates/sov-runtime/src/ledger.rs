//! End-to-end tail-latency attribution (COLA layer).
//!
//! The paper's Eq. 1 bounds *end-to-end* frame latency, but a bound is
//! only actionable if every nanosecond of a slow frame can be blamed on
//! something: stage compute, ring-queue wait, or a drain/barrier stall on
//! the control path. The COLA argument (PAPERS.md) is that L4 safety
//! hangs on the p99.9/max tail of exactly this decomposition — the median
//! tells you nothing about the one frame in a thousand that arrives late.
//!
//! [`LatencyLedger`] is the recording half: an allocation-free (arena
//! backed) log of per-stage and per-frame samples, written exclusively by
//! the sequencer thread of a drive or replay. Every sample carries an
//! exact telescoping decomposition of its measured span:
//!
//! ```text
//! span = (t1 − t0)   queue-in:  dispatch → lane picks the job up
//!      + (t2 − t1)   compute:   the stage's own work
//!      + (t3 − t2)   done-wait: result ready → sequencer absorbs it
//! ```
//!
//! with the done-wait further split into **stall** (the portion the
//! sequencer spent *blocked* waiting for this result — measured against a
//! pre-`recv` stamp at every blocking site) and queue-out (the result sat
//! in the done ring while the sequencer did other work). All four stamps
//! come from one monotonic clock, so the components sum to the directly
//! measured span exactly; [`StageSample::residual_ns`] is the audit of
//! that identity and is proptested to stay within one timer tick across
//! every depth × worker × fault combination.
//!
//! The ledger is pure telemetry: it is written with interior mutability
//! from the sequencer only, never read back into any computed value, and
//! therefore cannot perturb the bit-identity invariant. [`TailPolicy`]
//! lives here too (the knob is runtime state like the pipeline depth),
//! but the policy *mechanisms* — deadline prediction, priority draining,
//! shedding — live in `sov-core`, where determinism is argued.

use crate::arena::FrameArena;
use std::cell::{Cell, RefCell};
use std::time::Instant;

/// Number of attributed pipeline stages (sensing, perception, planning) —
/// indexed by the [`crate::LaneOccupancy`] lane constants.
pub const STAGES: usize = 3;

/// One stage's latency decomposition for one frame.
///
/// Built from four monotonic stamps (`t0` dispatch, `t1` compute start,
/// `t2` compute end, `t3` absorbed) plus the blocked-wait measured at the
/// absorbing `recv`; see the module docs for the telescoping identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSample {
    /// Frame index (camera frame for sensing/perception, control frame
    /// for planning).
    pub frame: u64,
    /// Stage index (a [`crate::LaneOccupancy`] lane constant).
    pub stage: usize,
    /// Directly measured dispatch→absorb span (`t3 − t0`), ns.
    pub span_ns: u64,
    /// Ring-queue wait: job wait before compute plus result wait in the
    /// done ring while the sequencer was busy elsewhere, ns.
    pub queue_ns: u64,
    /// The stage's own compute time (`t2 − t1`), ns.
    pub compute_ns: u64,
    /// Time the sequencer spent *blocked* on this result (drain/barrier
    /// stall on the control path), ns.
    pub stall_ns: u64,
}

impl StageSample {
    /// Builds a sample from the four stamps plus the sequencer's blocked
    /// wait at the absorbing site (`0` for non-blocking absorbs).
    ///
    /// An inline execution passes `t0 == t1` and `t2 == t3` (no queues,
    /// no stall), which degenerates to `span == compute` exactly.
    #[must_use]
    pub fn from_stamps(
        stage: usize,
        frame: u64,
        t0: Instant,
        t1: Instant,
        t2: Instant,
        t3: Instant,
        stall_ns: u64,
    ) -> Self {
        let span_ns = t3.saturating_duration_since(t0).as_nanos() as u64;
        let queue_in = t1.saturating_duration_since(t0).as_nanos() as u64;
        let compute_ns = t2.saturating_duration_since(t1).as_nanos() as u64;
        let done_wait = t3.saturating_duration_since(t2).as_nanos() as u64;
        // The stall cannot exceed the done-wait it is a part of.
        let stall_ns = stall_ns.min(done_wait);
        Self {
            frame,
            stage,
            span_ns,
            queue_ns: queue_in + (done_wait - stall_ns),
            compute_ns,
            stall_ns,
        }
    }

    /// Absolute difference between the measured span and the sum of its
    /// attributed components — zero when the decomposition is exact.
    #[must_use]
    pub fn residual_ns(&self) -> u64 {
        let sum = self.queue_ns + self.compute_ns + self.stall_ns;
        self.span_ns.abs_diff(sum)
    }
}

/// One control frame's end-to-end latency on the control-critical path:
/// planning dispatch → ECU commit, with the same queue/compute/stall
/// split as [`StageSample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSample {
    /// Control frame index.
    pub frame: u64,
    /// Directly measured dispatch→commit span, ns.
    pub total_ns: u64,
    /// Compute component, ns.
    pub compute_ns: u64,
    /// Ring-queue component, ns.
    pub queue_ns: u64,
    /// Sequencer blocked-wait component, ns.
    pub stall_ns: u64,
    /// Whether the vehicle was degraded (non-Nominal) at dispatch.
    pub degraded: bool,
}

impl FrameSample {
    /// Derives the control frame's sample from its planning-stage sample.
    #[must_use]
    pub fn from_stage(s: &StageSample, degraded: bool) -> Self {
        Self {
            frame: s.frame,
            total_ns: s.span_ns,
            compute_ns: s.compute_ns,
            queue_ns: s.queue_ns,
            stall_ns: s.stall_ns,
            degraded,
        }
    }

    /// Absolute difference between the measured total and the component
    /// sum — the per-frame half of the attribution audit.
    #[must_use]
    pub fn residual_ns(&self) -> u64 {
        let sum = self.compute_ns + self.queue_ns + self.stall_ns;
        self.total_ns.abs_diff(sum)
    }
}

/// The deadline-driven tail-optimization knobs, threaded through
/// [`crate::PerfContext`]. Both default **off**: the nominal schedule is
/// the reference that everything else must match bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TailPolicy {
    /// Priority draining: when the deadline monitor predicts an Eq. 1
    /// overrun, the sequencer block-drains in-flight plan commits *ahead
    /// of* dispatching speculative front-end work. Pure reordering of
    /// already-proven-safe eager commits — output-invariant, so a
    /// drain-enabled drive stays byte-identical to serial.
    pub drain: bool,
    /// Adaptive shedding: when the monitor predicts a *severe* overrun,
    /// the lowest-priority pending stage (the speculative camera frame)
    /// is dropped for that slot. Deterministic (driven only by modeled
    /// latencies) but **output-changing**: a shed drive matches the
    /// serial drive running the same policy, not the nominal drive.
    pub shed: bool,
}

impl TailPolicy {
    /// Priority draining only (the output-invariant optimization).
    #[must_use]
    pub fn draining() -> Self {
        Self {
            drain: true,
            shed: false,
        }
    }

    /// Draining plus shedding (the escalation step).
    #[must_use]
    pub fn draining_and_shedding() -> Self {
        Self {
            drain: true,
            shed: true,
        }
    }
}

/// Per-frame attribution of a [`crate::pipeline::FramePipeline`] replay
/// frame: per-stage compute plus the frame's aggregate queue and stall
/// components, summing exactly to the measured sense-start→commit span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameAttribution {
    /// Frame index.
    pub frame: u64,
    /// Compute time per stage (sense, perceive, plan+commit), ns.
    pub compute_ns: [u64; STAGES],
    /// Inter-stage ring-queue wait, ns.
    pub queue_ns: u64,
    /// Commit-thread blocked wait, ns.
    pub stall_ns: u64,
    /// Directly measured sense-start→commit-end span, ns.
    pub total_ns: u64,
}

impl FrameAttribution {
    /// Builds the attribution from the stage stamps: `a0..a1` sense,
    /// `b0..b1` perceive, `c0..c1` plan+commit, with `t_r` the commit
    /// thread's pre-`recv` stamp (stall measurement).
    #[allow(clippy::too_many_arguments, clippy::similar_names)]
    #[must_use]
    pub fn from_stamps(
        frame: u64,
        a0: Instant,
        a1: Instant,
        b0: Instant,
        b1: Instant,
        t_r: Instant,
        c0: Instant,
        c1: Instant,
    ) -> Self {
        let ns = |d: std::time::Duration| d.as_nanos() as u64;
        let compute = [
            ns(a1.saturating_duration_since(a0)),
            ns(b1.saturating_duration_since(b0)),
            ns(c1.saturating_duration_since(c0)),
        ];
        let q_sense = ns(b0.saturating_duration_since(a1));
        let done_wait = ns(c0.saturating_duration_since(b1));
        let stall_ns = ns(c0.saturating_duration_since(if t_r > b1 { t_r } else { b1 }));
        let stall_ns = stall_ns.min(done_wait);
        Self {
            frame,
            compute_ns: compute,
            queue_ns: q_sense + (done_wait - stall_ns),
            stall_ns,
            total_ns: ns(c1.saturating_duration_since(a0)),
        }
    }

    /// Span-vs-components audit, as in [`StageSample::residual_ns`].
    #[must_use]
    pub fn residual_ns(&self) -> u64 {
        let sum = self.compute_ns.iter().sum::<u64>() + self.queue_ns + self.stall_ns;
        self.total_ns.abs_diff(sum)
    }
}

/// Event counters accumulated by a [`LatencyLedger`] over one drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerCounters {
    /// Camera events where the sequencer block-drained pending plan
    /// commits ahead of speculative front-end work.
    pub priority_drains: u64,
    /// Camera frames shed by the escalation policy.
    pub sheds: u64,
    /// Control ticks at which the deadline monitor predicted an Eq. 1
    /// overrun.
    pub overruns_predicted: u64,
}

/// The allocation-free latency ledger: sample buffers are borrowed from
/// the [`FrameArena`] at [`begin`](LatencyLedger::begin) and recycled at
/// [`finish`](LatencyLedger::finish), so a warm drive records its entire
/// tail breakdown without touching the heap (the same discipline as every
/// other per-frame buffer).
///
/// Written only from the sequencer thread (interior mutability, not
/// `Sync` — the owning [`crate::PerfContext`] already is not).
#[derive(Debug, Default)]
pub struct LatencyLedger {
    stages: RefCell<Vec<StageSample>>,
    frames: RefCell<Vec<FrameSample>>,
    priority_drains: Cell<u64>,
    sheds: Cell<u64>,
    overruns: Cell<u64>,
}

impl LatencyLedger {
    /// Starts a recording: clears counters and borrows sample buffers
    /// from `arena` when the ledger holds none (a prior
    /// [`finish`](Self::finish) handed them back).
    pub fn begin(&self, arena: &FrameArena) {
        let mut stages = self.stages.borrow_mut();
        let mut frames = self.frames.borrow_mut();
        if stages.capacity() == 0 {
            *stages = arena.take();
        }
        if frames.capacity() == 0 {
            *frames = arena.take();
        }
        stages.clear();
        frames.clear();
        self.priority_drains.set(0);
        self.sheds.set(0);
        self.overruns.set(0);
    }

    /// Records one stage sample.
    pub fn record_stage(&self, sample: StageSample) {
        self.stages.borrow_mut().push(sample);
    }

    /// Records one control frame's end-to-end sample.
    pub fn record_frame(&self, sample: FrameSample) {
        self.frames.borrow_mut().push(sample);
    }

    /// Notes a priority drain (see [`LedgerCounters`]).
    pub fn note_priority_drain(&self) {
        self.priority_drains.set(self.priority_drains.get() + 1);
    }

    /// Notes a shed camera frame.
    pub fn note_shed(&self) {
        self.sheds.set(self.sheds.get() + 1);
    }

    /// Notes a predicted deadline overrun.
    pub fn note_overrun(&self) {
        self.overruns.set(self.overruns.get() + 1);
    }

    /// The event counters recorded since [`begin`](Self::begin).
    #[must_use]
    pub fn counters(&self) -> LedgerCounters {
        LedgerCounters {
            priority_drains: self.priority_drains.get(),
            sheds: self.sheds.get(),
            overruns_predicted: self.overruns.get(),
        }
    }

    /// Read access to the recorded samples (stage samples, then frame
    /// samples), without moving them out.
    pub fn with_samples<R>(&self, f: impl FnOnce(&[StageSample], &[FrameSample]) -> R) -> R {
        f(&self.stages.borrow(), &self.frames.borrow())
    }

    /// Ends a recording: hands the sample buffers back to `arena` with
    /// their capacity intact, so the next [`begin`](Self::begin) is
    /// allocation-free.
    pub fn finish(&self, arena: &FrameArena) {
        arena.recycle(std::mem::take(&mut *self.stages.borrow_mut()));
        arena.recycle(std::mem::take(&mut *self.frames.borrow_mut()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stamps(offsets_us: [u64; 4]) -> [Instant; 4] {
        let base = Instant::now();
        offsets_us.map(|us| base + Duration::from_micros(us))
    }

    #[test]
    fn stage_sample_decomposition_is_exact() {
        let [t0, t1, t2, t3] = stamps([0, 100, 350, 500]);
        let s = StageSample::from_stamps(1, 7, t0, t1, t2, t3, 60_000);
        assert_eq!(s.compute_ns, 250_000);
        assert_eq!(s.stall_ns, 60_000);
        assert_eq!(s.queue_ns, 100_000 + 90_000);
        assert_eq!(s.span_ns, 500_000);
        assert_eq!(s.residual_ns(), 0, "telescoping identity");
    }

    #[test]
    fn stall_is_clamped_to_the_done_wait() {
        let [t0, t1, t2, t3] = stamps([0, 10, 20, 30]);
        let s = StageSample::from_stamps(0, 0, t0, t1, t2, t3, u64::MAX);
        assert_eq!(s.stall_ns, 10_000);
        assert_eq!(s.residual_ns(), 0);
    }

    #[test]
    fn inline_sample_is_pure_compute() {
        let [t0, _, t2, _] = stamps([0, 0, 420, 0]);
        let s = StageSample::from_stamps(2, 3, t0, t0, t2, t2, 0);
        assert_eq!(s.compute_ns, s.span_ns);
        assert_eq!(s.queue_ns, 0);
        assert_eq!(s.stall_ns, 0);
        assert_eq!(s.residual_ns(), 0);
        let f = FrameSample::from_stage(&s, false);
        assert_eq!(f.total_ns, s.span_ns);
        assert_eq!(f.residual_ns(), 0);
    }

    #[test]
    fn frame_attribution_decomposition_is_exact() {
        let base = Instant::now();
        let [a0, a1, b0, b1, t_r, c0, c1] =
            [0u64, 50, 80, 200, 150, 260, 400].map(|us| base + Duration::from_micros(us));
        let attr = FrameAttribution::from_stamps(5, a0, a1, b0, b1, t_r, c0, c1);
        assert_eq!(attr.compute_ns, [50_000, 120_000, 140_000]);
        // done-wait 60 µs, blocked since before b1 → all stall.
        assert_eq!(attr.stall_ns, 60_000);
        assert_eq!(attr.queue_ns, 30_000);
        assert_eq!(attr.total_ns, 400_000);
        assert_eq!(attr.residual_ns(), 0);
    }

    #[test]
    fn ledger_round_trip_is_allocation_free_once_warm() {
        let arena = FrameArena::new();
        let led = LatencyLedger::default();
        let [t0, t1, t2, t3] = stamps([0, 1, 2, 3]);
        // Warm-up recording allocates the two buffers.
        led.begin(&arena);
        led.record_stage(StageSample::from_stamps(0, 0, t0, t1, t2, t3, 0));
        led.record_frame(FrameSample {
            frame: 0,
            total_ns: 1,
            compute_ns: 1,
            queue_ns: 0,
            stall_ns: 0,
            degraded: false,
        });
        led.note_priority_drain();
        led.note_shed();
        led.note_overrun();
        assert_eq!(
            led.counters(),
            LedgerCounters {
                priority_drains: 1,
                sheds: 1,
                overruns_predicted: 1
            }
        );
        led.with_samples(|stages, frames| {
            assert_eq!(stages.len(), 1);
            assert_eq!(frames.len(), 1);
        });
        led.finish(&arena);
        arena.reset_stats();
        // Steady state: begin/record/finish touches only recycled buffers.
        led.begin(&arena);
        assert_eq!(led.counters(), LedgerCounters::default(), "begin resets");
        led.record_stage(StageSample::from_stamps(1, 1, t0, t1, t2, t3, 0));
        led.with_samples(|stages, frames| {
            assert_eq!(stages.len(), 1, "begin cleared the old samples");
            assert!(frames.is_empty());
        });
        led.finish(&arena);
        assert_eq!(
            arena.stats().allocations,
            0,
            "warm ledger must not allocate"
        );
    }

    #[test]
    fn tail_policy_constructors() {
        assert_eq!(
            TailPolicy::default(),
            TailPolicy {
                drain: false,
                shed: false
            }
        );
        assert!(TailPolicy::draining().drain && !TailPolicy::draining().shed);
        let both = TailPolicy::draining_and_shedding();
        assert!(both.drain && both.shed);
    }
}
