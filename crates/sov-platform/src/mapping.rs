//! Algorithm → hardware mapping (Sec. V-B2, Fig. 8).
//!
//! Perception splits into two independent groups — *scene understanding*
//! (depth estimation + object detection/tracking, with detection→tracking
//! serialized) and *localization* — so perception latency is the **max** of
//! the two groups. Mapping both to the GPU makes them contend: the paper
//! measures scene understanding at 120 ms when sharing the GPU with
//! localization and 77 ms once localization moves to the FPGA (and
//! localization itself improves from 31 ms to 24 ms), a 1.6× perception
//! speedup translating to ~23% end-to-end latency reduction.

use crate::processor::{Platform, Task};

/// A mapping of the two perception groups to platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PerceptionMapping {
    /// Platform running depth estimation + detection/tracking.
    pub scene_understanding: Platform,
    /// Platform running VIO localization.
    pub localization: Platform,
}

/// Latency outcome of a mapping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingLatency {
    /// Scene-understanding group latency (ms).
    pub scene_understanding_ms: f64,
    /// Localization latency (ms).
    pub localization_ms: f64,
}

impl MappingLatency {
    /// Perception latency: the slower of the two independent groups.
    #[must_use]
    pub fn perception_ms(&self) -> f64 {
        self.scene_understanding_ms.max(self.localization_ms)
    }
}

/// GPU contention factor when both groups share the GPU, calibrated to
/// Fig. 8 (77 ms alone → 120 ms shared).
pub const GPU_CONTENTION_FACTOR: f64 = 120.0 / 77.0;

impl PerceptionMapping {
    /// The paper's chosen design: scene understanding on the GPU,
    /// localization on the FPGA.
    #[must_use]
    pub fn ours() -> Self {
        Self {
            scene_understanding: Platform::Gtx1060Gpu,
            localization: Platform::ZynqFpga,
        }
    }

    /// The strategies compared in Fig. 8.
    #[must_use]
    pub fn fig8_strategies() -> Vec<PerceptionMapping> {
        vec![
            // Both on the GPU (contended).
            Self {
                scene_understanding: Platform::Gtx1060Gpu,
                localization: Platform::Gtx1060Gpu,
            },
            // Ours: SU on GPU, localization on FPGA.
            Self::ours(),
            // TX2 as the localization sidecar.
            Self {
                scene_understanding: Platform::Gtx1060Gpu,
                localization: Platform::JetsonTx2,
            },
            // TX2 carrying scene understanding.
            Self {
                scene_understanding: Platform::JetsonTx2,
                localization: Platform::Gtx1060Gpu,
            },
            // Everything on TX2.
            Self {
                scene_understanding: Platform::JetsonTx2,
                localization: Platform::JetsonTx2,
            },
        ]
    }

    /// Mean latency of this mapping, applying GPU contention when both
    /// groups share the GPU (and an analogous factor for a shared TX2).
    #[must_use]
    pub fn latency(&self) -> MappingLatency {
        // Scene understanding: depth ∥ (detection → tracking) in the task
        // graph, but on a single execution engine the kernels serialize, so
        // the group cost is the sum of detection and depth (matching the
        // 77 ms GPU measurement of Fig. 8).
        let su_platform = self.scene_understanding;
        let depth = Task::DepthEstimation.profile(su_platform).mean_latency_ms();
        let detect = Task::ObjectDetection.profile(su_platform).mean_latency_ms();
        let mut su = detect + depth;
        let mut loc = Task::LocalizationKeyframe
            .profile(self.localization)
            .mean_latency_ms();
        if self.scene_understanding == self.localization {
            // Shared device: both groups contend.
            su *= GPU_CONTENTION_FACTOR;
            loc *= GPU_CONTENTION_FACTOR;
        }
        MappingLatency {
            scene_understanding_ms: su,
            localization_ms: loc,
        }
    }

    /// Perception speedup of this mapping relative to `baseline`.
    #[must_use]
    pub fn speedup_over(&self, baseline: &PerceptionMapping) -> f64 {
        baseline.latency().perception_ms() / self.latency().perception_ms()
    }
}

/// End-to-end latency reduction (fraction) obtained by replacing
/// `baseline`'s perception with `improved`'s, holding the rest of the
/// pipeline at `other_stages_ms` (sensing + planning).
#[must_use]
pub fn end_to_end_reduction(
    improved: &PerceptionMapping,
    baseline: &PerceptionMapping,
    other_stages_ms: f64,
) -> f64 {
    let before = baseline.latency().perception_ms() + other_stages_ms;
    let after = improved.latency().perception_ms() + other_stages_ms;
    (before - after) / before
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_matches_fig8_numbers() {
        let ours = PerceptionMapping::ours().latency();
        // Fig. 8: SU 77 ms on the GPU once localization is on the FPGA;
        // localization 24–27 ms on the FPGA.
        assert!(
            (ours.scene_understanding_ms - 77.0).abs() < 5.0,
            "SU {}",
            ours.scene_understanding_ms
        );
        assert!((ours.localization_ms - 27.0).abs() < 5.0);
        assert!((ours.perception_ms() - 77.0).abs() < 5.0);
    }

    #[test]
    fn shared_gpu_matches_fig8_contended_numbers() {
        let shared = PerceptionMapping {
            scene_understanding: Platform::Gtx1060Gpu,
            localization: Platform::Gtx1060Gpu,
        }
        .latency();
        // Fig. 8: "scene understanding takes 120 ms and dictates the
        // perception latency" when both share the GPU.
        assert!((shared.scene_understanding_ms - 120.0).abs() < 8.0);
        assert!((shared.perception_ms() - 120.0).abs() < 8.0);
    }

    #[test]
    fn offloading_gives_1_6x_speedup() {
        let shared = PerceptionMapping {
            scene_understanding: Platform::Gtx1060Gpu,
            localization: Platform::Gtx1060Gpu,
        };
        let speedup = PerceptionMapping::ours().speedup_over(&shared);
        assert!((speedup - 1.6).abs() < 0.1, "speedup {speedup}");
    }

    #[test]
    fn end_to_end_reduction_is_about_23_percent() {
        let shared = PerceptionMapping {
            scene_understanding: Platform::Gtx1060Gpu,
            localization: Platform::Gtx1060Gpu,
        };
        // Other stages: ~80 ms sensing + ~4 ms planning/CAN (Fig. 10a:
        // 164 ms total − ~77 ms perception).
        let reduction = end_to_end_reduction(&PerceptionMapping::ours(), &shared, 84.0);
        assert!((reduction - 0.21).abs() < 0.04, "reduction {reduction}");
    }

    #[test]
    fn tx2_mappings_are_bottlenecks() {
        // Sec. V-B2: "TX2 is always a latency bottleneck".
        let ours = PerceptionMapping::ours().latency().perception_ms();
        for m in PerceptionMapping::fig8_strategies() {
            if m.scene_understanding == Platform::JetsonTx2 || m.localization == Platform::JetsonTx2
            {
                assert!(
                    m.latency().perception_ms() > ours,
                    "TX2 mapping {m:?} should lose to ours"
                );
            }
        }
    }

    #[test]
    fn fig8_has_five_strategies_with_ours_best() {
        let strategies = PerceptionMapping::fig8_strategies();
        assert_eq!(strategies.len(), 5);
        let best = strategies
            .iter()
            .min_by(|a, b| {
                a.latency()
                    .perception_ms()
                    .partial_cmp(&b.latency().perception_ms())
                    .unwrap()
            })
            .unwrap();
        assert_eq!(*best, PerceptionMapping::ours());
    }
}
