//! Grayscale images and synthetic scene rendering.
//!
//! The dense stereo matcher and the KCF tracker operate on real pixel
//! arrays. Since we have no physical cameras, scenes are *rendered*: each
//! landmark in view becomes a textured Gaussian blob at its projected pixel
//! location, over a low-contrast noise background. Shifting the rendering
//! camera produces geometrically-consistent stereo pairs and tracking
//! sequences.

use sov_math::SovRng;

/// A row-major grayscale image of `f32` intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Self {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel intensity at `(x, y)`; returns 0.0 outside bounds.
    #[must_use]
    pub fn get(&self, x: isize, y: isize) -> f32 {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return 0.0;
        }
        self.data[y as usize * self.width + x as usize]
    }

    /// Sets pixel intensity (clamped to `[0, 1]`); ignores out-of-bounds.
    pub fn set(&mut self, x: isize, y: isize, value: f32) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        self.data[y as usize * self.width + x as usize] = value.clamp(0.0, 1.0);
    }

    /// Adds to a pixel (clamped); ignores out-of-bounds.
    pub fn add(&mut self, x: isize, y: isize, value: f32) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        let px = &mut self.data[y as usize * self.width + x as usize];
        *px = (*px + value).clamp(0.0, 1.0);
    }

    /// Raw data slice (row-major).
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Extracts a `size × size` patch centered at `(cx, cy)`; pixels outside
    /// the image read as 0.
    #[must_use]
    pub fn patch(&self, cx: isize, cy: isize, size: usize) -> GrayImage {
        let mut out = GrayImage::new(size, size);
        let half = (size / 2) as isize;
        for y in 0..size as isize {
            for x in 0..size as isize {
                out.set(x, y, self.get(cx - half + x, cy - half + y));
            }
        }
        out
    }

    /// Mean intensity.
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }
}

/// Renders a textured scene: background noise plus Gaussian blobs.
///
/// Each blob is `(center_x, center_y, radius_px, intensity)`. The same blob
/// list rendered with shifted centers produces a consistent stereo pair.
#[must_use]
pub fn render_scene(
    width: usize,
    height: usize,
    blobs: &[(f64, f64, f64, f64)],
    background_noise: f32,
    rng: &mut SovRng,
) -> GrayImage {
    let mut img = GrayImage::new(width, height);
    // Low-contrast background texture.
    for y in 0..height as isize {
        for x in 0..width as isize {
            img.set(x, y, 0.2 + background_noise * rng.next_f64() as f32);
        }
    }
    for &(cx, cy, radius, intensity) in blobs {
        let r = radius.max(0.5);
        let span = (3.0 * r).ceil() as isize;
        let (icx, icy) = (cx.round() as isize, cy.round() as isize);
        for dy in -span..=span {
            for dx in -span..=span {
                let d2 = ((icx + dx) as f64 - cx).powi(2) + ((icy + dy) as f64 - cy).powi(2);
                let v = intensity * (-d2 / (2.0 * r * r)).exp();
                img.add(icx + dx, icy + dy, v as f32);
            }
        }
    }
    img
}

/// Normalized cross-correlation of two equally-sized images, in `[-1, 1]`.
///
/// Returns 0.0 if either image has zero variance.
///
/// # Panics
///
/// Panics if the images have different dimensions.
#[must_use]
pub fn ncc(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "ncc requires equal dimensions"
    );
    let ma = f64::from(a.mean());
    let mb = f64::from(b.mean());
    let (mut num, mut va, mut vb) = (0.0, 0.0, 0.0);
    for (pa, pb) in a.data().iter().zip(b.data()) {
        let da = f64::from(*pa) - ma;
        let db = f64::from(*pb) - mb;
        num += da * db;
        va += da * da;
        vb += db * db;
    }
    if va < 1e-12 || vb < 1e-12 {
        return 0.0;
    }
    num / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip_and_bounds() {
        let mut img = GrayImage::new(8, 4);
        img.set(3, 2, 0.7);
        assert!((img.get(3, 2) - 0.7).abs() < 1e-6);
        assert_eq!(img.get(-1, 0), 0.0);
        assert_eq!(img.get(8, 0), 0.0);
        img.set(100, 100, 1.0); // silently ignored
        img.set(2, 2, 5.0);
        assert_eq!(img.get(2, 2), 1.0, "clamped to [0,1]");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_panics() {
        let _ = GrayImage::new(0, 4);
    }

    #[test]
    fn patch_extraction() {
        let mut img = GrayImage::new(16, 16);
        img.set(8, 8, 1.0);
        let p = img.patch(8, 8, 5);
        assert_eq!(p.width(), 5);
        assert_eq!(p.get(2, 2), 1.0, "center of patch is source center");
        // Patch at the border zero-pads.
        let edge = img.patch(0, 0, 5);
        assert_eq!(edge.get(0, 0), 0.0);
    }

    #[test]
    fn render_scene_places_blobs() {
        let mut rng = SovRng::seed_from_u64(1);
        let img = render_scene(64, 64, &[(32.0, 32.0, 2.0, 0.8)], 0.05, &mut rng);
        let center = img.get(32, 32);
        let corner = img.get(2, 2);
        assert!(center > corner + 0.3, "blob should dominate background");
    }

    #[test]
    fn ncc_detects_identical_and_shifted() {
        let mut rng = SovRng::seed_from_u64(2);
        let img = render_scene(32, 32, &[(16.0, 16.0, 3.0, 0.9)], 0.1, &mut rng);
        assert!((ncc(&img, &img) - 1.0).abs() < 1e-9);
        let shifted = img.patch(20, 16, 32);
        let same = img.patch(16, 16, 32);
        assert!(ncc(&img, &same) > ncc(&img, &shifted));
    }

    #[test]
    fn ncc_zero_variance_is_zero() {
        let flat = GrayImage::new(8, 8);
        let other = GrayImage::new(8, 8);
        assert_eq!(ncc(&flat, &other), 0.0);
    }

    #[test]
    fn deterministic_rendering() {
        let mut r1 = SovRng::seed_from_u64(3);
        let mut r2 = SovRng::seed_from_u64(3);
        let a = render_scene(16, 16, &[(8.0, 8.0, 1.5, 0.5)], 0.1, &mut r1);
        let b = render_scene(16, 16, &[(8.0, 8.0, 1.5, 0.5)], 0.1, &mut r2);
        assert_eq!(a, b);
    }
}
