//! Normal estimation and keypoint matching — the **recognition** workload
//! of Fig. 4.
//!
//! Object recognition in PCL pipelines starts from surface normals
//! (k-NN neighborhoods + plane fits) and matches local descriptors between
//! clouds. Both phases hammer the kd-tree with irregular queries.

use crate::cloud::{Point, PointCloud};
use crate::kdtree::{KdTree, Touch};
use sov_math::matrix::{Matrix, Vector};

/// Estimated surface normal at one point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Point index.
    pub index: usize,
    /// Unit normal.
    pub normal: [f64; 3],
    /// Surface curvature proxy (smallest eigenvalue ratio).
    pub curvature: f64,
}

/// Estimates normals for all points using `k`-neighborhoods.
#[must_use]
pub fn estimate_normals(cloud: &PointCloud, tree: &KdTree, k: usize) -> Vec<Normal> {
    estimate_normals_traced(cloud, tree, k, &mut |_| {})
}

/// Normal estimation with a memory-trace callback.
pub fn estimate_normals_traced(
    cloud: &PointCloud,
    tree: &KdTree,
    k: usize,
    trace: &mut impl FnMut(Touch),
) -> Vec<Normal> {
    let mut out = Vec::with_capacity(cloud.len());
    for (i, p) in cloud.points().iter().enumerate() {
        // Neighborhood via radius expansion around the kth NN distance;
        // trace the query cost through the kd-tree.
        let neighbors = neighborhood(tree, p, k, trace);
        if neighbors.len() < 3 {
            continue;
        }
        if let Some((normal, curvature)) = plane_normal(&neighbors) {
            out.push(Normal {
                index: i,
                normal,
                curvature,
            });
        }
    }
    out
}

/// Gathers ≈k neighbors of `p` by growing a traced radius search.
fn neighborhood(tree: &KdTree, p: &Point, k: usize, trace: &mut impl FnMut(Touch)) -> Vec<Point> {
    let mut radius = 0.3;
    for _ in 0..6 {
        let found = tree.radius_search_traced(p, radius, trace);
        if found.len() >= k {
            return found
                .into_iter()
                .take(k * 2)
                .map(|i| *tree.point(i))
                .collect();
        }
        radius *= 2.0;
    }
    tree.radius_search_traced(p, radius, trace)
        .into_iter()
        .map(|i| *tree.point(i))
        .collect()
}

/// Fits a plane to points by eigen-decomposing the 3×3 covariance with
/// Jacobi rotations; returns (unit normal, curvature).
fn plane_normal(points: &[Point]) -> Option<([f64; 3], f64)> {
    let n = points.len() as f64;
    let mut c = [0.0f64; 3];
    for p in points {
        for d in 0..3 {
            c[d] += p[d];
        }
    }
    for d in &mut c {
        *d /= n;
    }
    let mut cov = Matrix::<3, 3>::zeros();
    for p in points {
        let d = Vector::<3>::from_array([p[0] - c[0], p[1] - c[1], p[2] - c[2]]);
        cov += d.outer(&d);
    }
    cov = cov.scale(1.0 / n);
    let (eigenvalues, eigenvectors) = jacobi_eigen_3x3(&cov);
    // Smallest eigenvalue's eigenvector is the normal.
    let mut min_i = 0;
    for i in 1..3 {
        if eigenvalues[i] < eigenvalues[min_i] {
            min_i = i;
        }
    }
    let total: f64 = eigenvalues.iter().sum();
    if total < 1e-15 {
        return None;
    }
    let v = eigenvectors.col(min_i);
    let norm = v.norm();
    if norm < 1e-12 {
        return None;
    }
    Some((
        [v[0] / norm, v[1] / norm, v[2] / norm],
        (eigenvalues[min_i] / total).max(0.0),
    ))
}

/// Jacobi eigenvalue iteration for a symmetric 3×3 matrix. Returns
/// `(eigenvalues, eigenvector-columns)`.
fn jacobi_eigen_3x3(m: &Matrix<3, 3>) -> ([f64; 3], Matrix<3, 3>) {
    let mut a = *m;
    let mut v = Matrix::<3, 3>::identity();
    for _sweep in 0..30 {
        // Largest off-diagonal element.
        let (mut p, mut q, mut max) = (0usize, 1usize, 0.0f64);
        for i in 0..3 {
            for j in (i + 1)..3 {
                if a[(i, j)].abs() > max {
                    max = a[(i, j)].abs();
                    p = i;
                    q = j;
                }
            }
        }
        if max < 1e-14 {
            break;
        }
        let app = a[(p, p)];
        let aqq = a[(q, q)];
        let apq = a[(p, q)];
        // Standard Jacobi rotation angle.
        let phi = 0.5 * (2.0 * apq).atan2(app - aqq);
        let (s, c) = phi.sin_cos();
        let mut rot = Matrix::<3, 3>::identity();
        rot[(p, p)] = c;
        rot[(q, q)] = c;
        rot[(p, q)] = -s;
        rot[(q, p)] = s;
        a = rot.transpose() * a * rot;
        v = v * rot;
    }
    ([a[(0, 0)], a[(1, 1)], a[(2, 2)]], v)
}

/// A simple local descriptor: sorted squared distances to the `k` nearest
/// neighbors (rotation-invariant).
#[must_use]
pub fn descriptor(tree: &KdTree, p: &Point, k: usize) -> Vec<f64> {
    tree.k_nearest(p, k + 1)
        .into_iter()
        .skip(1) // drop self
        .map(|(_, d)| d)
        .collect()
}

/// Matches keypoints of `a` against `b` by descriptor distance; returns
/// `(index_in_a, index_in_b)` pairs passing a ratio test.
#[must_use]
pub fn match_keypoints(
    a: &PointCloud,
    tree_a: &KdTree,
    b: &PointCloud,
    tree_b: &KdTree,
    k: usize,
    stride: usize,
) -> Vec<(usize, usize)> {
    let stride = stride.max(1);
    let descs_b: Vec<(usize, Vec<f64>)> = (0..b.len())
        .step_by(stride)
        .map(|i| (i, descriptor(tree_b, &b.points()[i], k)))
        .collect();
    let mut pairs = Vec::new();
    for i in (0..a.len()).step_by(stride) {
        let da = descriptor(tree_a, &a.points()[i], k);
        let mut best = (usize::MAX, f64::INFINITY);
        let mut second = f64::INFINITY;
        for (j, db) in &descs_b {
            let dist: f64 = da.iter().zip(db).map(|(x, y)| (x - y) * (x - y)).sum();
            if dist < best.1 {
                second = best.1;
                best = (*j, dist);
            } else if dist < second {
                second = dist;
            }
        }
        if best.0 != usize::MAX && best.1 < 0.7 * second {
            pairs.push((i, best.0));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use sov_math::SovRng;

    fn flat_patch(n: usize, seed: u64) -> PointCloud {
        let mut rng = SovRng::seed_from_u64(seed);
        PointCloud::from_points(
            (0..n)
                .map(|_| {
                    [
                        rng.uniform(-2.0, 2.0),
                        rng.uniform(-2.0, 2.0),
                        rng.normal(0.0, 0.001),
                    ]
                })
                .collect(),
        )
    }

    #[test]
    fn normals_of_ground_plane_point_up() {
        let cloud = flat_patch(300, 1);
        let tree = KdTree::build(&cloud);
        let normals = estimate_normals(&cloud, &tree, 12);
        assert!(normals.len() > 250, "got {}", normals.len());
        for nrm in &normals {
            assert!(
                nrm.normal[2].abs() > 0.99,
                "normal {:?} not vertical",
                nrm.normal
            );
            assert!(nrm.curvature < 0.01, "plane has ~zero curvature");
        }
    }

    #[test]
    fn normals_of_vertical_wall_point_sideways() {
        let mut rng = SovRng::seed_from_u64(2);
        let cloud = PointCloud::from_points(
            (0..300)
                .map(|_| {
                    [
                        rng.uniform(-2.0, 2.0),
                        rng.normal(0.0, 0.001),
                        rng.uniform(0.0, 3.0),
                    ]
                })
                .collect(),
        );
        let tree = KdTree::build(&cloud);
        let normals = estimate_normals(&cloud, &tree, 12);
        for nrm in normals.iter().take(50) {
            assert!(nrm.normal[1].abs() > 0.99, "wall normal {:?}", nrm.normal);
        }
    }

    #[test]
    fn jacobi_diagonalizes() {
        let m = Matrix::<3, 3>::from_rows([[4.0, 1.0, 0.5], [1.0, 3.0, 0.2], [0.5, 0.2, 2.0]]);
        let (vals, vecs) = jacobi_eigen_3x3(&m);
        // Reconstruct: V diag(vals) Vᵀ = M.
        let d = Matrix::<3, 3>::from_diagonal(vals);
        let rec = vecs * d * vecs.transpose();
        assert!(rec.approx_eq(&m, 1e-8), "reconstruction failed: {rec:?}");
        // Trace preserved.
        assert!((vals.iter().sum::<f64>() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn descriptor_is_rotation_invariant() {
        let cloud = flat_patch(200, 3);
        let tree = KdTree::build(&cloud);
        let rotated = cloud.transformed(0.8, 0.0, 0.0);
        let tree_r = KdTree::build(&rotated);
        let d1 = descriptor(&tree, &cloud.points()[10], 8);
        let d2 = descriptor(&tree_r, &rotated.points()[10], 8);
        for (a, b) in d1.iter().zip(&d2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn keypoints_match_between_transformed_clouds() {
        let cloud = flat_patch(200, 4);
        let moved = cloud.transformed(0.3, 1.0, 0.5);
        let ta = KdTree::build(&cloud);
        let tb = KdTree::build(&moved);
        let pairs = match_keypoints(&cloud, &ta, &moved, &tb, 8, 5);
        assert!(!pairs.is_empty());
        // Since point order is preserved by transformed(), correct matches
        // have equal indices.
        let correct = pairs.iter().filter(|(i, j)| i == j).count();
        assert!(
            correct * 2 > pairs.len(),
            "majority of {} matches should be correct, got {correct}",
            pairs.len()
        );
    }
}
