//! A deterministic discrete-event queue.
//!
//! Events scheduled at the same timestamp pop in insertion (FIFO) order, so
//! simulations are bit-for-bit reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One pending event: a payload due at a time, with a FIFO sequence number.
#[derive(Debug, Clone)]
struct Entry<T> {
    due: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap: earliest due first, then lowest seq.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use sov_sim::event::EventQueue;
/// use sov_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "late");
/// q.schedule(SimTime::from_millis(1), "early");
/// let (t, what) = q.pop().unwrap();
/// assert_eq!((t, what), (SimTime::from_millis(1), "early"));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    now: SimTime,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue with the clock at zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (simulation "now").
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `due`.
    ///
    /// Scheduling in the past is allowed (the event pops immediately); this
    /// mirrors hardware queues where a late interrupt still fires.
    pub fn schedule(&mut self, due: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { due, seq, payload });
    }

    /// Pops the earliest event, advancing the clock to its due time.
    ///
    /// The clock never moves backwards: an event scheduled in the past pops
    /// at the current clock value.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let entry = self.heap.pop()?;
        if entry.due > self.now {
            self.now = entry.due;
        }
        Some((self.now, entry.payload))
    }

    /// Peeks at the due time of the next event without popping.
    #[must_use]
    pub fn peek_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.due)
    }

    /// Drains and returns all events due at or before `t`, in order.
    pub fn pop_until(&mut self, t: SimTime) -> Vec<(SimTime, T)> {
        let mut out = Vec::new();
        while self.peek_due().is_some_and(|due| due <= t) {
            if let Some(ev) = self.pop() {
                out.push(ev);
            }
        }
        out
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_at_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_millis(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (0..100).collect::<Vec<i32>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(5), "b");
        let (t1, _) = q.pop().unwrap();
        // Schedule an event "in the past" relative to the next pop.
        q.schedule(SimTime::from_millis(1), "late");
        let (t2, v2) = q.pop().unwrap();
        assert_eq!(t1, SimTime::from_millis(5));
        assert_eq!(v2, "late");
        assert_eq!(t2, SimTime::from_millis(5), "clock must not run backwards");
        assert_eq!(q.now(), SimTime::from_millis(5));
    }

    #[test]
    fn pop_until_partitions_correctly() {
        let mut q = EventQueue::new();
        for ms in [1u64, 2, 3, 10, 20] {
            q.schedule(SimTime::from_millis(ms), ms);
        }
        let early = q.pop_until(SimTime::from_millis(3));
        assert_eq!(early.len(), 3);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_due(), Some(SimTime::from_millis(10)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
        assert!(q.peek_due().is_none());
        assert!(q.pop_until(SimTime::from_millis(100)).is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), 1);
        let (t, _) = q.pop().unwrap();
        q.schedule(t + SimDuration::from_millis(2), 2);
        q.schedule(t + SimDuration::from_millis(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
