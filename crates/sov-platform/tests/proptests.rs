//! Property-based tests for the platform models.

use sov_platform::cache::CacheSim;
use sov_platform::rpr::{RprEngine, RprPath};
use sov_testkit::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_stats_are_conserved(addrs in prop::collection::vec(0u64..100_000, 1..500)) {
        let mut c = CacheSim::new(4096, 64, 4);
        for &a in &addrs {
            c.access(a);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        // Misses at least the number of distinct lines touched (compulsory)
        // is NOT guaranteed in general caches, but misses can never be
        // fewer than distinct lines minus capacity... the safe invariant:
        // misses ≥ distinct lines that were ever touched, bounded below by
        // the compulsory misses for lines never evicted. We check the
        // universal bound instead:
        let distinct: HashSet<u64> = addrs.iter().map(|a| a / 64).collect();
        prop_assert!(s.misses >= distinct.len() as u64);
        prop_assert!(s.miss_ratio() >= 0.0 && s.miss_ratio() <= 1.0);
    }

    #[test]
    fn repeated_single_line_hits_after_first(addr in 0u64..1_000_000, reps in 2usize..50) {
        let mut c = CacheSim::new(4096, 64, 4);
        for _ in 0..reps {
            c.access(addr);
        }
        prop_assert_eq!(c.stats().misses, 1);
        prop_assert_eq!(c.stats().hits, reps as u64 - 1);
    }

    #[test]
    fn rpr_conserves_bytes_and_bounds_throughput(size in 1u64..4_000_000) {
        let engine = RprEngine::default();
        let r = engine.reconfigure(size, RprPath::DecoupledEngine);
        prop_assert_eq!(r.bitstream_bytes, size);
        // The ICAP port is 4 bytes at 100 MHz: 400 MB/s is a hard ceiling.
        prop_assert!(r.throughput_mbps() <= 400.0 + 1e-6);
        prop_assert!(r.peak_fifo_occupancy <= 128);
        prop_assert!(r.duration.as_nanos() > 0);
    }

    #[test]
    fn rpr_time_scales_with_size(a in 1u64..1_000_000, factor in 2u64..8) {
        let engine = RprEngine::default();
        let small = engine.reconfigure(a, RprPath::DecoupledEngine);
        let large = engine.reconfigure(a * factor, RprPath::DecoupledEngine);
        prop_assert!(large.duration > small.duration);
    }
}

use sov_platform::alp::{deployed_assignment, schedule, DagNode, EdgeConfig, Site, SENSING_MS};
use sov_platform::processor::{Platform, Task};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedules_respect_the_critical_path(
        site_codes in prop::collection::vec(0usize..5, 5),
        rtt in 0.0f64..60.0,
    ) {
        let sites = Site::candidates();
        let mut assignment = deployed_assignment();
        for (node, &code) in DagNode::MOVABLE.iter().zip(&site_codes) {
            assignment.insert(*node, sites[code]);
        }
        let edge = EdgeConfig { rtt_ms: rtt, ..EdgeConfig::default() };
        let s = schedule(&assignment, &edge);
        // Lower bound: sensing + the cheapest possible detection+tracking+
        // planning chain (all on their fastest sites, zero contention).
        let min_chain: f64 = [Task::ObjectDetection, Task::SpatialSync, Task::MpcPlanning]
            .iter()
            .map(|t| {
                Platform::ALL
                    .iter()
                    .map(|&p| t.profile(p).mean_latency_ms())
                    .fold(f64::INFINITY, f64::min)
                    .min(t.profile(Platform::Gtx1060Gpu).mean_latency_ms() / edge.speedup_vs_gpu)
            })
            .sum();
        prop_assert!(s.latency_ms >= SENSING_MS + min_chain - 1e-9);
        prop_assert!(s.energy_j > 0.0);
        // Finish times are topologically consistent.
        for node in DagNode::TOPO {
            for &pred in node.predecessors() {
                prop_assert!(s.finish_ms[&node] >= s.finish_ms[&pred]);
            }
        }
    }

    #[test]
    fn edge_rtt_never_speeds_things_up(rtt_lo in 0.0f64..20.0, extra in 1.0f64..40.0) {
        let mut assignment = deployed_assignment();
        assignment.insert(DagNode::Detection, Site::Edge);
        let fast = schedule(&assignment, &EdgeConfig { rtt_ms: rtt_lo, ..EdgeConfig::default() });
        let slow = schedule(&assignment, &EdgeConfig { rtt_ms: rtt_lo + extra, ..EdgeConfig::default() });
        prop_assert!(slow.latency_ms >= fast.latency_ms);
    }
}
