//! The closed-loop Systems-on-a-Vehicle.
//!
//! [`Sov::drive`] runs a complete vehicle through a deployment scenario at
//! the 10 Hz control rate:
//!
//! * the **proactive path** — camera/VIO/GPS fusion → detection + radar
//!   tracking → MPC planning — produces control commands that reach the ECU
//!   only after the frame's sampled computing latency plus the CAN-bus
//!   delay (the full Fig. 2 chain), and
//! * the **reactive path** — radar/sonar minimum range fed straight into
//!   the ECU — overrides the actuator whenever an object gets inside the
//!   4.1 m envelope (Sec. IV), which is what keeps the vehicle safe when
//!   the proactive path is too slow or the detector misses an object.
//!
//! The report records how the drive went and the latency/engagement
//! statistics the paper quotes ("our deployed vehicles stay in the
//! proactive path for over 90% of the time").
//!
//! [`Sov::drive_with_plan`] additionally injects a [`FaultPlan`] —
//! camera stalls, GPS outages, ghost radar returns, CAN losses, compute
//! overruns — and a [`HealthMonitor`](crate::health::HealthMonitor)
//! degrades the vehicle through the modes of
//! [`DegradationMode`](crate::health::DegradationMode) instead of letting
//! a silent sensor drive the vehicle into an obstacle.

use crate::config::VehicleConfig;
use crate::health::{DegradationMode, HealthConfig, HealthMonitor};
use crate::pipeline::LatencyPipeline;
use crate::pool::PerfContext;
use sov_fault::{FaultKind, FaultPlan};
use sov_math::stats::Summary;
use sov_math::{angle, SovRng};
use sov_perception::detection::{Detector, DetectorProfile};
use sov_perception::fusion::{FusionConfig, GpsVioFusion};
use sov_perception::vio::{VioConfig, VioFilter, VisualFrontEnd};
use sov_planning::mpc::MpcPlanner;
use sov_planning::{Planner, PlanningInput, PlanningObstacle};
use sov_sensors::camera::Camera;
use sov_sensors::camera::Intrinsics;
use sov_sensors::gps::{GnssQuality, GpsConfig, GpsReceiver};
use sov_sensors::radar::RadarArray;
use sov_sensors::sonar::SonarArray;
use sov_sensors::sync::Synchronizer;
use sov_sim::time::{SimDuration, SimTime};
use sov_vehicle::battery::Battery;
use sov_vehicle::dynamics::VehicleState;
use sov_vehicle::ecu::Ecu;
use sov_world::obstacle::ObstacleClass;
use sov_world::scenario::Scenario;
use std::fmt;

/// How a drive ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriveOutcome {
    /// The route was completed or the frame budget expired while moving.
    Completed,
    /// The vehicle ended the run stationary (e.g. held by the reactive
    /// override or a blocked lane).
    Stopped,
    /// Ground-truth contact with an obstacle — a safety failure.
    Collision,
}

/// Errors starting a drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SovError {
    /// `max_frames` was zero.
    NoFrames,
}

impl fmt::Display for SovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoFrames => write!(f, "drive requires at least one frame"),
        }
    }
}

impl std::error::Error for SovError {}

/// Statistics of one drive.
///
/// `PartialEq` is exact (bitwise on every float): the determinism tests
/// assert that a pool-enabled drive produces a report identical to the
/// serial drive.
#[derive(Debug, Clone, PartialEq)]
pub struct DriveReport {
    /// Outcome.
    pub outcome: DriveOutcome,
    /// Control frames executed.
    pub frames: u64,
    /// Ground-truth distance covered (m).
    pub distance_m: f64,
    /// Number of reactive-override engagements.
    pub override_engagements: u64,
    /// Control ticks during which the override was engaged.
    pub override_ticks: u64,
    /// Computing latencies `T_comp` per frame (ms).
    pub computing: Summary,
    /// Closest ground-truth gap to any obstacle observed (m).
    pub min_obstacle_gap_m: f64,
    /// Energy drawn from the battery (kWh).
    pub energy_used_kwh: f64,
    /// Final localization error of the fused estimate (m).
    pub final_localization_error_m: f64,
    /// Mean ground-truth cross-track error against the route (m).
    pub mean_cross_track_error_m: f64,
    /// Control ticks spent in each degradation mode, indexed like
    /// [`DegradationMode::ALL`].
    pub mode_ticks: [u64; 4],
    /// Degradation-mode transitions taken during the drive.
    pub mode_transitions: u64,
    /// Completed recoveries back to [`DegradationMode::Nominal`], in ms
    /// from the first downgrade to re-entering nominal.
    pub recovery_ms: Summary,
    /// Control frames whose computing latency missed the health deadline.
    pub deadline_misses: u64,
    /// Planner→ECU command frames lost to CAN fault injection.
    pub can_frames_lost: u64,
}

impl DriveReport {
    /// Fraction of control ticks spent on the proactive path.
    #[must_use]
    pub fn proactive_fraction(&self) -> f64 {
        if self.frames == 0 {
            return 1.0;
        }
        1.0 - self.override_ticks as f64 / self.frames as f64
    }

    /// Fraction of control ticks spent in `mode`.
    #[must_use]
    pub fn mode_fraction(&self, mode: DegradationMode) -> f64 {
        if self.frames == 0 {
            return if mode == DegradationMode::Nominal {
                1.0
            } else {
                0.0
            };
        }
        self.mode_ticks[mode as usize] as f64 / self.frames as f64
    }
}

/// The complete on-vehicle system.
#[derive(Debug)]
pub struct Sov {
    config: VehicleConfig,
    planner: MpcPlanner,
    detector: Detector,
    camera: Camera,
    radars: RadarArray,
    sonars: SonarArray,
    gps: GpsReceiver,
    latency: LatencyPipeline,
    synchronizer: Synchronizer,
    rng: SovRng,
    /// Intra-frame parallelism + per-frame buffer reuse. Defaults to
    /// serial; never affects any computed value (determinism invariant).
    perf: PerfContext,
}

impl Sov {
    /// Builds an SoV for the given configuration and seed.
    #[must_use]
    pub fn new(config: VehicleConfig, seed: u64) -> Self {
        Self {
            planner: MpcPlanner::new(config.mpc),
            detector: Detector::new(DetectorProfile::matched(), seed),
            camera: Camera::new(Intrinsics::hd1080(), 0.0, 1.2, 60.0, 0.5)
                .expect("valid camera constants"),
            radars: RadarArray::perceptin_six(config.radar, seed),
            sonars: SonarArray::perceptin_eight(config.sonar, seed),
            gps: GpsReceiver::new(GpsConfig::default(), seed),
            latency: LatencyPipeline::new(&config, seed),
            synchronizer: Synchronizer::new(config.sync_strategy, config.sync_config.clone()),
            rng: SovRng::seed_from_u64(seed ^ 0x534F56),
            perf: PerfContext::default(),
            config,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &VehicleConfig {
        &self.config
    }

    /// Installs an intra-frame performance context (worker pool + frame
    /// arena). A pool-enabled drive is bit-identical to a serial one —
    /// the pool only changes who computes, never what.
    pub fn set_perf(&mut self, perf: PerfContext) {
        self.perf = perf;
    }

    /// The active performance context (e.g. to inspect
    /// [`ArenaStats`](crate::arena::ArenaStats) after a drive).
    #[must_use]
    pub fn perf(&self) -> &PerfContext {
        &self.perf
    }

    /// Mutable access to the detector, e.g. to deploy a newly trained model
    /// from the cloud (Sec. II-B) or to inject a degraded model in failure
    /// studies.
    pub fn detector_mut(&mut self) -> &mut Detector {
        &mut self.detector
    }

    /// Drives the scenario for up to `max_frames` control frames with no
    /// injected faults.
    ///
    /// # Errors
    ///
    /// Returns [`SovError::NoFrames`] if `max_frames == 0`.
    pub fn drive(&mut self, scenario: &Scenario, max_frames: u64) -> Result<DriveReport, SovError> {
        self.drive_with_plan(scenario, max_frames, &FaultPlan::nominal())
    }

    /// Drives the scenario while injecting the faults scheduled in
    /// `faults`. The health monitor watches every sensor feed and the
    /// computing deadline, and degrades the vehicle (`Nominal →
    /// DegradedLocalization → ReactiveOnly → SafeStop`) rather than let a
    /// dead input steer it; recovery is automatic once the inputs return.
    /// Driving under [`FaultPlan::nominal`] is exactly [`Sov::drive`].
    ///
    /// # Errors
    ///
    /// Returns [`SovError::NoFrames`] if `max_frames == 0`.
    pub fn drive_with_plan(
        &mut self,
        scenario: &Scenario,
        max_frames: u64,
        faults: &FaultPlan,
    ) -> Result<DriveReport, SovError> {
        if max_frames == 0 {
            return Err(SovError::NoFrames);
        }
        let dt = self.config.control_period_s();
        let world = &scenario.world;
        let route_len = world.route.length_m();
        let start_pose = world
            .route
            .pose_at(&world.map, 0.0)
            .expect("route built from this map");
        let mut state = VehicleState {
            pose: start_pose,
            speed_mps: 0.0,
        };
        let mut ecu = Ecu::new(self.config.ecu, self.config.vehicle);
        let mut vio = VioFilter::new(start_pose, VioConfig::default());
        let mut fusion = GpsVioFusion::new(FusionConfig::default());
        let mut frontend = VisualFrontEnd::new(self.rng.next_u64());
        let mut battery = Battery::full(self.config.battery.capacity_kwh);
        let mut report = DriveReport {
            outcome: DriveOutcome::Completed,
            frames: 0,
            distance_m: 0.0,
            override_engagements: 0,
            override_ticks: 0,
            computing: Summary::new(),
            min_obstacle_gap_m: f64::INFINITY,
            energy_used_kwh: 0.0,
            final_localization_error_m: 0.0,
            mean_cross_track_error_m: 0.0,
            mode_ticks: [0; 4],
            mode_transitions: 0,
            recovery_ms: Summary::new(),
            deadline_misses: 0,
            can_frames_lost: 0,
        };
        let mut health = HealthMonitor::new(HealthConfig::default(), SimTime::ZERO);
        let mut cross_track_sum = 0.0f64;
        let mut station = 0.0f64;
        let cruise = scenario
            .cruise_speed_mps
            .min(self.config.vehicle.max_speed_mps);

        // Multi-rate sensing driven by the discrete-event kernel: radar and
        // sonar at 20 Hz feed the reactive path between control ticks (this
        // is what gives the reactive path its ~30–50 ms response, Sec. IV),
        // the camera runs at 30 FPS, GPS at 10 Hz, control at 10 Hz.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        enum Ev {
            RadarSonar,
            Camera(u64),
            Gps(u64),
            Control(u64),
        }
        let radar_period = SimDuration::from_millis(50);
        let camera_period = SimDuration::from_secs_f64(1.0 / 30.0);
        let gps_period = SimDuration::from_millis(100);
        let control_period = SimDuration::from_secs_f64(dt);
        let mut queue = sov_sim::event::EventQueue::new();
        // Insertion order fixes same-instant priority: sensors before
        // control, so a control tick always plans on fresh data.
        queue.schedule(SimTime::ZERO, Ev::RadarSonar);
        queue.schedule(SimTime::ZERO, Ev::Camera(0));
        queue.schedule(SimTime::from_millis(50), Ev::Gps(0));
        queue.schedule(SimTime::ZERO, Ev::Control(0));

        // Latest sensor products consumed by the control tick. The
        // detection buffer comes from the frame arena and is refilled in
        // place at the camera rate — no steady-state allocation.
        let mut last_scan: Option<sov_sensors::radar::RadarScan> = None;
        let mut last_detections: Vec<sov_perception::detection::Detection> = self.perf.arena.take();
        last_detections.clear();
        // Camera-frame bookkeeping for the VIO front-end.
        let mut last_camera_pose = start_pose;
        let mut last_camera_t = SimTime::ZERO;
        // Physics integration cursor.
        let mut physics_t = SimTime::ZERO;
        // Counter for the radar/sonar events' fault draws.
        let mut radar_k: u64 = 0;

        'sim: while let Some((t, ev)) = queue.pop() {
            // Advance the vehicle to `t` under the ECU's actuation,
            // promoting matured commands along the way.
            while physics_t < t {
                let step = SimDuration::from_millis(10).min(t.since(physics_t));
                let act = ecu.actuation(physics_t);
                let prev = state.pose;
                state = state.step(
                    act.net_accel_mps2(),
                    act.yaw_rate_rps,
                    step.as_secs_f64(),
                    &self.config.vehicle,
                );
                report.distance_m += prev.distance(&state.pose);
                physics_t += step;
            }
            let frac = (station / route_len).clamp(0.0, 1.0);

            match ev {
                Ev::RadarSonar => {
                    // ---- Reactive path: straight into the ECU. ----
                    let mut scan = self.radars.scan_all(&state.pose, state.speed_mps, world, t);
                    if faults.strikes(FaultKind::RadarGhost, t, radar_k) {
                        // A phantom frontal return: the reactive path and
                        // the planner both see it, causing spurious braking
                        // — the failure is availability, never safety.
                        scan.targets.push(sov_sensors::radar::RadarTarget {
                            truth: sov_world::obstacle::ObstacleId(u32::MAX),
                            range_m: faults.uniform(FaultKind::RadarGhost, radar_k, 2.0, 12.0),
                            azimuth_rad: 0.0,
                            radial_velocity_mps: -state.speed_mps,
                        });
                    }
                    let sonar_range = if faults.is_active(FaultKind::SonarDropout, t) {
                        None
                    } else {
                        let range = self.sonars.min_frontal_range(&state.pose, world, t);
                        health.sonar_seen(t);
                        range
                    };
                    health.radar_seen(t);
                    radar_k += 1;
                    // Brake for obstructions in the vehicle's *swept
                    // corridor*: ahead (|azimuth| < 90°) and within ~1.2 m
                    // of the path centerline — a pedestrian standing beside
                    // the lane must not slam the brakes.
                    let radar_frontal = scan
                        .targets
                        .iter()
                        .filter(|tg| {
                            tg.azimuth_rad.abs() < std::f64::consts::FRAC_PI_2
                                && (tg.range_m * tg.azimuth_rad.sin()).abs() < 1.2
                        })
                        .map(|tg| tg.range_m)
                        .fold(f64::INFINITY, f64::min);
                    let radar_frontal = radar_frontal.is_finite().then_some(radar_frontal);
                    let min_range = match (radar_frontal, sonar_range) {
                        (Some(a), Some(b)) => Some(a.min(b)),
                        (Some(a), None) => Some(a),
                        (None, b) => b,
                    };
                    let overrides_before = ecu.overrides_engaged_count();
                    ecu.reactive_range(min_range, t);
                    report.override_engagements += ecu.overrides_engaged_count() - overrides_before;
                    last_scan = Some(scan);
                    queue.schedule(t + radar_period, Ev::RadarSonar);
                }
                Ev::Camera(k)
                    if faults.is_active(FaultKind::CameraStall, t)
                        || faults.strikes(FaultKind::CameraDrop, t, k) =>
                {
                    // The frame never arrives: no detections, no VIO
                    // update, and the camera watchdog keeps starving. The
                    // camera clock itself keeps ticking.
                    queue.schedule(t + camera_period, Ev::Camera(k + 1));
                }
                Ev::Camera(k) => {
                    // Detection runs at the camera rate.
                    let cam_frame =
                        self.camera
                            .capture(&state.pose, world, &world.landmarks, t, &mut self.rng);
                    self.detector.detect_into(
                        &cam_frame,
                        |id| {
                            world
                                .obstacles
                                .iter()
                                .find(|o| o.id == id)
                                .map_or(ObstacleClass::StaticObject, |o| o.class)
                        },
                        &mut last_detections,
                    );
                    // VIO consumes frame-to-frame ego-motion. The sync
                    // design decides how well the camera timestamps align
                    // with the IMU timeline (Sec. VI-A); software-only sync
                    // corrupts the increment via the rotation–translation
                    // ambiguity leak.
                    if k > 0 {
                        let offset_ms = self.synchronizer.camera_imu_offset_ms(k, &mut self.rng);
                        let shift = SimDuration::from_millis_f64(offset_ms);
                        let mut delta = frontend.measure(
                            &last_camera_pose,
                            &state.pose,
                            last_camera_t + shift,
                            t + shift,
                        );
                        let yaw_rate = ecu.actuation(t).yaw_rate_rps;
                        let epsilon = yaw_rate * offset_ms * 1e-3;
                        delta.lateral_m += 0.15 * epsilon * 12.0; // leak × ε × Z̄
                                                                  // Injected IMU bias leaks spurious lateral motion
                                                                  // into the visual-inertial increment.
                        delta.lateral_m += faults.magnitude(FaultKind::ImuBiasJump, t, k);
                        vio.visual_update(&delta);
                    }
                    last_camera_pose = state.pose;
                    last_camera_t = t;
                    health.camera_seen(t);
                    queue.schedule(t + camera_period, Ev::Camera(k + 1));
                }
                Ev::Gps(k) if faults.is_active(FaultKind::GpsOutage, t) => {
                    // Tunnel/canopy outage: no fix at all. Fusion keeps
                    // riding the VIO dead-reckoning (Sec. VI) while the
                    // GPS watchdog starves.
                    queue.schedule(t + gps_period, Ev::Gps(k + 1));
                }
                Ev::Gps(k) => {
                    let quality = if faults.is_active(FaultKind::GpsMultipath, t) {
                        GnssQuality::Multipath
                    } else if scenario.gps_degraded_at(frac) {
                        if k % 2 == 0 {
                            GnssQuality::Multipath
                        } else {
                            GnssQuality::NoFix
                        }
                    } else {
                        GnssQuality::Strong
                    };
                    let fix = self.gps.fix(t, &state.pose, quality);
                    let _ = fusion.ingest_fix(&mut vio, &fix);
                    if quality != GnssQuality::NoFix {
                        health.gps_seen(t);
                    }
                    queue.schedule(t + gps_period, Ev::Gps(k + 1));
                }
                Ev::Control(frame) => {
                    report.frames = frame + 1;
                    if ecu.override_engaged() {
                        report.override_ticks += 1;
                    }
                    let complexity = scenario.complexity.at(frac);
                    let frame_latency = self.latency.next_frame(complexity);
                    let mut computing = frame_latency.computing();
                    // Compute faults stretch this frame's critical path:
                    // a constant overrun (throttling/contention) and a
                    // per-frame RPR reconfiguration spike (Sec. V-B).
                    if let Some(w) = faults.active(FaultKind::StageOverrun, t) {
                        computing += SimDuration::from_millis_f64(w.intensity);
                    }
                    let spike = faults.magnitude(FaultKind::RprDelaySpike, t, frame);
                    if spike > 0.0 {
                        computing += SimDuration::from_millis_f64(spike);
                    }
                    report.computing.record(computing.as_millis_f64());

                    // Degradation state machine: watchdogs + compute
                    // deadline decide the operating mode for this tick.
                    health.compute_latency(computing);
                    let (mode, recovered) = health.assess(t);
                    if let Some(d) = recovered {
                        report.recovery_ms.record(d.as_millis_f64());
                    }
                    report.mode_ticks[mode as usize] += 1;
                    let ref_speed = match mode {
                        DegradationMode::Nominal => cruise,
                        // VIO-only localization drifts; trim speed so the
                        // drift stays inside the lane over the outage.
                        DegradationMode::DegradedLocalization => cruise * 0.8,
                        // Creep inside the radar+sonar reactive envelope
                        // (4.1 m engage range ≫ braking distance at 2 m/s).
                        DegradationMode::ReactiveOnly => cruise.min(2.0),
                        DegradationMode::SafeStop => 0.0,
                    };

                    // Localization estimate drives the lane-keeping inputs.
                    let est = fusion.position(&vio);
                    let (est_station, lateral) = world
                        .route
                        .project(&world.map, est.x, est.y)
                        .expect("route lanes exist");
                    // Obstacles in *route* coordinates: the radar's
                    // vehicle-frame lateral plus the vehicle's own route
                    // offset, so maneuver targets and obstacles share a
                    // frame.
                    let mut obstacles: Vec<PlanningObstacle> = self.perf.arena.take();
                    obstacles.clear();
                    if let Some(scan) = last_scan.as_ref() {
                        obstacles.extend(
                            scan.targets
                                .iter()
                                .filter(|tg| tg.azimuth_rad.abs() < 1.2)
                                .map(|tg| PlanningObstacle {
                                    station_m: tg.range_m * tg.azimuth_rad.cos(),
                                    lateral_m: lateral + tg.range_m * tg.azimuth_rad.sin(),
                                    speed_along_mps: (state.speed_mps + tg.radial_velocity_mps)
                                        .max(0.0),
                                    radius_m: 0.6,
                                }),
                        );
                    }
                    // With the proactive perception path degraded the
                    // camera detections are stale — plan on radar alone.
                    if mode < DegradationMode::ReactiveOnly {
                        for det in &last_detections {
                            let covered = obstacles
                                .iter()
                                .any(|o| (o.station_m - det.depth_m).abs() < 3.0);
                            if !covered {
                                obstacles.push(PlanningObstacle {
                                    station_m: det.depth_m,
                                    lateral_m: 0.0,
                                    speed_along_mps: 0.0,
                                    radius_m: det.class.radius_m(),
                                });
                            }
                        }
                    }

                    let route_pose = world
                        .route
                        .pose_at(&world.map, est_station)
                        .expect("route lanes exist");
                    let heading_error = angle::diff(est.theta, route_pose.theta);
                    // Lane-change availability from the map's adjacency
                    // (the lane-granularity maneuver space of Sec. III-D).
                    let (current_lane, _) = world.route.lane_at(est_station);
                    let (left_ok, right_ok, lane_width) =
                        world
                            .map
                            .lane(current_lane)
                            .map_or((false, false, 2.5), |l| {
                                (
                                    l.left_neighbor().is_some(),
                                    l.right_neighbor().is_some(),
                                    l.width_m(),
                                )
                            });
                    let input = PlanningInput {
                        speed_mps: state.speed_mps,
                        ref_speed_mps: ref_speed,
                        lateral_offset_m: lateral,
                        heading_error_rad: heading_error,
                        obstacles,
                        lane_width_m: lane_width,
                        left_lane_available: left_ok,
                        right_lane_available: right_ok,
                    };
                    let plan = self.planner.plan(&input);
                    // The obstacle buffer goes back to the arena so the
                    // next tick reuses its capacity.
                    let PlanningInput { obstacles, .. } = input;
                    self.perf.arena.recycle(obstacles);
                    // The command reaches the ECU after computing + CAN —
                    // unless the CAN frame is lost, in which case the ECU
                    // simply keeps actuating the previous command.
                    if faults.strikes(FaultKind::CanFrameLoss, t, frame) {
                        report.can_frames_lost += 1;
                    } else {
                        let arrival = t + computing + SimDuration::from_millis(1);
                        ecu.accept_command(plan.command, arrival);
                    }

                    // ---- Bookkeeping (per control tick). ----
                    battery.drain(
                        self.config.battery.base_load_kw + self.config.power.total_pad_kw(),
                        control_period,
                    );
                    if let Some((_, gap)) =
                        world.nearest_frontal_obstacle(&state.pose, t, std::f64::consts::PI)
                    {
                        report.min_obstacle_gap_m = report.min_obstacle_gap_m.min(gap);
                        if gap <= 0.05 {
                            report.outcome = DriveOutcome::Collision;
                            break 'sim;
                        }
                    }
                    let (s_now, true_lateral) = world
                        .route
                        .project(&world.map, state.pose.x, state.pose.y)
                        .expect("route lanes exist");
                    cross_track_sum += true_lateral.abs();
                    // Monotone progress (projection can jump at corners).
                    if s_now > station || (station - s_now) > route_len / 2.0 {
                        station = s_now;
                    }
                    if report.distance_m >= route_len {
                        break 'sim; // one full loop completed
                    }
                    if frame + 1 < max_frames {
                        queue.schedule(t + control_period, Ev::Control(frame + 1));
                    } else {
                        break 'sim;
                    }
                }
            }
        }
        self.perf.arena.recycle(last_detections);
        report.energy_used_kwh = self.config.battery.capacity_kwh - battery.remaining_kwh();
        report.mode_transitions = health.transitions().len() as u64;
        report.deadline_misses = health.deadline_misses();
        report.mean_cross_track_error_m = cross_track_sum / report.frames.max(1) as f64;
        report.final_localization_error_m = fusion.position(&vio).distance(&state.pose);
        if report.outcome != DriveOutcome::Collision && state.speed_mps < 0.1 {
            report.outcome = DriveOutcome::Stopped;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_zero_frames() {
        let scenario = Scenario::fishers_indiana(1);
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 1);
        assert_eq!(sov.drive(&scenario, 0).unwrap_err(), SovError::NoFrames);
    }

    #[test]
    fn clear_road_cruise_completes_without_overrides() {
        let mut scenario = Scenario::fishers_indiana(2);
        scenario.world.obstacles.clear();
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 2);
        let report = sov.drive(&scenario, 300).unwrap();
        assert_eq!(report.outcome, DriveOutcome::Completed);
        assert_eq!(report.override_engagements, 0);
        assert!(report.distance_m > 100.0, "covered {} m", report.distance_m);
        assert!(report.proactive_fraction() > 0.99);
    }

    #[test]
    fn planner_stops_for_static_obstacle_without_reactive_help() {
        let scenario = Scenario::fishers_indiana(3);
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 3);
        // Long enough to reach the obstacle at 60 m and wait it out.
        let report = sov.drive(&scenario, 250).unwrap();
        assert_ne!(
            report.outcome,
            DriveOutcome::Collision,
            "gap {}",
            report.min_obstacle_gap_m
        );
        assert!(
            report.min_obstacle_gap_m > 1.0,
            "gap {}",
            report.min_obstacle_gap_m
        );
        // A planned stop keeps the vehicle outside the reactive envelope —
        // the paper's vehicles stay proactive > 90% of the time.
        assert!(
            report.proactive_fraction() > 0.9,
            "proactive {}",
            report.proactive_fraction()
        );
    }

    #[test]
    fn sudden_obstacle_triggers_reactive_override() {
        use sov_math::Pose2;
        use sov_sim::time::SimTime;
        use sov_world::obstacle::{Obstacle, ObstacleId};
        let mut scenario = Scenario::fishers_indiana(8);
        // A pedestrian steps out ~8 m in front of the accelerating vehicle
        // at t = 3 s and clears the road at t = 6 s — close enough that the
        // proactive stop ends inside the reactive envelope.
        scenario.world.obstacles = vec![Obstacle::fixed(
            ObstacleId(0),
            ObstacleClass::Pedestrian,
            Pose2::new(16.0, 0.3, 0.0),
            SimTime::from_millis(3_000),
        )
        .until(SimTime::from_millis(6_000))];
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 8);
        let report = sov.drive(&scenario, 250).unwrap();
        assert_ne!(
            report.outcome,
            DriveOutcome::Collision,
            "gap {}",
            report.min_obstacle_gap_m
        );
        assert!(
            report.min_obstacle_gap_m > 0.05,
            "gap {}",
            report.min_obstacle_gap_m
        );
        assert!(
            report.override_engagements >= 1,
            "reactive path must engage"
        );
        // The override is brief; most of the drive stays proactive.
        let frac = report.proactive_fraction();
        assert!((0.5..1.0).contains(&frac), "proactive {frac}");
    }

    #[test]
    fn localization_stays_accurate_with_fusion() {
        let mut scenario = Scenario::fishers_indiana(4);
        scenario.world.obstacles.clear();
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 4);
        let report = sov.drive(&scenario, 400).unwrap();
        assert!(
            report.final_localization_error_m < 2.0,
            "fused localization error {} m",
            report.final_localization_error_m
        );
    }

    #[test]
    fn latency_statistics_are_recorded() {
        let mut scenario = Scenario::fishers_indiana(5);
        scenario.world.obstacles.clear();
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 5);
        let mut report = sov.drive(&scenario, 200).unwrap();
        assert_eq!(report.computing.len(), report.frames as usize);
        let mean = report.computing.mean();
        assert!((120.0..220.0).contains(&mean), "mean computing {mean} ms");
        assert!(report.computing.p99() > mean);
    }

    #[test]
    fn energy_accounting_matches_power_model() {
        let mut scenario = Scenario::fishers_indiana(6);
        scenario.world.obstacles.clear();
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 6);
        let report = sov.drive(&scenario, 100).unwrap();
        // 10 s at (0.6 + 0.175) kW = 0.775 kW → ≈ 0.00215 kWh.
        let expected = 0.775 * (10.0 / 3600.0);
        assert!(
            (report.energy_used_kwh - expected).abs() < 1e-4,
            "energy {} vs {expected}",
            report.energy_used_kwh
        );
    }

    #[test]
    fn software_sync_localizes_worse_than_hardware() {
        use sov_sensors::sync::SyncStrategy;
        // A winding site (turning is where camera–IMU desync bites).
        let mut scenario = Scenario::fribourg_campus(11);
        scenario.world.obstacles.clear();
        let mut hw = Sov::new(VehicleConfig::perceptin_pod(), 11);
        let sw_config = VehicleConfig {
            sync_strategy: SyncStrategy::SoftwareOnly,
            ..VehicleConfig::perceptin_pod()
        };
        let mut sw = Sov::new(sw_config, 11);
        let r_hw = hw.drive(&scenario, 400).unwrap();
        let r_sw = sw.drive(&scenario, 400).unwrap();
        // GPS fusion bounds both, but the software-sync vehicle leans on it
        // far harder; compare the raw VIO corruption via final error.
        assert!(
            r_sw.final_localization_error_m >= r_hw.final_localization_error_m,
            "software {} vs hardware {}",
            r_sw.final_localization_error_m,
            r_hw.final_localization_error_m
        );
    }

    #[test]
    fn overtakes_slow_vehicle_via_lane_change() {
        // Sec. III-D: maneuvers happen at lane granularity — on the
        // two-lane course the vehicle passes a 1.5 m/s forklift instead of
        // crawling behind it.
        let scenario = Scenario::shenzhen_two_lane(42);
        let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 42);
        let report = sov.drive(&scenario, 500).unwrap();
        assert_ne!(
            report.outcome,
            DriveOutcome::Collision,
            "gap {}",
            report.min_obstacle_gap_m
        );
        assert!(
            report.min_obstacle_gap_m > 0.5,
            "gap {}",
            report.min_obstacle_gap_m
        );
        // Following the forklift for 50 s would cover ~≤110 m; overtaking
        // restores cruise speed.
        assert!(
            report.distance_m > 150.0,
            "only covered {:.0} m — no overtake",
            report.distance_m
        );
        // Time spent in the outer lane shows up as cross-track offset.
        assert!(report.mean_cross_track_error_m > 0.4, "never left the lane");
    }

    #[test]
    fn flaky_radar_still_drives_safely() {
        use sov_sensors::radar::RadarConfig;
        // Failure injection: 40% of radar scans are unstable. Detection +
        // the remaining stable scans + sonar keep the vehicle safe.
        let scenario = Scenario::fishers_indiana(21);
        let config = VehicleConfig {
            radar: RadarConfig {
                instability_prob: 0.4,
                ..RadarConfig::default()
            },
            ..VehicleConfig::perceptin_pod()
        };
        let mut sov = Sov::new(config, 21);
        let report = sov.drive(&scenario, 250).unwrap();
        assert_ne!(
            report.outcome,
            DriveOutcome::Collision,
            "gap {}",
            report.min_obstacle_gap_m
        );
        assert!(report.min_obstacle_gap_m > 0.05);
    }

    #[test]
    fn pooled_drive_report_is_identical_and_allocation_free() {
        let scenario = Scenario::fishers_indiana(3);
        let mut serial = Sov::new(VehicleConfig::perceptin_pod(), 3);
        let r_serial = serial.drive(&scenario, 200).unwrap();
        let mut pooled = Sov::new(VehicleConfig::perceptin_pod(), 3);
        pooled.set_perf(PerfContext::with_workers(4));
        let r_pooled = pooled.drive(&scenario, 200).unwrap();
        assert_eq!(r_pooled, r_serial, "pool must not change the drive");
        // With the arena warm, a further drive's steady-state control
        // ticks allocate nothing: every buffer comes off the free list.
        pooled.perf().arena.reset_stats();
        let _ = pooled.drive(&scenario, 50).unwrap();
        let stats = pooled.perf().arena.stats();
        assert_eq!(stats.allocations, 0, "steady state must be reuse-only");
        assert!(stats.reuses > 0, "arena must actually be exercised");
    }

    #[test]
    fn lidar_variant_burns_more_energy() {
        let mut scenario = Scenario::fishers_indiana(7);
        scenario.world.obstacles.clear();
        let mut pod = Sov::new(VehicleConfig::perceptin_pod(), 7);
        let mut lidar = Sov::new(VehicleConfig::lidar_variant(), 7);
        let e_pod = pod.drive(&scenario, 150).unwrap().energy_used_kwh;
        let e_lidar = lidar.drive(&scenario, 150).unwrap().energy_used_kwh;
        assert!(e_lidar > e_pod * 1.05, "{e_lidar} vs {e_pod}");
    }
}
