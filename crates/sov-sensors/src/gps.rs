//! GNSS receiver model.
//!
//! Sec. VI-B's GPS–VIO hybrid uses GNSS position fixes to correct VIO's
//! cumulative drift when the signal is strong, and falls back to corrected
//! VIO in tunnels or under multipath. This model produces fixes with
//! configurable accuracy, signal-quality states driven by the scenario's
//! outage windows, and a multipath bias mode.

use sov_math::{Pose2, SovRng};
use sov_sim::time::SimTime;

/// Signal quality of one fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GnssQuality {
    /// Open-sky fix; usable directly as the vehicle position (Sec. VI-B).
    Strong,
    /// Degraded fix (multipath): biased, should be gated by the fusion
    /// filter's Mahalanobis test.
    Multipath,
    /// No fix available (tunnel / dense canopy).
    NoFix,
}

/// One GNSS observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnssFix {
    /// Fix timestamp.
    pub timestamp: SimTime,
    /// Measured position (m, local ENU frame).
    pub position: (f64, f64),
    /// Reported quality.
    pub quality: GnssQuality,
}

/// GNSS receiver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsConfig {
    /// Fix rate (Hz). Typical automotive receivers: 10 Hz.
    pub rate_hz: f64,
    /// Horizontal accuracy σ of a strong fix (m).
    pub strong_sigma_m: f64,
    /// Bias magnitude of a multipath fix (m).
    pub multipath_bias_m: f64,
    /// Extra noise of a multipath fix (m).
    pub multipath_sigma_m: f64,
}

impl Default for GpsConfig {
    fn default() -> Self {
        Self {
            rate_hz: 10.0,
            strong_sigma_m: 0.5,
            multipath_bias_m: 6.0,
            multipath_sigma_m: 2.0,
        }
    }
}

/// A stateful GNSS receiver.
#[derive(Debug, Clone, PartialEq)]
pub struct GpsReceiver {
    config: GpsConfig,
    rng: SovRng,
    /// Persistent multipath bias direction (changes slowly).
    multipath_dir: f64,
}

impl GpsReceiver {
    /// Creates a receiver.
    #[must_use]
    pub fn new(config: GpsConfig, seed: u64) -> Self {
        let mut rng = SovRng::seed_from_u64(seed ^ 0x475053);
        let multipath_dir = rng.uniform(0.0, std::f64::consts::TAU);
        Self {
            config,
            rng,
            multipath_dir,
        }
    }

    /// Fix period in seconds.
    #[must_use]
    pub fn period_s(&self) -> f64 {
        1.0 / self.config.rate_hz
    }

    /// Produces a fix at `t` for the true pose, under the given quality.
    pub fn fix(&mut self, t: SimTime, true_pose: &Pose2, quality: GnssQuality) -> GnssFix {
        let position = match quality {
            GnssQuality::Strong => (
                true_pose.x + self.rng.normal(0.0, self.config.strong_sigma_m),
                true_pose.y + self.rng.normal(0.0, self.config.strong_sigma_m),
            ),
            GnssQuality::Multipath => {
                // Slowly wander the reflection geometry.
                self.multipath_dir += self.rng.normal(0.0, 0.05);
                (
                    true_pose.x
                        + self.config.multipath_bias_m * self.multipath_dir.cos()
                        + self.rng.normal(0.0, self.config.multipath_sigma_m),
                    true_pose.y
                        + self.config.multipath_bias_m * self.multipath_dir.sin()
                        + self.rng.normal(0.0, self.config.multipath_sigma_m),
                )
            }
            GnssQuality::NoFix => (f64::NAN, f64::NAN),
        };
        GnssFix {
            timestamp: t,
            position,
            quality,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strong_fix_is_accurate() {
        let mut gps = GpsReceiver::new(GpsConfig::default(), 1);
        let pose = Pose2::new(100.0, 50.0, 0.0);
        let n = 5000;
        let (mut sx, mut sy) = (0.0, 0.0);
        for i in 0..n {
            let fix = gps.fix(SimTime::from_millis(i * 100), &pose, GnssQuality::Strong);
            sx += fix.position.0;
            sy += fix.position.1;
        }
        assert!((sx / n as f64 - 100.0).abs() < 0.05);
        assert!((sy / n as f64 - 50.0).abs() < 0.05);
    }

    #[test]
    fn multipath_fix_is_biased() {
        let mut gps = GpsReceiver::new(GpsConfig::default(), 2);
        let pose = Pose2::new(0.0, 0.0, 0.0);
        let n = 2000;
        let mut err = 0.0;
        for i in 0..n {
            let fix = gps.fix(SimTime::from_millis(i * 100), &pose, GnssQuality::Multipath);
            err += (fix.position.0.powi(2) + fix.position.1.powi(2)).sqrt();
        }
        let mean_err = err / n as f64;
        assert!(mean_err > 3.0, "multipath mean error {mean_err} m");
    }

    #[test]
    fn no_fix_is_nan() {
        let mut gps = GpsReceiver::new(GpsConfig::default(), 3);
        let fix = gps.fix(SimTime::ZERO, &Pose2::identity(), GnssQuality::NoFix);
        assert!(fix.position.0.is_nan() && fix.position.1.is_nan());
        assert_eq!(fix.quality, GnssQuality::NoFix);
    }

    #[test]
    fn ten_hz_period() {
        let gps = GpsReceiver::new(GpsConfig::default(), 4);
        assert!((gps.period_s() - 0.1).abs() < 1e-12);
    }
}
