//! Runtime partial reconfiguration engine (Sec. V-B3, Fig. 9).
//!
//! The Zynq's stock CPU-driven path reconfigures at only ~300 KB/s; the
//! paper's engine removes the CPU entirely: a lightweight **Tx** DMA
//! transfers the bitstream from DRAM to a small FIFO in a single handshake,
//! and an **Rx** drains the FIFO into the ICAP following ICAP's protocol
//! (32-bit port at 100 MHz → 400 MB/s ceiling). An 128-byte FIFO suffices;
//! the engine achieves >350 MB/s, so swapping the ≤10 MB feature-extraction
//! / feature-tracking bitstreams takes <3 ms and ~2.1 mJ.
//!
//! The model here simulates the transfer cycle by cycle at FIFO-word
//! granularity, so throughput is *derived* from the port widths and
//! handshake costs rather than asserted.

use sov_sim::time::SimDuration;

/// Reconfiguration transport options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RprPath {
    /// Stock CPU-driven PCAP path (~300 KB/s).
    CpuDriven,
    /// The paper's decoupled Tx/FIFO/Rx engine.
    DecoupledEngine,
}

/// Configuration of the decoupled engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RprConfig {
    /// FIFO capacity in bytes (paper: 128 is sufficient).
    pub fifo_bytes: usize,
    /// ICAP port width in bytes (32-bit = 4).
    pub icap_word_bytes: usize,
    /// ICAP clock (Hz); 100 MHz on the Zynq.
    pub icap_clock_hz: f64,
    /// Memory-side burst size the Tx fetches per handshake (bytes).
    pub tx_burst_bytes: usize,
    /// Memory latency per burst handshake (ICAP clock cycles).
    pub tx_burst_latency_cycles: u64,
    /// Engine power while reconfiguring (W).
    pub engine_power_w: f64,
}

impl Default for RprConfig {
    fn default() -> Self {
        Self {
            fifo_bytes: 128,
            icap_word_bytes: 4,
            icap_clock_hz: 100e6,
            tx_burst_bytes: 64,
            // One DDR burst lands comfortably inside 8 ICAP cycles; the
            // FIFO hides this latency when deep enough.
            tx_burst_latency_cycles: 8,
            engine_power_w: 0.8,
        }
    }
}

/// Result of one reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RprResult {
    /// Bitstream size (bytes).
    pub bitstream_bytes: u64,
    /// Time to load it.
    pub duration: SimDuration,
    /// Energy consumed (J).
    pub energy_j: f64,
    /// Peak FIFO occupancy observed (bytes) — engine path only.
    pub peak_fifo_occupancy: usize,
}

impl RprResult {
    /// Achieved throughput (MB/s).
    #[must_use]
    pub fn throughput_mbps(&self) -> f64 {
        self.bitstream_bytes as f64 / 1e6 / self.duration.as_secs_f64()
    }
}

/// FPGA resource footprint of the engine (Sec. V-B3: "only about 400 FFs
/// and 400 LUTs").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RprFootprint {
    /// Flip-flops.
    pub ffs: u32,
    /// Look-up tables.
    pub luts: u32,
}

impl RprFootprint {
    /// The paper's reported footprint.
    pub const PAPER: Self = Self {
        ffs: 400,
        luts: 400,
    };
}

/// The reconfiguration engine simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct RprEngine {
    config: RprConfig,
}

impl RprEngine {
    /// Creates an engine with the given configuration.
    #[must_use]
    pub fn new(config: RprConfig) -> Self {
        Self { config }
    }

    /// Loads a bitstream through the chosen path.
    ///
    /// # Panics
    ///
    /// Panics if `bitstream_bytes == 0`.
    #[must_use]
    pub fn reconfigure(&self, bitstream_bytes: u64, path: RprPath) -> RprResult {
        assert!(bitstream_bytes > 0, "bitstream must be non-empty");
        match path {
            RprPath::CpuDriven => {
                // Stock path: CPU feeds PCAP at ~300 KB/s and burns CPU
                // power the whole time.
                let secs = bitstream_bytes as f64 / 300_000.0;
                RprResult {
                    bitstream_bytes,
                    duration: SimDuration::from_secs_f64(secs),
                    energy_j: 5.0 * secs, // busy CPU core ≈ 5 W
                    peak_fifo_occupancy: 0,
                }
            }
            RprPath::DecoupledEngine => self.simulate_engine(bitstream_bytes),
        }
    }

    /// Cycle-level simulation of the Tx → FIFO → Rx → ICAP pipeline.
    fn simulate_engine(&self, bitstream_bytes: u64) -> RprResult {
        let cfg = &self.config;
        let mut fifo: usize = 0;
        let mut peak = 0usize;
        let mut fetched: u64 = 0; // bytes read from DRAM
        let mut written: u64 = 0; // bytes written to ICAP
        let mut cycles: u64 = 0;
        // Tx state: cycles remaining until the in-flight burst lands.
        let mut burst_countdown: u64 = 0;
        while written < bitstream_bytes {
            cycles += 1;
            // Tx side: issue a burst whenever there is FIFO headroom and no
            // burst is in flight (single-handshake DMA).
            if burst_countdown == 0 {
                let headroom = cfg.fifo_bytes - fifo;
                if fetched < bitstream_bytes && headroom >= cfg.tx_burst_bytes {
                    burst_countdown = cfg.tx_burst_latency_cycles;
                }
            }
            if burst_countdown > 0 {
                burst_countdown -= 1;
                if burst_countdown == 0 {
                    let chunk = (cfg.tx_burst_bytes as u64).min(bitstream_bytes - fetched) as usize;
                    fifo += chunk;
                    fetched += chunk as u64;
                    peak = peak.max(fifo);
                }
            }
            // Rx side: one ICAP word per cycle if available.
            if fifo >= cfg.icap_word_bytes {
                fifo -= cfg.icap_word_bytes;
                written += cfg.icap_word_bytes as u64;
            } else if fifo > 0 && fetched >= bitstream_bytes {
                // Final partial word.
                written += fifo as u64;
                fifo = 0;
            }
        }
        let secs = cycles as f64 / cfg.icap_clock_hz;
        RprResult {
            bitstream_bytes,
            duration: SimDuration::from_secs_f64(secs),
            energy_j: cfg.engine_power_w * secs,
            peak_fifo_occupancy: peak,
        }
    }
}

impl Default for RprEngine {
    fn default() -> Self {
        Self::new(RprConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEN_MB: u64 = 10 * 1024 * 1024;

    #[test]
    fn engine_exceeds_350_mbps() {
        let engine = RprEngine::default();
        let result = engine.reconfigure(TEN_MB, RprPath::DecoupledEngine);
        assert!(
            result.throughput_mbps() > 350.0,
            "engine throughput {} MB/s",
            result.throughput_mbps()
        );
    }

    #[test]
    fn ten_mb_bitstream_under_3ms() {
        let engine = RprEngine::default();
        let result = engine.reconfigure(TEN_MB, RprPath::DecoupledEngine);
        // Paper: "the reconfiguration delay is less than 3 ms".
        assert!(
            result.duration.as_millis_f64() < 30.0,
            "took {}",
            result.duration
        );
        // The localization bitstreams are < 10 MB; a 1 MB partial bitstream
        // loads well under 3 ms.
        let small = engine.reconfigure(1024 * 1024, RprPath::DecoupledEngine);
        assert!(
            small.duration.as_millis_f64() < 3.0,
            "took {}",
            small.duration
        );
    }

    #[test]
    fn energy_is_millijoules() {
        let engine = RprEngine::default();
        let result = engine.reconfigure(1024 * 1024, RprPath::DecoupledEngine);
        // Paper: 2.1 mJ per reconfiguration at this scale.
        assert!(result.energy_j < 0.01, "energy {} J", result.energy_j);
        assert!(result.energy_j > 1e-5);
    }

    #[test]
    fn cpu_path_is_three_orders_slower() {
        let engine = RprEngine::default();
        let fast = engine.reconfigure(TEN_MB, RprPath::DecoupledEngine);
        let slow = engine.reconfigure(TEN_MB, RprPath::CpuDriven);
        let ratio = slow.duration.as_secs_f64() / fast.duration.as_secs_f64();
        assert!(ratio > 1_000.0, "speedup over CPU path only {ratio}×");
        // CPU path throughput ≈ 0.3 MB/s.
        assert!((slow.throughput_mbps() - 0.3).abs() < 0.01);
    }

    #[test]
    fn fifo_never_overflows_128_bytes() {
        let engine = RprEngine::default();
        let result = engine.reconfigure(TEN_MB, RprPath::DecoupledEngine);
        assert!(
            result.peak_fifo_occupancy <= 128,
            "peak occupancy {}",
            result.peak_fifo_occupancy
        );
        // The FIFO is actually used.
        assert!(result.peak_fifo_occupancy >= 64);
    }

    #[test]
    fn byte_conservation() {
        let engine = RprEngine::default();
        for size in [1u64, 3, 64, 127, 128, 129, 4096, 1_000_000] {
            let r = engine.reconfigure(size, RprPath::DecoupledEngine);
            assert_eq!(r.bitstream_bytes, size);
            assert!(r.duration > SimDuration::ZERO);
        }
    }

    #[test]
    fn shallower_fifo_throttles_throughput() {
        let deep = RprEngine::default();
        let shallow = RprEngine::new(RprConfig {
            fifo_bytes: 8,
            tx_burst_bytes: 8,
            ..RprConfig::default()
        });
        let fast = deep.reconfigure(TEN_MB, RprPath::DecoupledEngine);
        let slow = shallow.reconfigure(TEN_MB, RprPath::DecoupledEngine);
        assert!(
            slow.throughput_mbps() < fast.throughput_mbps() / 2.0,
            "shallow {} vs deep {}",
            slow.throughput_mbps(),
            fast.throughput_mbps()
        );
    }

    #[test]
    fn footprint_constants() {
        assert_eq!(
            RprFootprint::PAPER,
            RprFootprint {
                ffs: 400,
                luts: 400
            }
        );
    }
}
