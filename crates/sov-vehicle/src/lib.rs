//! Vehicle substrate: dynamics, energy, CAN bus, ECU and cost models.
//!
//! Sec. III of the paper derives the design constraints of the SoV from
//! simple analytical models of the vehicle itself; this crate implements
//! those models plus the physical components the computing system talks to:
//!
//! * [`dynamics`] — the end-to-end latency model of Eq. 1 / Fig. 2
//!   ([`dynamics::LatencyBudget`]) and longitudinal vehicle dynamics with
//!   the paper's parameters (v = 5.6 m/s, a = 4 m/s², 20 mph cap).
//! * [`battery`] — the driving-time model of Eq. 2 / Fig. 3b
//!   ([`battery::DrivingTimeModel`]): 6 kWh pack, 0.6 kW base load, 175 W
//!   autonomous-driving load.
//! * [`can`] — a frame-level Controller Area Network model with priority
//!   arbitration (T_data ≈ 1 ms).
//! * [`ecu`] — the Engine Control Unit: executes control commands with the
//!   ~19 ms mechanical latency, and implements the **reactive-path
//!   override** port (Sec. IV) that radar/sonar ranges drive directly.
//! * [`cost`] — the bill-of-materials cost model of Table II (camera-based
//!   vs. LiDAR-based vehicles).
//!
//! # Example
//!
//! ```
//! use sov_vehicle::dynamics::LatencyBudget;
//!
//! let budget = LatencyBudget::perceptin_defaults();
//! // Fig. 3a: with a 164 ms computing latency, the vehicle avoids objects
//! // sensed at 5 m or farther.
//! let d = budget.min_avoidable_distance_m(0.164);
//! assert!((d - 5.0).abs() < 0.1);
//! ```

#![deny(missing_docs)]

pub mod battery;
pub mod can;
pub mod cost;
pub mod dynamics;
pub mod ecu;

pub use dynamics::{ControlCommand, LatencyBudget, VehicleParams, VehicleState};
pub use ecu::Ecu;
