//! Property-based tests for the math substrate.

use sov_math::angle;
use sov_math::kalman::Ekf;
use sov_math::matrix::{Matrix, Vector};
use sov_math::quaternion::Quaternion;
use sov_math::stats::Summary;
use sov_math::{Pose2, SovRng};
use sov_testkit::prelude::*;

fn finite(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
    prop::num::f64::NORMAL.prop_map(move |x| {
        let span = range.end - range.start;
        range.start + (x.abs() % span)
    })
}

proptest! {
    #[test]
    fn solve_then_multiply_recovers_rhs(
        seed in 0u64..10_000,
    ) {
        let mut rng = SovRng::seed_from_u64(seed);
        // Diagonally-dominant matrices are well conditioned.
        let mut a = Matrix::<4, 4>::from_fn(|_, _| rng.uniform(-1.0, 1.0));
        for i in 0..4 {
            a[(i, i)] += 5.0;
        }
        let b = Vector::<4>::from_fn(|i, _| rng.uniform(-10.0, 10.0) + i as f64);
        let x = a.solve(&b).expect("diagonally dominant is invertible");
        prop_assert!((a * x).approx_eq(&b, 1e-8));
    }

    #[test]
    fn inverse_is_two_sided(seed in 0u64..10_000) {
        let mut rng = SovRng::seed_from_u64(seed);
        let mut a = Matrix::<3, 3>::from_fn(|_, _| rng.uniform(-1.0, 1.0));
        for i in 0..3 {
            a[(i, i)] += 4.0;
        }
        let inv = a.inverse().expect("invertible");
        prop_assert!((a * inv).approx_eq(&Matrix::identity(), 1e-8));
        prop_assert!((inv * a).approx_eq(&Matrix::identity(), 1e-8));
    }

    #[test]
    fn cholesky_reconstructs_spd(seed in 0u64..10_000) {
        let mut rng = SovRng::seed_from_u64(seed);
        let b = Matrix::<3, 3>::from_fn(|_, _| rng.uniform(-1.0, 1.0));
        let spd = b * b.transpose() + Matrix::identity().scale(0.5);
        let l = spd.cholesky().expect("SPD by construction");
        prop_assert!((l * l.transpose()).approx_eq(&spd, 1e-9));
    }

    #[test]
    fn quaternion_rotation_preserves_length(
        ax in finite(-1.0..1.0),
        ay in finite(-1.0..1.0),
        az in finite(-1.0..1.0),
        angle_r in finite(-6.0..6.0),
        vx in finite(-10.0..10.0),
        vy in finite(-10.0..10.0),
        vz in finite(-10.0..10.0),
    ) {
        let q = Quaternion::from_axis_angle([ax, ay, az], angle_r);
        let v = Vector::from_array([vx, vy, vz]);
        let r = q.rotate(&v);
        prop_assert!((r.norm() - v.norm()).abs() < 1e-9);
    }

    #[test]
    fn angle_wrap_is_idempotent_and_in_range(theta in finite(-100.0..100.0)) {
        let w = angle::wrap(theta);
        prop_assert!(w > -std::f64::consts::PI - 1e-12);
        prop_assert!(w <= std::f64::consts::PI + 1e-12);
        prop_assert!((angle::wrap(w) - w).abs() < 1e-12);
        // Wrapping preserves the angle modulo 2π.
        prop_assert!(((theta - w) / std::f64::consts::TAU).round()
            - (theta - w) / std::f64::consts::TAU < 1e-6);
    }

    #[test]
    fn pose_compose_inverse_cancels(
        x in finite(-50.0..50.0),
        y in finite(-50.0..50.0),
        theta in finite(-6.0..6.0),
    ) {
        let p = Pose2::new(x, y, theta);
        let id = p.compose(&p.inverse());
        prop_assert!(id.x.abs() < 1e-9 && id.y.abs() < 1e-9 && id.theta.abs() < 1e-9);
    }

    #[test]
    fn ekf_covariance_stays_psd(seed in 0u64..3_000) {
        let mut rng = SovRng::seed_from_u64(seed);
        let mut ekf = Ekf::<2>::new(
            Vector::from_array([rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)]),
            Matrix::from_diagonal([rng.uniform(0.5, 5.0), rng.uniform(0.5, 5.0)]),
        );
        for _ in 0..30 {
            let f = Matrix::from_rows([[1.0, 0.1], [0.0, 1.0]]);
            let pred = f * *ekf.state();
            ekf.predict(pred, f, Matrix::from_diagonal([0.01, 0.01]));
            if rng.bernoulli(0.5) {
                let h = Matrix::<1, 2>::from_rows([[1.0, 0.0]]);
                let z = Vector::from_array([rng.uniform(-10.0, 10.0)]);
                let predicted = Vector::from_array([ekf.state()[0]]);
                ekf.update(z, predicted, h, Matrix::from_diagonal([1.0])).unwrap();
            }
            prop_assert!(ekf.covariance().is_positive_definite());
        }
    }

    #[test]
    fn summary_percentiles_are_ordered(values in prop::collection::vec(finite(-1e6..1e6), 1..200)) {
        let mut s: Summary = values.iter().copied().collect();
        let min = s.min();
        let max = s.max();
        let median = s.median();
        let p99 = s.p99();
        prop_assert!(min <= median && median <= p99 && p99 <= max);
        prop_assert!(min <= s.mean() && s.mean() <= max);
    }

    #[test]
    fn rng_uniform_respects_bounds(seed in 0u64..10_000, lo in finite(-100.0..0.0), span in finite(0.001..100.0)) {
        let mut rng = SovRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = rng.uniform(lo, lo + span);
            prop_assert!(x >= lo && x < lo + span + 1e-9);
        }
    }

    #[test]
    fn unicycle_speed_times_time_bounds_distance(
        v in finite(0.0..9.0),
        omega in finite(-1.0..1.0),
        dt in finite(0.001..2.0),
    ) {
        let p = Pose2::identity().step_unicycle(v, omega, dt);
        let dist = (p.x * p.x + p.y * p.y).sqrt();
        // Chord length never exceeds arc length v·dt.
        prop_assert!(dist <= v * dt + 1e-9);
    }
}
