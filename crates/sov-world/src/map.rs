//! Lane-graph road network.
//!
//! The vehicles maneuver at *lane granularity* (Sec. III-D): lanes are 1–3 m
//! wide and the planner stays in a lane or switches lanes, never maneuvering
//! within one. The map is therefore a graph of lane centerlines (polylines)
//! with widths, speed limits and OSM-style semantic annotations.

use sov_math::Pose2;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a lane within a [`LaneMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LaneId(pub u32);

impl fmt::Display for LaneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lane#{}", self.0)
    }
}

/// Semantic annotation attached to a lane, mirroring the manual OSM
/// annotations described in Sec. II-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Annotation {
    /// A pedestrian crosswalk intersects this lane.
    Crosswalk,
    /// A transit/bus stop adjoins this lane.
    TransitStop,
    /// The lane passes through a tunnel or under heavy canopy — GPS
    /// reception is degraded here (Sec. VI-B).
    GpsDegraded,
    /// A construction or loading zone with frequent static obstacles.
    WorkZone,
    /// A tourist point-of-interest with dense pedestrian traffic.
    PointOfInterest,
}

/// One lane: a polyline centerline with width and speed limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Lane {
    id: LaneId,
    centerline: Vec<(f64, f64)>,
    cumulative: Vec<f64>,
    width_m: f64,
    speed_limit_mps: f64,
    successors: Vec<LaneId>,
    annotations: Vec<Annotation>,
    left_neighbor: Option<LaneId>,
    right_neighbor: Option<LaneId>,
}

/// Error returned when constructing an invalid lane.
#[derive(Debug, Clone, PartialEq)]
pub enum LaneError {
    /// Fewer than two centerline points.
    TooFewPoints,
    /// Width outside the micromobility lane range.
    InvalidWidth(f64),
    /// Non-positive speed limit.
    InvalidSpeedLimit(f64),
    /// Two consecutive centerline points coincide.
    DegenerateSegment(usize),
}

impl fmt::Display for LaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooFewPoints => write!(f, "lane centerline needs at least two points"),
            Self::InvalidWidth(w) => write!(f, "lane width {w} m outside (0, 10]"),
            Self::InvalidSpeedLimit(v) => write!(f, "speed limit {v} m/s must be positive"),
            Self::DegenerateSegment(i) => write!(f, "zero-length segment at index {i}"),
        }
    }
}

impl std::error::Error for LaneError {}

impl Lane {
    /// Creates a lane from its centerline.
    ///
    /// # Errors
    ///
    /// Returns a [`LaneError`] if the centerline has fewer than two points,
    /// contains a zero-length segment, or if width/speed limit are invalid.
    pub fn new(
        id: LaneId,
        centerline: Vec<(f64, f64)>,
        width_m: f64,
        speed_limit_mps: f64,
    ) -> Result<Self, LaneError> {
        if centerline.len() < 2 {
            return Err(LaneError::TooFewPoints);
        }
        if !(0.0..=10.0).contains(&width_m) || width_m == 0.0 {
            return Err(LaneError::InvalidWidth(width_m));
        }
        if speed_limit_mps <= 0.0 {
            return Err(LaneError::InvalidSpeedLimit(speed_limit_mps));
        }
        let mut cumulative = Vec::with_capacity(centerline.len());
        cumulative.push(0.0);
        for i in 1..centerline.len() {
            let (x0, y0) = centerline[i - 1];
            let (x1, y1) = centerline[i];
            let seg = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
            if seg < 1e-9 {
                return Err(LaneError::DegenerateSegment(i));
            }
            cumulative.push(cumulative[i - 1] + seg);
        }
        Ok(Self {
            id,
            centerline,
            cumulative,
            width_m,
            speed_limit_mps,
            successors: Vec::new(),
            annotations: Vec::new(),
            left_neighbor: None,
            right_neighbor: None,
        })
    }

    /// Lane identifier.
    #[must_use]
    pub fn id(&self) -> LaneId {
        self.id
    }

    /// Lane width in meters (1–3 m for our deployments).
    #[must_use]
    pub fn width_m(&self) -> f64 {
        self.width_m
    }

    /// Speed limit in m/s.
    #[must_use]
    pub fn speed_limit_mps(&self) -> f64 {
        self.speed_limit_mps
    }

    /// Total centerline length in meters.
    #[must_use]
    pub fn length_m(&self) -> f64 {
        *self.cumulative.last().expect("non-empty by construction")
    }

    /// Lanes reachable from the end of this lane.
    #[must_use]
    pub fn successors(&self) -> &[LaneId] {
        &self.successors
    }

    /// The raw centerline polyline, in meters.
    #[must_use]
    pub fn centerline(&self) -> &[(f64, f64)] {
        &self.centerline
    }

    /// Semantic annotations on this lane.
    #[must_use]
    pub fn annotations(&self) -> &[Annotation] {
        &self.annotations
    }

    /// The adjacent lane to the left of travel, if any.
    #[must_use]
    pub fn left_neighbor(&self) -> Option<LaneId> {
        self.left_neighbor
    }

    /// The adjacent lane to the right of travel, if any.
    #[must_use]
    pub fn right_neighbor(&self) -> Option<LaneId> {
        self.right_neighbor
    }

    /// Whether the lane carries a given annotation.
    #[must_use]
    pub fn has_annotation(&self, a: Annotation) -> bool {
        self.annotations.contains(&a)
    }

    /// Pose (position + tangent heading) at arclength `s` along the lane.
    ///
    /// `s` is clamped to `[0, length]`.
    #[must_use]
    pub fn pose_at(&self, s: f64) -> Pose2 {
        let s = s.clamp(0.0, self.length_m());
        // Binary search for the segment containing s.
        let i = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite"))
        {
            Ok(i) => i.min(self.centerline.len() - 2),
            Err(i) => (i - 1).min(self.centerline.len() - 2),
        };
        let (x0, y0) = self.centerline[i];
        let (x1, y1) = self.centerline[i + 1];
        let seg_len = self.cumulative[i + 1] - self.cumulative[i];
        let t = if seg_len > 0.0 {
            (s - self.cumulative[i]) / seg_len
        } else {
            0.0
        };
        Pose2::new(
            x0 + (x1 - x0) * t,
            y0 + (y1 - y0) * t,
            (y1 - y0).atan2(x1 - x0),
        )
    }

    /// Arclength of the centerline point closest to `(x, y)`, with the
    /// lateral offset (meters, positive = left of travel direction).
    #[must_use]
    pub fn project(&self, x: f64, y: f64) -> (f64, f64) {
        let mut best = (0.0, f64::INFINITY, 0.0);
        for i in 0..self.centerline.len() - 1 {
            let (x0, y0) = self.centerline[i];
            let (x1, y1) = self.centerline[i + 1];
            let (dx, dy) = (x1 - x0, y1 - y0);
            let seg_sq = dx * dx + dy * dy;
            let t = (((x - x0) * dx + (y - y0) * dy) / seg_sq).clamp(0.0, 1.0);
            let (px, py) = (x0 + t * dx, y0 + t * dy);
            let dist_sq = (x - px).powi(2) + (y - py).powi(2);
            if dist_sq < best.1 {
                let seg_len = seg_sq.sqrt();
                // Signed lateral: cross product of tangent and offset.
                let cross = dx * (y - py) - dy * (x - px);
                best = (
                    self.cumulative[i] + t * seg_len,
                    dist_sq,
                    cross.signum() * dist_sq.sqrt(),
                );
            }
        }
        (best.0, best.2)
    }
}

/// A road network of lanes (the OSM-derived map of Sec. II-B).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaneMap {
    lanes: BTreeMap<LaneId, Lane>,
}

/// Error returned by [`LaneMap`] queries that reference unknown lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownLaneError(pub LaneId);

impl fmt::Display for UnknownLaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown {}", self.0)
    }
}

impl std::error::Error for UnknownLaneError {}

impl LaneMap {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a lane, replacing any existing lane with the same id.
    pub fn insert(&mut self, lane: Lane) {
        self.lanes.insert(lane.id(), lane);
    }

    /// Connects `from`'s end to `to`'s start.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownLaneError`] if either lane is absent.
    pub fn connect(&mut self, from: LaneId, to: LaneId) -> Result<(), UnknownLaneError> {
        if !self.lanes.contains_key(&to) {
            return Err(UnknownLaneError(to));
        }
        let lane = self.lanes.get_mut(&from).ok_or(UnknownLaneError(from))?;
        if !lane.successors.contains(&to) {
            lane.successors.push(to);
        }
        Ok(())
    }

    /// Declares `right` to be the right-of-travel neighbor of `left` (and
    /// symmetrically `left` the left neighbor of `right`).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownLaneError`] if either lane is absent.
    pub fn set_adjacent(&mut self, left: LaneId, right: LaneId) -> Result<(), UnknownLaneError> {
        if !self.lanes.contains_key(&right) {
            return Err(UnknownLaneError(right));
        }
        {
            let lane = self.lanes.get_mut(&left).ok_or(UnknownLaneError(left))?;
            lane.right_neighbor = Some(right);
        }
        let lane = self.lanes.get_mut(&right).expect("checked above");
        lane.left_neighbor = Some(left);
        Ok(())
    }

    /// Adds a semantic annotation to a lane.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownLaneError`] if the lane is absent.
    pub fn annotate(&mut self, id: LaneId, a: Annotation) -> Result<(), UnknownLaneError> {
        let lane = self.lanes.get_mut(&id).ok_or(UnknownLaneError(id))?;
        if !lane.annotations.contains(&a) {
            lane.annotations.push(a);
        }
        Ok(())
    }

    /// Looks up a lane.
    #[must_use]
    pub fn lane(&self, id: LaneId) -> Option<&Lane> {
        self.lanes.get(&id)
    }

    /// Iterates over all lanes in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Lane> {
        self.lanes.values()
    }

    /// Number of lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the map has no lanes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Total centerline length of all lanes, in meters.
    #[must_use]
    pub fn total_length_m(&self) -> f64 {
        self.lanes.values().map(Lane::length_m).sum()
    }

    /// The lane whose centerline is closest to `(x, y)`, with projection.
    ///
    /// Returns `None` for an empty map.
    #[must_use]
    pub fn nearest_lane(&self, x: f64, y: f64) -> Option<(LaneId, f64, f64)> {
        self.lanes
            .values()
            .map(|lane| {
                let (s, lateral) = lane.project(x, y);
                (lane.id(), s, lateral)
            })
            .min_by(|a, b| a.2.abs().partial_cmp(&b.2.abs()).expect("finite"))
    }

    /// Maps a normalized coordinate `u ∈ [0, 1)` to a position on the
    /// network — the lane containing arclength `u · total_length` when all
    /// lanes are laid end to end in id order, plus the offset within it.
    ///
    /// This is the uniform-by-arclength sampler the fleet workload
    /// generator draws ride origins/destinations from: because lanes are
    /// walked in ascending id order the mapping is deterministic, and
    /// because the coordinate is scaled by centerline length, every meter
    /// of the network is equally likely.
    ///
    /// Returns `None` for an empty map. `u` is clamped to `[0, 1)`.
    #[must_use]
    pub fn sample_position(&self, u: f64) -> Option<(LaneId, f64)> {
        if self.lanes.is_empty() {
            return None;
        }
        let total = self.total_length_m();
        let mut target = u.clamp(0.0, 1.0 - f64::EPSILON) * total;
        let mut last = None;
        for lane in self.lanes.values() {
            let len = lane.length_m();
            if target < len {
                return Some((lane.id(), target));
            }
            target -= len;
            last = Some(lane.id());
        }
        // Float round-off past the last lane: clamp to its end.
        last.map(|id| (id, self.lanes[&id].length_m()))
    }

    /// Breadth-first route (list of lane ids) from `start` to `goal`.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownLaneError`] if either endpoint is absent. Returns
    /// `Ok(None)` if no route exists.
    pub fn route(
        &self,
        start: LaneId,
        goal: LaneId,
    ) -> Result<Option<Vec<LaneId>>, UnknownLaneError> {
        if !self.lanes.contains_key(&start) {
            return Err(UnknownLaneError(start));
        }
        if !self.lanes.contains_key(&goal) {
            return Err(UnknownLaneError(goal));
        }
        let mut prev: BTreeMap<LaneId, LaneId> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([start]);
        let mut seen = std::collections::BTreeSet::from([start]);
        while let Some(cur) = queue.pop_front() {
            if cur == goal {
                let mut path = vec![goal];
                let mut node = goal;
                while node != start {
                    node = prev[&node];
                    path.push(node);
                }
                path.reverse();
                return Ok(Some(path));
            }
            for &next in self.lanes[&cur].successors() {
                if seen.insert(next) {
                    prev.insert(next, cur);
                    queue.push_back(next);
                }
            }
        }
        Ok(None)
    }
}

/// Builds a closed rectangular loop of four lanes — the standard test
/// course used throughout the workspace's tests and scenarios.
///
/// `width` and `height` are the loop's extents in meters.
///
/// # Panics
///
/// Panics if `width` or `height` is not positive.
#[must_use]
pub fn rectangular_loop(width: f64, height: f64, lane_width_m: f64, speed_mps: f64) -> LaneMap {
    assert!(width > 0.0 && height > 0.0, "loop extents must be positive");
    let mut map = LaneMap::new();
    let corners = [(0.0, 0.0), (width, 0.0), (width, height), (0.0, height)];
    for i in 0..4 {
        let a = corners[i];
        let b = corners[(i + 1) % 4];
        let lane = Lane::new(LaneId(i as u32), vec![a, b], lane_width_m, speed_mps)
            .expect("valid by construction");
        map.insert(lane);
    }
    for i in 0..4u32 {
        map.connect(LaneId(i), LaneId((i + 1) % 4))
            .expect("lanes exist");
    }
    map
}

/// Builds a two-lane closed rectangular loop: an inner loop (lanes 0–3, the
/// default route) and an outer loop (lanes 4–7) offset outward by
/// `lane_width_m`, declared as the inner lanes' right-of-travel neighbors.
/// Lane-change maneuvers (Sec. III-D) become possible on this course.
///
/// # Panics
///
/// Panics if `width` or `height` is not positive.
#[must_use]
pub fn two_lane_loop(width: f64, height: f64, lane_width_m: f64, speed_mps: f64) -> LaneMap {
    assert!(width > 0.0 && height > 0.0, "loop extents must be positive");
    let mut map = rectangular_loop(width, height, lane_width_m, speed_mps);
    // Outer loop: offset outward by one lane width; traveling CCW, outward
    // is to the right of travel.
    let o = lane_width_m;
    let outer = [
        ((-o, -o), (width + o, -o)),
        ((width + o, -o), (width + o, height + o)),
        ((width + o, height + o), (-o, height + o)),
        ((-o, height + o), (-o, -o)),
    ];
    for (i, &(a, b)) in outer.iter().enumerate() {
        map.insert(
            Lane::new(LaneId(4 + i as u32), vec![a, b], lane_width_m, speed_mps)
                .expect("valid by construction"),
        );
    }
    for i in 0..4u32 {
        map.connect(LaneId(4 + i), LaneId(4 + (i + 1) % 4))
            .expect("lanes exist");
        map.set_adjacent(LaneId(i), LaneId(4 + i))
            .expect("lanes exist");
    }
    map
}

/// Builds a closed loop with quarter-circle corners: each of the four lanes
/// is a straight stretch followed by an arc of `corner_radius`, so heading
/// varies continuously along the route (unlike [`rectangular_loop`], whose
/// corners are instantaneous 90° turns).
///
/// `width`/`height` are the outer extents; `corner_radius` must fit twice
/// into each extent.
///
/// # Panics
///
/// Panics if the radius does not fit the extents or any argument is not
/// positive.
#[must_use]
pub fn rounded_loop(
    width: f64,
    height: f64,
    corner_radius: f64,
    lane_width_m: f64,
    speed_mps: f64,
) -> LaneMap {
    assert!(
        width > 0.0 && height > 0.0 && corner_radius > 0.0,
        "extents must be positive"
    );
    assert!(
        2.0 * corner_radius <= width && 2.0 * corner_radius <= height,
        "corner radius must fit the loop extents"
    );
    use std::f64::consts::FRAC_PI_2;
    let r = corner_radius;
    const ARC_POINTS: usize = 12;
    // Each lane: straight edge then the following corner arc.
    // Lane 0: bottom edge (left→right) + bottom-right arc, etc.
    let mut map = LaneMap::new();
    // (start point, straight direction, arc center) per side.
    let sides = [
        ((r, 0.0), (1.0, 0.0), (width - r, r)),
        ((width, r), (0.0, 1.0), (width - r, height - r)),
        ((width - r, height), (-1.0, 0.0), (r, height - r)),
        ((0.0, height - r), (0.0, -1.0), (r, r)),
    ];
    for (i, &((sx, sy), (dx, dy), (cx, cy))) in sides.iter().enumerate() {
        let straight_len = if i % 2 == 0 {
            width - 2.0 * r
        } else {
            height - 2.0 * r
        };
        let mut pts = vec![(sx, sy), (sx + dx * straight_len, sy + dy * straight_len)];
        // Quarter arc from the straight's end heading to the next side's.
        let heading = dy.atan2(dx);
        let start_angle = heading - FRAC_PI_2; // center sits 90° left
        for k in 1..=ARC_POINTS {
            let a = start_angle + FRAC_PI_2 * k as f64 / ARC_POINTS as f64;
            pts.push((cx + r * a.cos(), cy + r * a.sin()));
        }
        map.insert(
            Lane::new(LaneId(i as u32), pts, lane_width_m, speed_mps)
                .expect("valid by construction"),
        );
    }
    for i in 0..4u32 {
        map.connect(LaneId(i), LaneId((i + 1) % 4))
            .expect("lanes exist");
    }
    map
}

/// Builds a Manhattan street grid of `rows × cols` intersections spaced
/// `block_m` apart, with **two directed lanes per block edge** (one per
/// travel direction) — the city-scale network the fleet subsystem
/// dispatches over.
///
/// Lane ids are assigned deterministically: horizontal edges first
/// (row-major, forward then reverse lane), then vertical edges, so the
/// same `(rows, cols)` always yields the same map. At every intersection
/// each incoming lane connects to every outgoing lane **except its own
/// reverse** (no U-turns); the grid is strongly connected for
/// `rows, cols ≥ 2`.
///
/// # Panics
///
/// Panics if `rows < 2`, `cols < 2`, or `block_m` is not positive.
#[must_use]
pub fn grid_network(
    rows: u32,
    cols: u32,
    block_m: f64,
    lane_width_m: f64,
    speed_mps: f64,
) -> LaneMap {
    assert!(rows >= 2 && cols >= 2, "a grid needs at least 2×2 nodes");
    assert!(block_m > 0.0, "block length must be positive");
    let mut map = LaneMap::new();
    let node = |r: u32, c: u32| (f64::from(c) * block_m, f64::from(r) * block_m);
    // (from-node, to-node) per directed lane, in id order.
    let mut ends: Vec<((u32, u32), (u32, u32))> = Vec::new();
    for r in 0..rows {
        for c in 0..cols - 1 {
            ends.push(((r, c), (r, c + 1)));
            ends.push(((r, c + 1), (r, c)));
        }
    }
    for r in 0..rows - 1 {
        for c in 0..cols {
            ends.push(((r, c), (r + 1, c)));
            ends.push(((r + 1, c), (r, c)));
        }
    }
    for (i, &(a, b)) in ends.iter().enumerate() {
        let lane = Lane::new(
            LaneId(i as u32),
            vec![node(a.0, a.1), node(b.0, b.1)],
            lane_width_m,
            speed_mps,
        )
        .expect("valid by construction");
        map.insert(lane);
    }
    // Connect incoming → outgoing at every node, skipping the U-turn onto
    // a lane's own reverse (lanes are created in forward/reverse pairs, so
    // the reverse of id `i` is `i ^ 1`). Outgoing lanes are bucketed per
    // node first — ascending id within each bucket, so successor order is
    // the same as the naive all-pairs scan — which keeps the pass
    // O(lanes × degree) and OSM-scale grids loadable.
    let node_index = |(r, c): (u32, u32)| (r * cols + c) as usize;
    let mut outgoing: Vec<Vec<u32>> = vec![Vec::new(); (rows * cols) as usize];
    for (j, &(from, _)) in ends.iter().enumerate() {
        outgoing[node_index(from)].push(j as u32);
    }
    for (i, &(_, to)) in ends.iter().enumerate() {
        for &j in &outgoing[node_index(to)] {
            if j as usize != (i ^ 1) {
                map.connect(LaneId(i as u32), LaneId(j))
                    .expect("lanes exist");
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_lane(id: u32, len: f64) -> Lane {
        Lane::new(LaneId(id), vec![(0.0, 0.0), (len, 0.0)], 2.0, 8.9).unwrap()
    }

    #[test]
    fn lane_validation() {
        assert!(matches!(
            Lane::new(LaneId(0), vec![(0.0, 0.0)], 2.0, 5.0),
            Err(LaneError::TooFewPoints)
        ));
        assert!(matches!(
            Lane::new(LaneId(0), vec![(0.0, 0.0), (1.0, 0.0)], 0.0, 5.0),
            Err(LaneError::InvalidWidth(_))
        ));
        assert!(matches!(
            Lane::new(LaneId(0), vec![(0.0, 0.0), (1.0, 0.0)], 2.0, -1.0),
            Err(LaneError::InvalidSpeedLimit(_))
        ));
        assert!(matches!(
            Lane::new(
                LaneId(0),
                vec![(0.0, 0.0), (0.0, 0.0), (1.0, 0.0)],
                2.0,
                5.0
            ),
            Err(LaneError::DegenerateSegment(1))
        ));
    }

    #[test]
    fn lane_length_and_pose() {
        let lane = Lane::new(
            LaneId(1),
            vec![(0.0, 0.0), (3.0, 0.0), (3.0, 4.0)],
            2.0,
            5.0,
        )
        .unwrap();
        assert!((lane.length_m() - 7.0).abs() < 1e-12);
        let p = lane.pose_at(3.0);
        assert!((p.x - 3.0).abs() < 1e-12 && p.y.abs() < 1e-9);
        let p2 = lane.pose_at(5.0);
        assert!((p2.x - 3.0).abs() < 1e-12 && (p2.y - 2.0).abs() < 1e-12);
        // Heading on second segment points +y.
        assert!((p2.theta - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // Clamping.
        let end = lane.pose_at(100.0);
        assert!((end.y - 4.0).abs() < 1e-12);
    }

    #[test]
    fn projection_recovers_arclength_and_lateral() {
        let lane = straight_lane(0, 10.0);
        let (s, lat) = lane.project(4.0, 1.5);
        assert!((s - 4.0).abs() < 1e-12);
        assert!((lat - 1.5).abs() < 1e-12);
        let (_, lat_r) = lane.project(4.0, -0.5);
        assert!((lat_r + 0.5).abs() < 1e-12);
    }

    #[test]
    fn map_connect_and_route() {
        let mut map = LaneMap::new();
        for i in 0..4 {
            map.insert(straight_lane(i, 10.0));
        }
        map.connect(LaneId(0), LaneId(1)).unwrap();
        map.connect(LaneId(1), LaneId(2)).unwrap();
        map.connect(LaneId(1), LaneId(3)).unwrap();
        let route = map.route(LaneId(0), LaneId(3)).unwrap().unwrap();
        assert_eq!(route, vec![LaneId(0), LaneId(1), LaneId(3)]);
        // Unreachable in reverse.
        assert_eq!(map.route(LaneId(3), LaneId(0)).unwrap(), None);
        // Unknown lanes error.
        assert!(map.route(LaneId(99), LaneId(0)).is_err());
        assert!(map.connect(LaneId(0), LaneId(99)).is_err());
    }

    #[test]
    fn annotations() {
        let mut map = LaneMap::new();
        map.insert(straight_lane(0, 5.0));
        map.annotate(LaneId(0), Annotation::GpsDegraded).unwrap();
        map.annotate(LaneId(0), Annotation::GpsDegraded).unwrap(); // idempotent
        let lane = map.lane(LaneId(0)).unwrap();
        assert!(lane.has_annotation(Annotation::GpsDegraded));
        assert!(!lane.has_annotation(Annotation::Crosswalk));
        assert_eq!(lane.annotations().len(), 1);
        assert!(map.annotate(LaneId(9), Annotation::Crosswalk).is_err());
    }

    #[test]
    fn rectangular_loop_is_closed() {
        let map = rectangular_loop(100.0, 50.0, 2.5, 8.9);
        assert_eq!(map.len(), 4);
        assert!((map.total_length_m() - 300.0).abs() < 1e-9);
        // Route all the way around.
        let route = map.route(LaneId(0), LaneId(3)).unwrap().unwrap();
        assert_eq!(route.len(), 4);
    }

    #[test]
    fn nearest_lane_picks_closest() {
        let map = rectangular_loop(100.0, 50.0, 2.5, 8.9);
        let (id, _, lateral) = map.nearest_lane(50.0, 1.0).unwrap();
        assert_eq!(id, LaneId(0));
        assert!((lateral.abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_lane_loop_adjacency() {
        let map = two_lane_loop(100.0, 50.0, 2.5, 8.9);
        assert_eq!(map.len(), 8);
        for i in 0..4u32 {
            let inner = map.lane(LaneId(i)).unwrap();
            let outer = map.lane(LaneId(4 + i)).unwrap();
            assert_eq!(inner.right_neighbor(), Some(LaneId(4 + i)));
            assert_eq!(outer.left_neighbor(), Some(LaneId(i)));
            assert_eq!(inner.left_neighbor(), None);
            assert_eq!(outer.right_neighbor(), None);
        }
        // Outer loop is itself routable.
        let route = map.route(LaneId(4), LaneId(7)).unwrap().unwrap();
        assert_eq!(route.len(), 4);
        // The outer bottom lane runs one lane width to the right of travel
        // (below) the inner bottom lane.
        let (_, lateral) = map.lane(LaneId(4)).unwrap().project(50.0, 0.0);
        assert!((lateral - 2.5).abs() < 1e-9, "outer lane offset {lateral}");
    }

    #[test]
    fn rounded_loop_is_connected_and_smooth() {
        let map = rounded_loop(100.0, 60.0, 10.0, 2.5, 8.9);
        assert_eq!(map.len(), 4);
        // Route all the way around.
        let route = map.route(LaneId(0), LaneId(3)).unwrap().unwrap();
        assert_eq!(route.len(), 4);
        // Length ≈ straights + full circle: 2(80+40) + 2π·10 ≈ 302.8.
        let expected = 2.0 * (80.0 + 40.0) + std::f64::consts::TAU * 10.0;
        assert!(
            (map.total_length_m() - expected).abs() < 1.0,
            "len {}",
            map.total_length_m()
        );
        // Heading continuity: walk each lane at 0.5 m steps; no jump
        // exceeds what a 12-segment quarter arc implies (~7.5° + slack).
        for lane in map.iter() {
            let mut s = 0.0;
            let mut prev = lane.pose_at(0.0).theta;
            while s < lane.length_m() {
                s += 0.5;
                let theta = lane.pose_at(s).theta;
                let jump = sov_math::angle::diff(theta, prev).abs();
                assert!(jump < 0.20, "heading jump {jump} rad on {}", lane.id());
                prev = theta;
            }
        }
    }

    #[test]
    fn rounded_loop_endpoints_meet() {
        let map = rounded_loop(100.0, 60.0, 10.0, 2.5, 8.9);
        for i in 0..4u32 {
            let a = map.lane(LaneId(i)).unwrap();
            let b = map.lane(LaneId((i + 1) % 4)).unwrap();
            let end = a.pose_at(a.length_m());
            let start = b.pose_at(0.0);
            assert!(end.distance(&start) < 1e-6, "gap between lane {i} and next");
        }
    }

    #[test]
    #[should_panic(expected = "radius must fit")]
    fn rounded_loop_rejects_oversized_radius() {
        let _ = rounded_loop(10.0, 10.0, 6.0, 2.5, 8.9);
    }

    #[test]
    fn empty_map_queries() {
        let map = LaneMap::new();
        assert!(map.is_empty());
        assert!(map.nearest_lane(0.0, 0.0).is_none());
        assert_eq!(map.total_length_m(), 0.0);
        assert!(map.sample_position(0.5).is_none());
    }

    #[test]
    fn sample_position_is_uniform_by_arclength() {
        let map = rectangular_loop(100.0, 50.0, 2.5, 8.9);
        // Total 300 m: u = 0 starts lane 0; u just under 100/300 is still
        // on lane 0; u = 100/300 starts lane 1 (the 50 m side).
        assert_eq!(map.sample_position(0.0), Some((LaneId(0), 0.0)));
        let (id, s) = map.sample_position(100.0 / 300.0 - 1e-9).unwrap();
        assert_eq!(id, LaneId(0));
        assert!((s - 100.0).abs() < 1e-3);
        let (id, s) = map.sample_position(100.0 / 300.0).unwrap();
        assert_eq!(id, LaneId(1));
        assert!(s.abs() < 1e-9);
        // Clamped at the top of the range.
        let (id, _) = map.sample_position(1.0).unwrap();
        assert_eq!(id, LaneId(3));
    }

    #[test]
    fn grid_network_shape_and_ids_are_deterministic() {
        let a = grid_network(3, 4, 80.0, 2.5, 8.0);
        let b = grid_network(3, 4, 80.0, 2.5, 8.0);
        assert_eq!(a, b, "same parameters must build the identical map");
        // Edges: horizontal 3·3 + vertical 2·4 = 17, two lanes each.
        assert_eq!(a.len(), 34);
        assert!((a.total_length_m() - 34.0 * 80.0).abs() < 1e-9);
    }

    #[test]
    fn grid_network_is_strongly_connected_without_u_turns() {
        let map = grid_network(3, 3, 50.0, 2.5, 8.0);
        // No lane lists its own reverse (id ^ 1) as a successor.
        for lane in map.iter() {
            let rev = LaneId(lane.id().0 ^ 1);
            assert!(
                !lane.successors().contains(&rev),
                "{} may not U-turn onto {}",
                lane.id(),
                rev
            );
            assert!(!lane.successors().is_empty(), "dead end at {}", lane.id());
        }
        // Every ordered lane pair is routable.
        for a in map.iter() {
            for b in map.iter() {
                assert!(
                    map.route(a.id(), b.id()).unwrap().is_some(),
                    "no route {} → {}",
                    a.id(),
                    b.id()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2×2")]
    fn grid_network_rejects_degenerate_grids() {
        let _ = grid_network(1, 5, 50.0, 2.5, 8.0);
    }
}
