//! Log/sensor-data compression (Sec. II-B, Sec. VII).
//!
//! The raw training data is "enormous even after compression (as high as
//! 1 TB per day)", and Sec. VII proposes swapping a compression accelerator
//! into the FPGA once per hour via partial reconfiguration. This module
//! provides the compression substrate: a from-scratch LZSS codec
//! (dictionary matching with a rolling hash chain) plus helpers to generate
//! realistic operational-log payloads.

use sov_math::SovRng;

/// Errors during decompression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompressError {
    /// Input ended in the middle of a token.
    Truncated,
    /// A back-reference pointed before the start of the output.
    BadReference,
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "compressed stream truncated mid-token"),
            Self::BadReference => write!(f, "back-reference outside the produced output"),
        }
    }
}

impl std::error::Error for DecompressError {}

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 130;

/// LZSS-compresses `input`.
///
/// Token format: `0x00 len byte…` for a literal run (len 1–255), or
/// `0x01 off_hi off_lo len` for a back-reference of `len+MIN_MATCH` bytes
/// at distance `off` (1–4096).
#[must_use]
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    // Hash chains over 4-byte prefixes.
    let mut head = vec![usize::MAX; 1 << 14];
    let mut prev = vec![usize::MAX; input.len().max(1)];
    let hash = |window: &[u8]| -> usize {
        let h = u32::from(window[0])
            .wrapping_mul(2654435761)
            .wrapping_add(u32::from(window[1]).wrapping_mul(40503))
            .wrapping_add(u32::from(window[2]).wrapping_mul(2654435789u32))
            .wrapping_add(u32::from(window[3]));
        (h as usize) & ((1 << 14) - 1)
    };
    let mut literals: Vec<u8> = Vec::new();
    let flush_literals = |out: &mut Vec<u8>, literals: &mut Vec<u8>| {
        for chunk in literals.chunks(255) {
            out.push(0x00);
            out.push(chunk.len() as u8);
            out.extend_from_slice(chunk);
        }
        literals.clear();
    };
    let mut i = 0;
    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash(&input[i..i + 4]);
            let mut candidate = head[h];
            let mut tries = 16;
            while candidate != usize::MAX && tries > 0 {
                if i - candidate <= WINDOW {
                    let mut len = 0;
                    let max = (input.len() - i).min(MAX_MATCH);
                    while len < max && input[candidate + len] == input[i + len] {
                        len += 1;
                    }
                    if len >= MIN_MATCH && len > best_len {
                        best_len = len;
                        best_off = i - candidate;
                    }
                } else {
                    break; // chain entries only get older
                }
                candidate = prev[candidate];
                tries -= 1;
            }
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            flush_literals(&mut out, &mut literals);
            out.push(0x01);
            out.push(((best_off - 1) >> 8) as u8);
            out.push(((best_off - 1) & 0xFF) as u8);
            out.push((best_len - MIN_MATCH) as u8);
            // Index the skipped positions so later matches can find them.
            for j in i + 1..(i + best_len).min(input.len().saturating_sub(MIN_MATCH - 1)) {
                if j + 4 <= input.len() {
                    let h = hash(&input[j..j + 4]);
                    prev[j] = head[h];
                    head[h] = j;
                }
            }
            i += best_len;
        } else {
            literals.push(input[i]);
            i += 1;
        }
    }
    flush_literals(&mut out, &mut literals);
    out
}

/// Decompresses an LZSS stream produced by [`compress`].
///
/// # Errors
///
/// Returns [`DecompressError`] on truncated input or invalid references.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(input.len() * 3);
    let mut i = 0;
    while i < input.len() {
        match input[i] {
            0x00 => {
                let len = *input.get(i + 1).ok_or(DecompressError::Truncated)? as usize;
                let start = i + 2;
                let end = start + len;
                if end > input.len() {
                    return Err(DecompressError::Truncated);
                }
                out.extend_from_slice(&input[start..end]);
                i = end;
            }
            0x01 => {
                if i + 3 >= input.len() {
                    return Err(DecompressError::Truncated);
                }
                let off = ((usize::from(input[i + 1]) << 8) | usize::from(input[i + 2])) + 1;
                let len = usize::from(input[i + 3]) + MIN_MATCH;
                if off > out.len() {
                    return Err(DecompressError::BadReference);
                }
                let start = out.len() - off;
                for j in 0..len {
                    let byte = out[start + j];
                    out.push(byte);
                }
                i += 4;
            }
            _ => return Err(DecompressError::Truncated),
        }
    }
    Ok(out)
}

/// Compression ratio (input/output); >1 means the data shrank.
#[must_use]
pub fn ratio(input_len: usize, output_len: usize) -> f64 {
    if output_len == 0 {
        return 0.0;
    }
    input_len as f64 / output_len as f64
}

/// Generates a synthetic condensed operational log: repetitive key/value
/// telemetry lines of the kind the vehicle uplinks hourly.
#[must_use]
pub fn synthetic_operational_log(lines: usize, seed: u64) -> Vec<u8> {
    let mut rng = SovRng::seed_from_u64(seed ^ 0x4C4F47);
    let mut out = Vec::new();
    for i in 0..lines {
        let line = format!(
            "t={:08} lat_ms={:3} mode={} speed={:4.1} soc={:3}% overrides={}\n",
            i * 100,
            140 + rng.index(80),
            if rng.bernoulli(0.95) {
                "proactive"
            } else {
                "reactive "
            },
            rng.uniform(0.0, 8.9),
            40 + rng.index(60),
            rng.index(3)
        );
        out.extend_from_slice(line.as_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty_and_tiny() {
        for input in [&b""[..], b"a", b"ab", b"abc"] {
            let c = compress(input);
            assert_eq!(decompress(&c).unwrap(), input);
        }
    }

    #[test]
    fn roundtrip_repetitive_log() {
        let log = synthetic_operational_log(500, 1);
        let c = compress(&log);
        assert_eq!(decompress(&c).unwrap(), log);
        let r = ratio(log.len(), c.len());
        assert!(r > 2.0, "telemetry logs should compress well, got {r:.2}×");
    }

    #[test]
    fn roundtrip_random_bytes() {
        let mut rng = SovRng::seed_from_u64(2);
        let data: Vec<u8> = (0..10_000).map(|_| rng.next_below(256) as u8).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        // Random data does not compress; overhead stays modest.
        assert!(c.len() < data.len() + data.len() / 64 + 16);
    }

    #[test]
    fn roundtrip_long_runs() {
        let mut data = vec![0u8; 5_000];
        data.extend(vec![7u8; 5_000]);
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(ratio(data.len(), c.len()) > 20.0);
    }

    #[test]
    fn overlapping_references_work() {
        // "abcabcabc..." forces overlapping copies (off < len).
        let data: Vec<u8> = b"abc".iter().copied().cycle().take(1000).collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let log = synthetic_operational_log(50, 3);
        let c = compress(&log);
        assert_eq!(
            decompress(&c[..c.len() - 1]).unwrap_err(),
            DecompressError::Truncated
        );
    }

    #[test]
    fn bad_reference_is_an_error() {
        // A back-reference with nothing in the output yet.
        let stream = [0x01u8, 0x00, 0x00, 0x00];
        assert_eq!(
            decompress(&stream).unwrap_err(),
            DecompressError::BadReference
        );
    }

    #[test]
    fn garbage_token_is_an_error() {
        assert_eq!(decompress(&[0x42]).unwrap_err(), DecompressError::Truncated);
    }
}
