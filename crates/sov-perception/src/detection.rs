//! Object detection (Table III: YOLO / Mask R-CNN).
//!
//! Detection is the only task in the paper's pipeline where a DNN is used,
//! and the paper treats it as a latency/accuracy black box that is
//! **specialized per deployment environment** ("different models are
//! specialized/trained using the deployment environment-specific training
//! data", Sec. IV). We model it the same way: a [`Detector`] consumes the
//! camera's object observations and applies an accuracy profile — miss
//! rate, false positives and classification errors — that degrades when the
//! model's training environment does not match the deployment.
//!
//! Missed detections are one of the two safety hazards motivating the
//! reactive path (Sec. III-C: "vision algorithms produce wrong results,
//! e.g., missing an object").

use sov_math::SovRng;
use sov_sensors::camera::CameraFrame;
use sov_sim::time::SimTime;
use sov_world::obstacle::{ObstacleClass, ObstacleId};

/// One detection output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Ground-truth obstacle identity; `None` for a false positive.
    /// Evaluation only — downstream consumers must use pixel geometry.
    pub truth: Option<ObstacleId>,
    /// Predicted class.
    pub class: ObstacleClass,
    /// Bounding-box center in pixels.
    pub pixel: (f64, f64),
    /// Bounding-box radius in pixels.
    pub radius_px: f64,
    /// Estimated depth from the detector's context (m); coarse.
    pub depth_m: f64,
    /// Detection confidence in `[0, 1]`.
    pub confidence: f64,
}

/// Deployment-environment match between the trained model and the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelSpecialization {
    /// Model trained on this deployment's data (the paper's normal case:
    /// "the DNN models are trained regularly using our field data").
    Matched,
    /// Model trained on a different deployment's data.
    Mismatched,
}

/// Accuracy profile of the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorProfile {
    /// Probability of missing a visible object.
    pub miss_rate: f64,
    /// Expected false positives per frame.
    pub false_positives_per_frame: f64,
    /// Probability of assigning the wrong class to a detected object.
    pub misclass_rate: f64,
    /// Pixel noise added to the reported box center.
    pub pixel_sigma: f64,
    /// Relative depth error σ (fraction of depth).
    pub depth_rel_sigma: f64,
}

impl DetectorProfile {
    /// Profile of a well-trained, environment-matched model.
    #[must_use]
    pub fn matched() -> Self {
        Self {
            miss_rate: 0.02,
            false_positives_per_frame: 0.05,
            misclass_rate: 0.03,
            pixel_sigma: 2.0,
            depth_rel_sigma: 0.05,
        }
    }

    /// Profile of a model deployed outside its training environment.
    #[must_use]
    pub fn mismatched() -> Self {
        Self {
            miss_rate: 0.15,
            false_positives_per_frame: 0.4,
            misclass_rate: 0.2,
            pixel_sigma: 6.0,
            depth_rel_sigma: 0.15,
        }
    }

    /// Profile for the given specialization.
    #[must_use]
    pub fn for_specialization(spec: ModelSpecialization) -> Self {
        match spec {
            ModelSpecialization::Matched => Self::matched(),
            ModelSpecialization::Mismatched => Self::mismatched(),
        }
    }
}

/// The detector.
#[derive(Debug, Clone, PartialEq)]
pub struct Detector {
    profile: DetectorProfile,
    rng: SovRng,
    classes: [ObstacleClass; 4],
}

impl Detector {
    /// Creates a detector with the given profile.
    #[must_use]
    pub fn new(profile: DetectorProfile, seed: u64) -> Self {
        Self {
            profile,
            rng: SovRng::seed_from_u64(seed ^ 0x444554),
            classes: [
                ObstacleClass::Pedestrian,
                ObstacleClass::Cyclist,
                ObstacleClass::Vehicle,
                ObstacleClass::StaticObject,
            ],
        }
    }

    /// The active accuracy profile.
    #[must_use]
    pub fn profile(&self) -> &DetectorProfile {
        &self.profile
    }

    /// Swaps in a newly-trained model (the paper's regular retraining /
    /// environment-specialized model update, Sec. II-B).
    pub fn update_model(&mut self, profile: DetectorProfile) {
        self.profile = profile;
    }

    /// Runs detection on one frame, given the ground-truth classes of the
    /// visible objects (from the world; the detector corrupts them according
    /// to its profile).
    pub fn detect(
        &mut self,
        frame: &CameraFrame,
        true_class_of: impl Fn(ObstacleId) -> ObstacleClass,
    ) -> Vec<Detection> {
        let mut out = Vec::new();
        self.detect_into(frame, true_class_of, &mut out);
        out
    }

    /// [`Self::detect`] writing into a caller-owned buffer (cleared
    /// first), so a per-frame loop can reuse one allocation. The RNG
    /// draws — and therefore the detections — are identical to
    /// [`Self::detect`].
    pub fn detect_into(
        &mut self,
        frame: &CameraFrame,
        true_class_of: impl Fn(ObstacleId) -> ObstacleClass,
        out: &mut Vec<Detection>,
    ) {
        out.clear();
        for obj in &frame.objects {
            if self.rng.bernoulli(self.profile.miss_rate) {
                continue; // missed object — the reactive path's raison d'être
            }
            let true_class = true_class_of(obj.obstacle);
            let class = if self.rng.bernoulli(self.profile.misclass_rate) {
                self.classes[self.rng.index(self.classes.len())]
            } else {
                true_class
            };
            out.push(Detection {
                truth: Some(obj.obstacle),
                class,
                pixel: (
                    obj.pixel.0 + self.rng.normal(0.0, self.profile.pixel_sigma),
                    obj.pixel.1 + self.rng.normal(0.0, self.profile.pixel_sigma),
                ),
                radius_px: obj.apparent_radius_px,
                depth_m: obj.true_depth
                    * (1.0 + self.rng.normal(0.0, self.profile.depth_rel_sigma)),
                confidence: self.rng.uniform(0.7, 1.0),
            });
        }
        // Poisson-ish false positives (Bernoulli split over 4 slots).
        let fp_trials = 4;
        let p = (self.profile.false_positives_per_frame / f64::from(fp_trials)).min(1.0);
        for _ in 0..fp_trials {
            if self.rng.bernoulli(p) {
                out.push(Detection {
                    truth: None,
                    class: self.classes[self.rng.index(self.classes.len())],
                    pixel: (
                        self.rng.uniform(0.0, 1920.0),
                        self.rng.uniform(300.0, 800.0),
                    ),
                    radius_px: self.rng.uniform(10.0, 60.0),
                    depth_m: self.rng.uniform(5.0, 40.0),
                    confidence: self.rng.uniform(0.3, 0.7),
                });
            }
        }
    }
}

/// Frame-level detection quality metrics, aggregated over an evaluation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DetectionMetrics {
    /// Ground-truth objects presented.
    pub total_objects: u64,
    /// Correctly detected (any class).
    pub detected: u64,
    /// Detected with the correct class.
    pub correctly_classified: u64,
    /// False positives produced.
    pub false_positives: u64,
}

impl DetectionMetrics {
    /// Recall = detected / total.
    #[must_use]
    pub fn recall(&self) -> f64 {
        if self.total_objects == 0 {
            return 0.0;
        }
        self.detected as f64 / self.total_objects as f64
    }

    /// Accumulates one frame's results.
    pub fn accumulate(
        &mut self,
        frame: &CameraFrame,
        detections: &[Detection],
        true_class_of: impl Fn(ObstacleId) -> ObstacleClass,
    ) {
        self.total_objects += frame.objects.len() as u64;
        for d in detections {
            match d.truth {
                Some(id) => {
                    self.detected += 1;
                    if d.class == true_class_of(id) {
                        self.correctly_classified += 1;
                    }
                }
                None => self.false_positives += 1,
            }
        }
    }
}

/// Convenience: evaluates a detector over pre-captured frames at `_t`.
pub fn evaluate_detector(
    detector: &mut Detector,
    frames: &[(SimTime, CameraFrame)],
    true_class_of: impl Fn(ObstacleId) -> ObstacleClass + Copy,
) -> DetectionMetrics {
    let mut metrics = DetectionMetrics::default();
    for (_t, frame) in frames {
        let dets = detector.detect(frame, true_class_of);
        metrics.accumulate(frame, &dets, true_class_of);
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use sov_math::Pose2;
    use sov_sensors::camera::Camera;
    use sov_sensors::camera::Intrinsics;
    use sov_world::scenario::Scenario;

    fn capture_frames(n: usize) -> (Vec<(SimTime, CameraFrame)>, sov_world::scenario::World) {
        let w = Scenario::fishers_indiana(1).world;
        let cam = Camera::new(Intrinsics::hd1080(), 0.0, 1.2, 60.0, 0.5).unwrap();
        let mut rng = SovRng::seed_from_u64(10);
        let mut frames = Vec::new();
        for i in 0..n {
            let t = SimTime::from_millis(6_000 + (i as u64) * 33);
            let pose = Pose2::new(40.0 + i as f64 * 0.2, 0.0, 0.0);
            frames.push((t, cam.capture(&pose, &w, &w.landmarks, t, &mut rng)));
        }
        (frames, w)
    }

    #[test]
    fn matched_model_has_high_recall() {
        let (frames, w) = capture_frames(200);
        let class_of = |id: ObstacleId| {
            w.obstacles
                .iter()
                .find(|o| o.id == id)
                .map_or(ObstacleClass::StaticObject, |o| o.class)
        };
        let mut det = Detector::new(DetectorProfile::matched(), 1);
        let m = evaluate_detector(&mut det, &frames, class_of);
        assert!(m.total_objects > 0);
        assert!(m.recall() > 0.93, "recall {}", m.recall());
    }

    #[test]
    fn mismatched_model_degrades() {
        let (frames, w) = capture_frames(300);
        let class_of = |id: ObstacleId| {
            w.obstacles
                .iter()
                .find(|o| o.id == id)
                .map_or(ObstacleClass::StaticObject, |o| o.class)
        };
        let mut matched = Detector::new(DetectorProfile::matched(), 2);
        let mut mismatched = Detector::new(DetectorProfile::mismatched(), 2);
        let m1 = evaluate_detector(&mut matched, &frames, class_of);
        let m2 = evaluate_detector(&mut mismatched, &frames, class_of);
        assert!(m2.recall() < m1.recall());
        assert!(m2.false_positives > m1.false_positives);
    }

    #[test]
    fn model_update_swaps_profile() {
        let mut det = Detector::new(DetectorProfile::mismatched(), 3);
        assert_eq!(det.profile(), &DetectorProfile::mismatched());
        det.update_model(DetectorProfile::matched());
        assert_eq!(det.profile(), &DetectorProfile::matched());
    }

    #[test]
    fn empty_frame_yields_only_false_positives() {
        let frame = CameraFrame {
            capture_time: SimTime::ZERO,
            features: vec![],
            objects: vec![],
        };
        let mut det = Detector::new(DetectorProfile::matched(), 4);
        let mut fp = 0;
        for _ in 0..1000 {
            fp += det
                .detect(&frame, |_| ObstacleClass::StaticObject)
                .iter()
                .filter(|d| d.truth.is_none())
                .count();
        }
        // ≈ 0.05 per frame.
        assert!((10..150).contains(&fp), "false positives {fp}");
    }

    #[test]
    fn metrics_recall_edge_cases() {
        let m = DetectionMetrics::default();
        assert_eq!(m.recall(), 0.0);
    }
}
