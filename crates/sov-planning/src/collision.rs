//! Collision checking (the "Collision Detection" block of Fig. 5).
//!
//! Checks a planned trajectory against predicted obstacle motion in route
//! coordinates. Used by the planners to validate candidate plans and by the
//! evaluation harness to score safety outcomes.

use crate::prediction::predict;
use crate::{PlanningObstacle, TrajectoryPoint};

/// A detected conflict between the plan and an obstacle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Conflict {
    /// Time of the conflict (s from now).
    pub t_s: f64,
    /// Index of the obstacle in the input list.
    pub obstacle_index: usize,
    /// Separation at the conflict (m; includes radii).
    pub separation_m: f64,
}

/// Checks a trajectory against obstacles; returns the earliest conflict
/// where separation falls below `ego_radius_m + obstacle.radius_m +
/// margin_m`.
#[must_use]
pub fn first_conflict(
    trajectory: &[TrajectoryPoint],
    obstacles: &[PlanningObstacle],
    ego_radius_m: f64,
    margin_m: f64,
) -> Option<Conflict> {
    let horizon = trajectory.last().map_or(0.0, |p| p.t_s);
    let mut best: Option<Conflict> = None;
    for (idx, obstacle) in obstacles.iter().enumerate() {
        // Predict at the trajectory's own time steps.
        let dt = if trajectory.len() >= 2 {
            (trajectory[1].t_s - trajectory[0].t_s).max(1e-6)
        } else {
            0.1
        };
        let preds = predict(obstacle, horizon, dt);
        for point in trajectory {
            // Nearest prediction in time.
            let pred = preds
                .iter()
                .min_by(|a, b| {
                    (a.t_s - point.t_s)
                        .abs()
                        .partial_cmp(&(b.t_s - point.t_s).abs())
                        .expect("finite")
                })
                .expect("predict returns at least one point");
            let ds = point.station_m - pred.station_m;
            let dl = point.lateral_m - pred.lateral_m;
            let separation = (ds * ds + dl * dl).sqrt();
            let limit = ego_radius_m + obstacle.radius_m + margin_m;
            if separation < limit && best.is_none_or(|c| point.t_s < c.t_s) {
                best = Some(Conflict {
                    t_s: point.t_s,
                    obstacle_index: idx,
                    separation_m: separation,
                });
            }
        }
    }
    best
}

/// Whether a trajectory is collision-free.
#[must_use]
pub fn is_safe(
    trajectory: &[TrajectoryPoint],
    obstacles: &[PlanningObstacle],
    ego_radius_m: f64,
    margin_m: f64,
) -> bool {
    first_conflict(trajectory, obstacles, ego_radius_m, margin_m).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight_trajectory(speed: f64, horizon_s: f64, lateral: f64) -> Vec<TrajectoryPoint> {
        let dt = 0.1;
        (0..=(horizon_s / dt) as usize)
            .map(|k| {
                let t = k as f64 * dt;
                TrajectoryPoint {
                    t_s: t,
                    station_m: speed * t,
                    lateral_m: lateral,
                    speed_mps: speed,
                }
            })
            .collect()
    }

    fn static_obstacle(station: f64, lateral: f64) -> PlanningObstacle {
        PlanningObstacle {
            station_m: station,
            lateral_m: lateral,
            speed_along_mps: 0.0,
            radius_m: 0.5,
        }
    }

    #[test]
    fn head_on_conflict_detected() {
        let traj = straight_trajectory(5.6, 4.0, 0.0);
        let obstacles = vec![static_obstacle(10.0, 0.0)];
        let conflict = first_conflict(&traj, &obstacles, 0.8, 0.3).expect("must conflict");
        // Conflict occurs roughly when station reaches 10 − (0.8+0.5+0.3).
        let expected_t = (10.0 - 1.6) / 5.6;
        assert!(
            (conflict.t_s - expected_t).abs() < 0.2,
            "t = {}",
            conflict.t_s
        );
        assert_eq!(conflict.obstacle_index, 0);
    }

    #[test]
    fn lateral_clearance_is_safe() {
        let traj = straight_trajectory(5.6, 4.0, 0.0);
        // Obstacle in the adjacent lane (2.5 m left).
        let obstacles = vec![static_obstacle(10.0, 2.5)];
        assert!(is_safe(&traj, &obstacles, 0.8, 0.3));
    }

    #[test]
    fn lane_change_avoids_conflict() {
        let blocked = straight_trajectory(5.6, 4.0, 0.0);
        let switched = straight_trajectory(5.6, 4.0, 2.5);
        let obstacles = vec![static_obstacle(12.0, 0.0)];
        assert!(!is_safe(&blocked, &obstacles, 0.8, 0.3));
        assert!(is_safe(&switched, &obstacles, 0.8, 0.3));
    }

    #[test]
    fn moving_obstacle_pulling_away_is_safe() {
        let traj = straight_trajectory(5.0, 4.0, 0.0);
        let obstacles = vec![PlanningObstacle {
            station_m: 8.0,
            lateral_m: 0.0,
            speed_along_mps: 7.0,
            radius_m: 0.5,
        }];
        assert!(is_safe(&traj, &obstacles, 0.8, 0.3));
    }

    #[test]
    fn earliest_conflict_wins() {
        let traj = straight_trajectory(5.6, 6.0, 0.0);
        let obstacles = vec![static_obstacle(25.0, 0.0), static_obstacle(10.0, 0.0)];
        let conflict = first_conflict(&traj, &obstacles, 0.8, 0.3).unwrap();
        assert_eq!(
            conflict.obstacle_index, 1,
            "nearer obstacle conflicts first"
        );
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(is_safe(&[], &[static_obstacle(5.0, 0.0)], 0.8, 0.3));
        assert!(is_safe(&straight_trajectory(5.6, 2.0, 0.0), &[], 0.8, 0.3));
    }
}
