//! Deterministic spatial dispatch index: grid buckets of available
//! vehicles over the lane graph's bounding box.
//!
//! The 0.9.0 dispatcher scanned every vehicle per queued request — O(V)
//! distance evaluations each, the serial scaling wall of the fleet tick.
//! [`SpatialIndex`] buckets available vehicles into a fixed-geometry grid
//! (cell size and extent come from config + map bounds, never from the
//! data), and [`SpatialIndex::nearest`] expands square rings of buckets
//! outward from the pickup until a geometric lower bound proves no farther
//! ring can beat the candidates already found.
//!
//! # Determinism and exactness
//!
//! * **Geometry is config-fixed.** Bucket count and cell size depend only
//!   on the map bounds and `cell_m`; vehicles are inserted in ascending
//!   id order by [`SpatialIndex::rebuild`], so bucket contents are
//!   id-sorted and ring traversal enumerates candidates in a fixed order.
//! * **The pruning bound is conservative and exact.** On maps whose lane
//!   connections are geometrically contiguous
//!   ([`RouteTable::max_connection_gap_m`]` == 0.0`), driving distance is
//!   at least straight-line distance, and every vehicle in ring `r`
//!   (Chebyshev distance `r` in cells) is at least `(r − 1) · cell_m`
//!   away in the plane. The search stops only when that bound **strictly**
//!   exceeds the current k-th best driving distance — on ties it keeps
//!   scanning — so the returned candidates are exactly the top-k by
//!   `(distance, id)`, bit-for-bit what the linear scan would pick.
//! * **Same comparator as the linear scan.** Candidates are ordered by
//!   driving distance with ties to the lower id — the dispatcher's
//!   strict-`<`-over-ascending-ids rule, made explicit.
//!
//! The proptests drive this equivalence directly: indexed dispatch must
//! reproduce the retained linear-scan reference byte for byte.

use crate::graph::{FleetPos, RouteField, RouteTable};

/// Maximum candidates a [`CandidateList`] holds — enough that a conflict
/// during the sharded dispatch commit almost never needs the fallback
/// search, small enough to live on the stack and stay `Copy`.
pub const MAX_CANDIDATES: usize = 8;

/// One dispatch candidate: driving distance to the pickup plus vehicle id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Driving distance vehicle → pickup (meters).
    pub distance_m: f64,
    /// Vehicle id (the tie-break key: lower wins at equal distance).
    pub id: u32,
}

/// A fixed-capacity list of the best candidates seen so far, ordered by
/// `(distance, id)` ascending — the dispatcher's exact comparator.
#[derive(Debug, Clone, Copy)]
pub struct CandidateList {
    cand: [Candidate; MAX_CANDIDATES],
    len: u8,
    /// Distance evaluations performed to fill this list (the
    /// deterministic work counter the bench gates on).
    pub evals: u32,
}

impl Default for CandidateList {
    fn default() -> Self {
        Self {
            cand: [Candidate {
                distance_m: f64::INFINITY,
                id: u32::MAX,
            }; MAX_CANDIDATES],
            len: 0,
            evals: 0,
        }
    }
}

impl CandidateList {
    /// Candidates currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether no candidate was found.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th best candidate, if present.
    #[must_use]
    pub fn get(&self, i: usize) -> Option<Candidate> {
        (i < self.len()).then(|| self.cand[i])
    }

    /// Iterates candidates best-first.
    pub fn iter(&self) -> impl Iterator<Item = &Candidate> {
        self.cand[..self.len()].iter()
    }

    /// Worst distance currently kept, if the list holds `k` entries.
    fn kth_distance(&self, k: usize) -> Option<f64> {
        (self.len() >= k).then(|| self.cand[k - 1].distance_m)
    }

    /// Inserts `(distance_m, id)` if it beats the current k-th best under
    /// the `(distance, id)` order; keeps at most `k` entries.
    fn insert(&mut self, distance_m: f64, id: u32, k: usize) {
        let beats =
            |c: &Candidate| distance_m < c.distance_m || (distance_m == c.distance_m && id < c.id);
        let mut at = self.len();
        while at > 0 && beats(&self.cand[at - 1]) {
            at -= 1;
        }
        if at >= k {
            return;
        }
        let end = (self.len() + 1).min(k);
        self.cand.copy_within(at..end - 1, at + 1);
        self.cand[at] = Candidate { distance_m, id };
        self.len = end as u8;
    }
}

/// Fixed-geometry grid buckets of available vehicles.
///
/// Rebuilt from the id-ordered vehicle array at the start of every
/// dispatch phase (bucket storage is retained, so the steady-state
/// rebuild allocates nothing) and queried read-only by the sharded
/// candidate search.
#[derive(Debug)]
pub struct SpatialIndex {
    min_x: f64,
    min_y: f64,
    cell_m: f64,
    cols: u32,
    rows: u32,
    buckets: Vec<Vec<u32>>,
}

impl SpatialIndex {
    /// Builds an empty index over `table`'s bounding box with square
    /// cells of `cell_m` meters.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not a positive finite number.
    #[must_use]
    pub fn new(table: &RouteTable, cell_m: f64) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "index cell size must be positive"
        );
        let b = table.bounds();
        let span = |lo: f64, hi: f64| (((hi - lo) / cell_m).floor() as u32).saturating_add(1);
        let cols = span(b.min_x, b.max_x);
        let rows = span(b.min_y, b.max_y);
        Self {
            min_x: b.min_x,
            min_y: b.min_y,
            cell_m,
            cols,
            rows,
            buckets: vec![Vec::new(); cols as usize * rows as usize],
        }
    }

    /// Grid dimensions `(cols, rows)`.
    #[must_use]
    pub fn dims(&self) -> (u32, u32) {
        (self.cols, self.rows)
    }

    /// Cell coordinates of a world point (clamped into the grid).
    fn cell_of(&self, x: f64, y: f64) -> (u32, u32) {
        let clamp = |v: f64, n: u32| (((v / self.cell_m).floor()).max(0.0) as u32).min(n - 1);
        (
            clamp(x - self.min_x, self.cols),
            clamp(y - self.min_y, self.rows),
        )
    }

    /// Clears every bucket and re-inserts `vehicles`.
    ///
    /// Call with vehicles in **ascending id order** (the fleet array
    /// order): bucket contents end up id-sorted, which is what makes the
    /// ring traversal's candidate order — and therefore the tie-break —
    /// deterministic.
    pub fn rebuild(&mut self, table: &RouteTable, vehicles: impl Iterator<Item = (u32, FleetPos)>) {
        for b in &mut self.buckets {
            b.clear();
        }
        for (id, pos) in vehicles {
            let p = table.pose(pos);
            let (cx, cy) = self.cell_of(p.x, p.y);
            self.buckets[(cy * self.cols + cx) as usize].push(id);
        }
    }

    /// Finds the `k` nearest non-skipped vehicles to `target` by driving
    /// distance (ties to the lower id), writing them into `out`.
    ///
    /// `field` must be the route field toward `target.lane`; `pos_of`
    /// maps a vehicle id to its position; `skip` excludes vehicles (the
    /// conflict-resolution fallback passes the claimed set). `out.evals`
    /// counts distance evaluations performed.
    ///
    /// Exactness requires [`RouteTable::max_connection_gap_m`]` == 0.0`
    /// (see the module docs); the caller gates index construction on that.
    // A query is genuinely eight-dimensional (table, field, target, depth,
    // two predicates, output); bundling them into a struct would only move
    // the arguments.
    #[allow(clippy::too_many_arguments)]
    pub fn nearest(
        &self,
        table: &RouteTable,
        field: &RouteField,
        target: FleetPos,
        k: usize,
        pos_of: impl Fn(u32) -> FleetPos,
        skip: impl Fn(u32) -> bool,
        out: &mut CandidateList,
    ) {
        *out = CandidateList::default();
        let k = k.clamp(1, MAX_CANDIDATES);
        let p = table.pose(target);
        let (cx, cy) = self.cell_of(p.x, p.y);
        let max_ring = cx.max(self.cols - 1 - cx).max(cy.max(self.rows - 1 - cy));
        for r in 0..=max_ring {
            // Every vehicle in ring r is ≥ (r − 1)·cell_m away in the
            // plane, hence at least that far by road. Stop only on a
            // strict beat: at equality a ring-r vehicle could still tie
            // the k-th candidate with a lower id.
            if let Some(kth) = out.kth_distance(k) {
                let lower_bound = f64::from(r.saturating_sub(1)) * self.cell_m;
                if lower_bound > kth {
                    break;
                }
            }
            self.for_ring(cx, cy, r, |bucket| {
                for &id in &self.buckets[bucket] {
                    if skip(id) {
                        continue;
                    }
                    out.evals += 1;
                    let d = table.travel_distance_with(pos_of(id), target, field);
                    out.insert(d, id, k);
                }
            });
        }
    }

    /// Visits every in-bounds bucket at Chebyshev ring `r` around
    /// `(cx, cy)` in a fixed order (top row, bottom row, then side
    /// columns, each ascending).
    fn for_ring(&self, cx: u32, cy: u32, r: u32, mut visit: impl FnMut(usize)) {
        let (cx, cy, r) = (i64::from(cx), i64::from(cy), i64::from(r));
        let (cols, rows) = (i64::from(self.cols), i64::from(self.rows));
        let mut cell = |x: i64, y: i64| {
            if (0..cols).contains(&x) && (0..rows).contains(&y) {
                visit((y * cols + x) as usize);
            }
        };
        if r == 0 {
            cell(cx, cy);
            return;
        }
        for x in (cx - r)..=(cx + r) {
            cell(x, cy - r);
        }
        for x in (cx - r)..=(cx + r) {
            cell(x, cy + r);
        }
        for y in (cy - r + 1)..=(cy + r - 1) {
            cell(cx - r, y);
            cell(cx + r, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sov_world::map::grid_network;

    fn table() -> RouteTable {
        RouteTable::new(&grid_network(4, 4, 60.0, 2.5, 8.0))
    }

    /// The linear scan the index must reproduce: best (distance, id).
    fn brute_nearest(
        table: &RouteTable,
        field: &RouteField,
        target: FleetPos,
        vehicles: &[(u32, FleetPos)],
        skip: impl Fn(u32) -> bool,
    ) -> Option<(f64, u32)> {
        let mut best: Option<(f64, u32)> = None;
        for &(id, pos) in vehicles {
            if skip(id) {
                continue;
            }
            let d = table.travel_distance_with(pos, target, field);
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, id));
            }
        }
        best
    }

    fn spread(table: &RouteTable, n: u32) -> Vec<(u32, FleetPos)> {
        (0..n)
            .map(|i| (i, table.sample((f64::from(i) + 0.37) / f64::from(n))))
            .collect()
    }

    #[test]
    fn nearest_matches_linear_scan_exactly() {
        let t = table();
        assert_eq!(t.max_connection_gap_m(), 0.0);
        let mut index = SpatialIndex::new(&t, 45.0);
        let vehicles = spread(&t, 37);
        index.rebuild(&t, vehicles.iter().copied());
        let mut out = CandidateList::default();
        for q in 0..60 {
            let target = t.sample(f64::from(q) / 60.0);
            let field = t.field_to(target.lane);
            index.nearest(
                &t,
                &field,
                target,
                1,
                |id| vehicles[id as usize].1,
                |_| false,
                &mut out,
            );
            let want = brute_nearest(&t, &field, target, &vehicles, |_| false);
            let got = out.get(0).map(|c| (c.distance_m, c.id));
            assert_eq!(got, want, "query {q}: index disagrees with linear scan");
        }
    }

    #[test]
    fn ties_go_to_the_lower_id() {
        let t = table();
        let mut index = SpatialIndex::new(&t, 60.0);
        // Two vehicles at the same position: identical distance, ids 3, 9.
        let pos = t.sample(0.41);
        let vehicles = [(3u32, pos), (9u32, pos)];
        index.rebuild(&t, vehicles.iter().copied());
        let target = t.sample(0.88);
        let field = t.field_to(target.lane);
        let mut out = CandidateList::default();
        index.nearest(
            &t,
            &field,
            target,
            2,
            |id| pos_for(id, &vehicles),
            |_| false,
            &mut out,
        );
        assert_eq!(out.get(0).map(|c| c.id), Some(3));
        assert_eq!(out.get(1).map(|c| c.id), Some(9));
        assert_eq!(
            out.get(0).map(|c| c.distance_m),
            out.get(1).map(|c| c.distance_m)
        );
    }

    fn pos_for(id: u32, vehicles: &[(u32, FleetPos)]) -> FleetPos {
        vehicles
            .iter()
            .find(|&&(v, _)| v == id)
            .expect("known id")
            .1
    }

    #[test]
    fn skip_predicate_excludes_claimed_vehicles() {
        let t = table();
        let mut index = SpatialIndex::new(&t, 45.0);
        let vehicles = spread(&t, 20);
        index.rebuild(&t, vehicles.iter().copied());
        let target = t.sample(0.5);
        let field = t.field_to(target.lane);
        let mut all = CandidateList::default();
        index.nearest(
            &t,
            &field,
            target,
            1,
            |id| vehicles[id as usize].1,
            |_| false,
            &mut all,
        );
        let winner = all.get(0).expect("non-empty fleet").id;
        let mut rest = CandidateList::default();
        index.nearest(
            &t,
            &field,
            target,
            1,
            |id| vehicles[id as usize].1,
            |id| id == winner,
            &mut rest,
        );
        let want = brute_nearest(&t, &field, target, &vehicles, |id| id == winner);
        assert_eq!(rest.get(0).map(|c| (c.distance_m, c.id)), want);
    }

    #[test]
    fn candidate_list_truncates_at_k() {
        let mut list = CandidateList::default();
        for id in 0..20 {
            list.insert(f64::from(20 - id), id, 3);
        }
        assert_eq!(list.len(), 3);
        // Last three inserts had the smallest distances: 1, 2, 3.
        let dists: Vec<f64> = list.iter().map(|c| c.distance_m).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn ring_search_prunes_far_buckets() {
        // One vehicle adjacent to the query, many far away: the ring
        // search must settle without evaluating the whole fleet.
        let t = RouteTable::new(&grid_network(8, 8, 60.0, 2.5, 8.0));
        let mut index = SpatialIndex::new(&t, 60.0);
        let target = t.sample(0.02);
        let mut vehicles = vec![(0u32, target)];
        for i in 1..200u32 {
            vehicles.push((i, t.sample(0.5 + f64::from(i) / 500.0)));
        }
        index.rebuild(&t, vehicles.iter().copied());
        let field = t.field_to(target.lane);
        let mut out = CandidateList::default();
        index.nearest(
            &t,
            &field,
            target,
            1,
            |id| vehicles[id as usize].1,
            |_| false,
            &mut out,
        );
        assert_eq!(out.get(0).map(|c| c.id), Some(0));
        assert!(
            (out.evals as usize) < vehicles.len() / 2,
            "ring search evaluated {} of {} vehicles",
            out.evals,
            vehicles.len()
        );
    }
}
