//! Deployment economics of the Nara tourist-site shuttle (Sec. II-A,
//! III-B, III-C): driving time, revenue impact of hardware choices, and
//! cost per trip.
//!
//! ```sh
//! cargo run --release --example tourist_shuttle
//! ```

use sov::core::config::VehicleConfig;
use sov::core::sov::Sov;
use sov::platform::power::{ServerLoad, SovPowerModel};
use sov::vehicle::battery::DrivingTimeModel;
use sov::vehicle::cost::{TcoModel, VehicleBom};
use sov::world::scenario::Scenario;

fn main() {
    let scenario = Scenario::nara_japan(7);
    println!("deployment: {}\n", scenario.name);

    // A short closed-loop sortie through the pedestrian-dense site.
    let mut sov = Sov::new(VehicleConfig::perceptin_pod(), 7);
    let report = sov.drive(&scenario, 400).expect("frames > 0");
    println!(
        "40 s sortie: {:?}, {:.0} m, mean computing latency {:.0} ms, proactive {:.1}%",
        report.outcome,
        report.distance_m,
        report.computing.mean(),
        report.proactive_fraction() * 100.0
    );

    // Energy economics (Eq. 2): each extra watt is driving time lost.
    let m = DrivingTimeModel::perceptin_defaults();
    println!("\ndriving time per charge (6 kWh pack, 0.6 kW base load):");
    let configs = [
        ("no autonomy", 0.0),
        (
            "deployed SoV (175 W)",
            SovPowerModel::deployed().total_pad_kw(),
        ),
        (
            "+1 idle server",
            SovPowerModel {
                num_servers: 2,
                ..SovPowerModel::deployed()
            }
            .total_pad_kw(),
        ),
        (
            "+1 full-load server",
            SovPowerModel {
                num_servers: 2,
                extra_server_load: ServerLoad::FullLoad,
                ..SovPowerModel::deployed()
            }
            .total_pad_kw(),
        ),
        (
            "LiDAR suite",
            SovPowerModel {
                lidar_suite: true,
                ..SovPowerModel::deployed()
            }
            .total_pad_kw(),
        ),
    ];
    for (name, pad) in configs {
        println!(
            "  {name:<24} {:>5.2} h  (revenue impact on a 10 h day: {:>4.1}%)",
            m.driving_time_h(pad),
            (10.0f64.min(m.driving_time_h(0.175)) - 10.0f64.min(m.driving_time_h(pad))).max(0.0)
                / 10.0
                * 100.0
        );
    }

    // Cost per trip (Table II + the Sec. VII TCO sketch).
    println!("\ncost per passenger trip (80 trips/day, 300 days/year, 5-year life):");
    let camera = TcoModel::tourist_site_defaults();
    let lidar = TcoModel {
        vehicle_usd: VehicleBom::lidar_based().retail_price_usd,
        ..TcoModel::tourist_site_defaults()
    };
    println!(
        "  camera-based ($70k vehicle): ${:.2}/trip — the $1 fare works",
        camera.cost_per_trip_usd()
    );
    println!(
        "  LiDAR-based ($300k vehicle): ${:.2}/trip — the $1 fare does not",
        lidar.cost_per_trip_usd()
    );
}
